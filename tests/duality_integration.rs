//! Lemma 4 end-to-end: the exact duality on assorted graphs, plus
//! distributional agreement between the two independent coalescence
//! implementations.

use rand::SeedableRng;
use symbreak::graphs::{coalescence_time, voter_time_from_coupling, DualityCoupling, Graph};
use symbreak::prelude::*;
use symbreak::stats::ecdf::ks_threshold;

#[test]
fn duality_identity_exact_on_assorted_graphs() {
    let mut rng = Pcg64::seed_from_u64(11);
    let graphs = vec![
        Graph::complete(40),
        Graph::cycle(21),
        Graph::torus(5, 7),
        Graph::star(30),
        Graph::random_regular(36, 4, &mut rng),
    ];
    for (i, g) in graphs.into_iter().enumerate() {
        let mut grng = Pcg64::seed_from_u64(100 + i as u64);
        let (coupling, t_c) =
            DualityCoupling::generate_until_coalesced(&g, 2, 2_000_000, &mut grng)
                .expect("coalesces to 2");
        assert!(coupling.verify_identity(), "graph #{i}");
        assert_eq!(voter_time_from_coupling(&coupling, 2), Some(t_c), "graph #{i}");
    }
}

#[test]
fn coupling_walks_match_standalone_coalescing_distribution() {
    // Two independent implementations of coalescing walks (the standalone
    // simulator and the coupling's forward pass) must agree in
    // distribution on T^1_C.
    let n = 64usize;
    let trials = 200u64;
    let standalone = run_trials(trials, 31, move |_t, s| {
        let g = Graph::complete(n);
        let mut rng = Pcg64::seed_from_u64(s);
        coalescence_time(&g, 1, u64::MAX, &mut rng).expect("coalesces")
    });
    let via_coupling = run_trials(trials, 32, move |_t, s| {
        let g = Graph::complete(n);
        let mut rng = Pcg64::seed_from_u64(s);
        let (_, t) = DualityCoupling::generate_until_coalesced(&g, 1, 10_000_000, &mut rng)
            .expect("coalesces");
        t
    });
    let ks = StochasticOrder::test_counts(&standalone, &via_coupling).ks;
    let threshold = ks_threshold(trials as usize, trials as usize, 1.63);
    assert!(ks < threshold, "KS {ks} exceeds threshold {threshold}");
}

#[test]
fn voter_on_complete_graph_close_to_neighbor_sampling_variant() {
    // The core Voter samples uniformly over all n nodes (self included);
    // the graph Voter samples a uniform *neighbor*. On K_n these differ by
    // a (1 − 1/n) time rescale, so mean consensus times must be close.
    let n = 128u64;
    let trials = 150u64;
    let core_times = {
        let start = Configuration::singletons(n);
        run_trials(trials, 41, move |_t, s| {
            let mut e = VectorEngine::new(Voter, start.clone(), s).with_compaction();
            run_to_consensus(&mut e, &RunOptions::default()).consensus_round.expect("consensus")
        })
    };
    let graph_times = run_trials(trials, 42, move |_t, s| {
        let g = Graph::complete(n as usize);
        let mut d = symbreak::graphs::GraphDynamics::singletons(&g);
        let mut rng = Pcg64::seed_from_u64(s);
        d.run_to_consensus(symbreak::graphs::GraphRule::Voter, 10_000_000, &mut rng)
            .expect("consensus")
    });
    let mc = Summary::of_counts(&core_times).mean();
    let mg = Summary::of_counts(&graph_times).mean();
    assert!(
        (mc - mg).abs() < 0.25 * mc.max(mg),
        "complete-graph voter variants too far apart: {mc} vs {mg}"
    );
}
