//! Cross-crate property-based tests (proptest).

use proptest::prelude::*;
use symbreak::core::dominance::random_majorizing_pair;
use symbreak::core::rules::alpha_three_majority;
use symbreak::majorization::vector::majorizes;
use symbreak::prelude::*;

fn config_strategy(max_n: u64, k: usize) -> impl Strategy<Value = Configuration> {
    proptest::collection::vec(0u64..max_n, k).prop_filter_map("at least one node", |counts| {
        if counts.iter().sum::<u64>() == 0 {
            None
        } else {
            Some(Configuration::from_counts(counts))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alpha_3m_is_probability_vector(c in config_strategy(50, 6)) {
        let alpha = alpha_three_majority(&c);
        let total: f64 = alpha.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(alpha.iter().all(|&a| (-1e-12..=1.0 + 1e-9).contains(&a)));
    }

    #[test]
    fn alpha_3m_majorizes_fractions(c in config_strategy(50, 6)) {
        // The drift property (Lemma 2 with c = c̃): α^(3M)(c) ⪰ c/n.
        let alpha = alpha_three_majority(&c);
        prop_assert!(majorizes(&alpha, &c.fractions()));
    }

    #[test]
    fn one_step_preserves_population(c in config_strategy(50, 6), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = Pcg64::seed_from_u64(seed);
        for rule in [
            &ThreeMajority as &dyn VectorStep,
            &Voter as &dyn VectorStep,
            &TwoChoices as &dyn VectorStep,
        ] {
            let next = rule.vector_step(&c, &mut rng);
            prop_assert_eq!(next.n(), c.n());
            prop_assert_eq!(next.num_slots(), c.num_slots());
        }
    }

    #[test]
    fn consensus_is_absorbing_for_every_rule(n in 1u64..200, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = Pcg64::seed_from_u64(seed);
        let c = Configuration::consensus(n, 3);
        for rule in [
            &ThreeMajority as &dyn VectorStep,
            &Voter as &dyn VectorStep,
            &TwoChoices as &dyn VectorStep,
        ] {
            prop_assert_eq!(rule.vector_step(&c, &mut rng), c.clone());
        }
    }

    #[test]
    fn majorizing_pairs_transfer_to_alphas(seed in 0u64..2000) {
        use rand::SeedableRng;
        // Lemma 2's inequality over the generated pair distribution.
        let mut rng = Pcg64::seed_from_u64(seed);
        let (c, ct) = random_majorizing_pair(64, 5, 3, &mut rng);
        let a3 = alpha_three_majority(&c);
        let av = ct.fractions();
        prop_assert!(majorizes(&a3, &av));
    }

    #[test]
    fn compaction_preserves_sorted_profile(c in config_strategy(50, 8)) {
        let compacted = c.compacted();
        prop_assert_eq!(compacted.n(), c.n());
        prop_assert_eq!(compacted.num_colors(), c.num_colors());
        let a: Vec<u64> = c.sorted_counts().into_iter().filter(|&v| v > 0).collect();
        let b: Vec<u64> = compacted.sorted_counts().into_iter().filter(|&v| v > 0).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn undecided_state_conserves_population(
        counts in proptest::collection::vec(1u64..40, 2..6),
        seed in 0u64..500,
    ) {
        use rand::SeedableRng;
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut state = symbreak::core::rules::UndecidedState::new(
            Configuration::from_counts(counts),
        );
        let population = state.population();
        for _ in 0..20 {
            state.step(&mut rng);
            prop_assert_eq!(state.population(), population);
        }
    }
}
