//! One-step-law integration (Equation (2) / footnote 2): agent engines,
//! vector engines, analytic process functions and expectations all agree.

use rand::SeedableRng;
use symbreak::core::dominance::random_configuration;
use symbreak::core::rules::alpha_three_majority;
use symbreak::prelude::*;
use symbreak::stats::ecdf::ks_threshold;

#[test]
fn agent_and_vector_engines_share_the_one_step_law() {
    let start = Configuration::from_counts(vec![100, 60, 30, 10]);
    let trials = 1_500u64;
    let agent: Vec<u64> = run_trials(trials, 1, {
        let start = start.clone();
        move |_t, s| {
            let mut e = AgentEngine::new(ThreeMajority, &start, s);
            e.step();
            e.configuration().support(0)
        }
    });
    let vector: Vec<u64> = run_trials(trials, 2, {
        let start = start.clone();
        move |_t, s| {
            let mut e = VectorEngine::new(ThreeMajority, start.clone(), s);
            e.step();
            e.configuration().support(0)
        }
    });
    let ks = StochasticOrder::test_counts(&agent, &vector).ks;
    let threshold = ks_threshold(trials as usize, trials as usize, 1.63);
    assert!(ks < threshold, "KS {ks} >= {threshold}");
}

#[test]
fn h3_majority_exact_alpha_equals_formula_on_random_configs() {
    let mut rng = Pcg64::seed_from_u64(5);
    for _ in 0..50 {
        let c = random_configuration(60, 6, &mut rng);
        let enumerated = HMajority::new(3).alpha(&c);
        let formula = alpha_three_majority(&c);
        for (a, b) in enumerated.iter().zip(&formula) {
            assert!((a - b).abs() < 1e-10, "{enumerated:?} vs {formula:?}");
        }
    }
}

#[test]
fn expectation_identity_2c_3m_on_random_configs() {
    let mut rng = Pcg64::seed_from_u64(6);
    for _ in 0..200 {
        let c = random_configuration(200, 10, &mut rng);
        let e2 = TwoChoices.expected_fractions(&c);
        let e3 = ThreeMajority.expected_fractions(&c);
        for (a, b) in e2.iter().zip(&e3) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn voter_expectation_is_the_identity_map() {
    let mut rng = Pcg64::seed_from_u64(7);
    for _ in 0..100 {
        let c = random_configuration(150, 8, &mut rng);
        let e = Voter.expected_fractions(&c);
        let x = c.fractions();
        for (a, b) in e.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn rational_and_float_alpha_agree_for_h4() {
    use symbreak::core::counterexample::{alpha_h_majority_exact, Rational};
    let c = Configuration::from_counts(vec![4, 3, 2, 1]);
    let float = HMajority::new(4).alpha(&c);
    let x: Vec<Rational> = c.counts().iter().map(|&v| Rational::new(v as i128, 10)).collect();
    let exact = alpha_h_majority_exact(&x, 4);
    for (f, e) in float.iter().zip(&exact) {
        assert!((f - e.to_f64()).abs() < 1e-12);
    }
}
