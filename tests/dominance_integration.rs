//! Lemma 2 / Theorem 2 end-to-end: analytic dominance plus measured
//! stochastic dominance of hitting times, and the non-AC counterexample.

use rand::SeedableRng;
use symbreak::core::dominance::{expected_majorizes, lemma2_inequality, random_majorizing_pair};
use symbreak::prelude::*;
use symbreak::stats::ecdf::ks_threshold;

fn hitting_samples<R: VectorStep + Clone + Send + Sync>(
    rule: R,
    n: u64,
    kappa: usize,
    trials: u64,
    seed: u64,
) -> Vec<u64> {
    let start = Configuration::singletons(n);
    run_trials(trials, seed, move |_t, s| {
        let mut e = VectorEngine::new(rule.clone(), start.clone(), s).with_compaction();
        hitting_time_colors(&mut e, kappa, u64::MAX).expect("uncapped")
    })
}

#[test]
fn lemma2_analytic_inequality_on_many_pairs() {
    let mut rng = Pcg64::seed_from_u64(3);
    for _ in 0..300 {
        let (c, ct) = random_majorizing_pair(128, 6, 4, &mut rng);
        assert!(lemma2_inequality(&c, &ct));
        assert!(expected_majorizes(&ThreeMajority, &Voter, &c, &ct));
    }
}

#[test]
fn three_majority_hitting_times_stochastically_below_voter() {
    let trials = 120;
    for kappa in [64usize, 8, 1] {
        let t3 = hitting_samples(ThreeMajority, 1024, kappa, trials, 40 + kappa as u64);
        let tv = hitting_samples(Voter, 1024, kappa, trials, 80 + kappa as u64);
        let order = StochasticOrder::test_counts(&t3, &tv);
        let threshold = ks_threshold(trials as usize, trials as usize, 1.63);
        assert!(
            order.holds_within(threshold),
            "kappa={kappa}: violation {} > threshold {threshold}",
            order.max_violation
        );
    }
}

#[test]
fn two_choices_violates_theorem2_conclusion() {
    // 2-Choices dominates Voter in expectation but its hitting times are
    // far larger — the Theorem-2 conclusion fails for non-AC processes.
    let trials = 60;
    let t2 = hitting_samples(TwoChoices, 512, 64, trials, 7);
    let tv = hitting_samples(Voter, 512, 64, trials, 8);
    let order = StochasticOrder::test_counts(&t2, &tv); // claims 2C <=st V
    assert!(
        order.max_violation > 0.5,
        "expected a decisive violation, got {}",
        order.max_violation
    );
}

#[test]
fn stochastic_majorization_of_one_step_configs() {
    // Proposition 1 downstream: one 3-Majority step from a more-majorized
    // config stochastically majorizes one Voter step from a less-majorized
    // one (sampled via Schur-convex test family).
    use symbreak::majorization::schur::standard_family;
    use symbreak::majorization::stochastic::check_stochastic_majorization;

    let c_big = Configuration::from_counts(vec![60, 30, 8, 2]);
    let c_small = Configuration::from_counts(vec![30, 30, 20, 20]);
    assert!(c_big.majorizes(&c_small));

    let sample = |three_majority: bool, seed: u64| -> Vec<Vec<f64>> {
        let c_big = c_big.clone();
        let c_small = c_small.clone();
        run_trials(400, seed, move |_t, s| {
            let mut rng = Pcg64::seed_from_u64(s);
            let next = if three_majority {
                ThreeMajority.vector_step(&c_big, &mut rng)
            } else {
                Voter.vector_step(&c_small, &mut rng)
            };
            next.counts().iter().map(|&v| v as f64).collect()
        })
    };
    let ys = sample(true, 100); // the dominating side
    let xs = sample(false, 200);
    let report = check_stochastic_majorization(&xs, &ys, &standard_family(4));
    assert!(report.holds(4.0), "worst: {:?}", report.worst());
}
