//! Cross-crate integration: engines × rules × runners.

use symbreak::prelude::*;

fn vector_consensus<R: VectorStep + Clone>(rule: R, start: Configuration, seed: u64) -> u64 {
    let mut e = VectorEngine::new(rule, start, seed).with_compaction();
    run_to_consensus(&mut e, &RunOptions { max_rounds: 2_000_000, record_trace: false })
        .consensus_round
        .expect("consensus within cap")
}

#[test]
fn all_vector_rules_reach_consensus_from_singletons() {
    let start = Configuration::singletons(256);
    assert!(vector_consensus(Voter, start.clone(), 1) > 0);
    assert!(vector_consensus(TwoChoices, start.clone(), 2) > 0);
    assert!(vector_consensus(ThreeMajority, start.clone(), 3) > 0);
    assert!(vector_consensus(ThreeMajorityAlt, start, 4) > 0);
}

#[test]
fn all_agent_rules_reach_consensus_from_uniform() {
    let start = Configuration::uniform(128, 8);
    let rules: Vec<Box<dyn UpdateRule>> = vec![
        Box::new(Voter),
        Box::new(TwoChoices),
        Box::new(ThreeMajority),
        Box::new(ThreeMajorityAlt),
        Box::new(HMajority::new(5)),
        Box::new(TwoMedian),
        Box::new(UndecidedDynamics),
    ];
    for (i, rule) in rules.into_iter().enumerate() {
        let name = rule.name();
        let mut engine = AgentEngineDyn::new(rule, &start, 10 + i as u64);
        let mut rounds = 0u64;
        while !engine.is_consensus() && rounds < 1_000_000 {
            engine.step();
            rounds += 1;
        }
        assert!(engine.is_consensus(), "{name} failed to reach consensus");
    }
}

/// AgentEngine over a boxed rule (object-safe UpdateRule usage).
struct AgentEngineDyn {
    inner: AgentEngine<Box<dyn UpdateRule>>,
}

impl AgentEngineDyn {
    fn new(rule: Box<dyn UpdateRule>, start: &Configuration, seed: u64) -> Self {
        Self { inner: AgentEngine::new(rule, start, seed) }
    }

    fn step(&mut self) {
        self.inner.step();
    }

    fn is_consensus(&self) -> bool {
        self.inner.is_consensus()
    }
}

#[test]
fn trajectories_are_deterministic_per_seed() {
    let start = Configuration::singletons(512);
    let run = |seed| {
        let mut e = VectorEngine::new(ThreeMajority, start.clone(), seed);
        let mut profile = Vec::new();
        for _ in 0..20 {
            e.step();
            profile.push(e.configuration().sorted_counts());
        }
        profile
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn monte_carlo_driver_composes_with_engines() {
    let start = Configuration::uniform(128, 4);
    let times = run_trials(16, 5, move |_t, seed| {
        let mut e = VectorEngine::new(ThreeMajority, start.clone(), seed);
        run_to_consensus(&mut e, &RunOptions::default()).consensus_round.expect("consensus")
    });
    assert_eq!(times.len(), 16);
    assert!(times.iter().all(|&t| t > 0));
    let s = Summary::of_counts(&times);
    assert!(s.mean() > 1.0 && s.mean() < 10_000.0);
}

#[test]
fn winner_is_always_one_of_the_initial_colors() {
    // Without an adversary, the winning color must have existed initially
    // (validity for free).
    for seed in 0..10 {
        let start = Configuration::from_counts(vec![40, 30, 20, 10, 0, 0]);
        let mut e = VectorEngine::new(ThreeMajority, start, seed);
        let out = run_to_consensus(&mut e, &RunOptions::default());
        let winner = out.winner.expect("consensus");
        assert!(winner.index() < 4, "winner {winner} was not initially supported");
    }
}

#[test]
fn biased_start_elects_the_heavy_color_overwhelmingly() {
    let mut wins = 0;
    let trials = 20;
    for seed in 0..trials {
        let start = Configuration::biased(4096, 4, 1024);
        let mut e = VectorEngine::new(ThreeMajority, start, 1000 + seed);
        let out = run_to_consensus(&mut e, &RunOptions::default());
        if out.winner == Some(Opinion::new(0)) {
            wins += 1;
        }
    }
    assert!(wins >= trials - 1, "heavy color won only {wins}/{trials}");
}

#[test]
fn hitting_times_are_monotone_in_kappa_across_crates() {
    let start = Configuration::singletons(1024);
    let mut e = VectorEngine::new(Voter, start, 77).with_compaction();
    let t64 = hitting_time_colors(&mut e, 64, u64::MAX).expect("reaches 64");
    let t8_more = hitting_time_colors(&mut e, 8, u64::MAX).expect("reaches 8");
    assert!(t64 + t8_more >= t64);
}
