//! Integration of the Theorem-4 phase instrumentation with tracing,
//! aggregation, and the theory bound curves.

use symbreak::core::phases::measure_phases;
use symbreak::core::theory::{phase_split_colors, theorem4_bound, theorem8_bound};
use symbreak::prelude::*;
use symbreak::sim::TraceBundle;

#[test]
fn phase_measurements_respect_theorem4_across_seeds() {
    let n = 4096u64;
    let bound = theorem4_bound(n);
    for seed in 0..8 {
        let mut e =
            VectorEngine::new(ThreeMajority, Configuration::singletons(n), seed).with_compaction();
        let phases = measure_phases(&mut e, n, 1_000_000).expect("consensus");
        assert!((phases.phase1_rounds as f64) < bound);
        assert!((phases.phase2_rounds as f64) < bound);
        // Phase 2 starts from k <= split = o(n^{1/3}) colors, so Theorem 8
        // applies to it too.
        let t8 = theorem8_bound(n, phase_split_colors(n));
        assert!((phases.phase2_rounds as f64) < t8, "phase 2 exceeded the Theorem-8 bound");
    }
}

#[test]
fn trace_bundle_aggregates_consensus_runs() {
    let n = 512u64;
    let mut bundle = TraceBundle::new();
    for seed in 0..10 {
        let mut e = VectorEngine::new(ThreeMajority, Configuration::singletons(n), 100 + seed)
            .with_compaction();
        let out =
            run_to_consensus(&mut e, &RunOptions { max_rounds: 1_000_000, record_trace: true });
        assert!(out.reached_consensus());
        bundle.push(out.trace.expect("trace requested"));
    }
    assert_eq!(bundle.len(), 10);
    // Colors decline monotonically in the mean over the geometric grid.
    let series = bundle.geometric_series();
    assert!(series.len() >= 4);
    for w in series.windows(2) {
        assert!(
            w[1].mean_colors <= w[0].mean_colors + 1e-9,
            "mean colors must not increase: {:?} -> {:?}",
            w[0],
            w[1]
        );
    }
    // The final aggregate is consensus.
    let last = series.last().expect("non-empty");
    assert_eq!(last.mean_colors, 1.0);
    assert_eq!(last.mean_max_support, n as f64);
    // CSV export carries all rows.
    assert_eq!(bundle.to_csv().lines().count(), series.len() + 1);
}

#[test]
fn potential_observables_track_a_run() {
    use symbreak::core::potential::observables;
    let mut e =
        VectorEngine::new(ThreeMajority, Configuration::singletons(1024), 7).with_compaction();
    let mut last_collision = observables(&e.configuration()).collision;
    let mut increases = 0u32;
    let mut rounds = 0u32;
    while !e.is_consensus() {
        e.step();
        rounds += 1;
        let o = observables(&e.configuration());
        if o.collision >= last_collision {
            increases += 1;
        }
        last_collision = o.collision;
    }
    assert!((last_collision - 1.0).abs() < 1e-12, "consensus has collision 1");
    // Collision probability is a submartingale in practice: the vast
    // majority of rounds increase it.
    assert!(
        increases as f64 > 0.8 * rounds as f64,
        "collision decreased too often ({increases}/{rounds})"
    );
}
