//! Section-5 fault-tolerance integration: adversaries composed with the
//! core processes, validity end-to-end.

use symbreak::adversary::corruption_within_budget;
use symbreak::prelude::*;

#[test]
fn tolerated_budget_converges_valid_for_all_strategies() {
    let start = Configuration::uniform(1024, 4);
    let opts = AdversarialRun { max_rounds: 50_000, quorum_fraction: 0.9, seed: 1 };
    let mut strategies: Vec<Box<dyn Adversary>> = vec![
        Box::new(Nop),
        Box::new(RandomFlipper::new(1)),
        Box::new(MinoritySupporter::new(1, 4)),
        Box::new(SplitKeeper::new(1)),
    ];
    for strat in strategies.iter_mut() {
        let name = strat.name();
        let out = run_adversarial(&ThreeMajority, strat.as_mut(), start.clone(), &opts);
        assert!(out.byzantine_success(), "{name} with F=1 must be tolerated");
    }
}

#[test]
fn two_choices_also_tolerates_small_random_faults() {
    let start = Configuration::uniform(1024, 2);
    let opts = AdversarialRun { max_rounds: 100_000, quorum_fraction: 0.9, seed: 2 };
    let out = run_adversarial(&TwoChoices, &mut RandomFlipper::new(1), start, &opts);
    assert!(out.byzantine_success());
}

#[test]
fn overwhelming_minority_supporter_delays_beyond_clean_time() {
    // Measure the clean stabilization time, then show a large budget at
    // least quadruples it (or stalls entirely).
    let start = Configuration::uniform(1024, 4);
    let clean = run_adversarial(
        &ThreeMajority,
        &mut Nop,
        start.clone(),
        &AdversarialRun { max_rounds: 100_000, quorum_fraction: 0.9, seed: 3 },
    )
    .stabilized_round
    .expect("clean run stabilizes");
    let attacked = run_adversarial(
        &ThreeMajority,
        &mut MinoritySupporter::new(64, 4),
        start,
        &AdversarialRun { max_rounds: clean * 4, quorum_fraction: 0.9, seed: 3 },
    );
    assert!(
        attacked.stabilized_round.is_none(),
        "F=64 supporter should delay beyond 4x the clean time ({clean} rounds)"
    );
}

#[test]
fn corruption_budgets_hold_along_a_run() {
    use rand::SeedableRng;
    let mut rng = Pcg64::seed_from_u64(4);
    let mut config = Configuration::uniform(512, 8);
    let mut adv = RandomFlipper::new(7);
    for _ in 0..100 {
        let before = config.clone();
        adv.corrupt(&mut config, &mut rng);
        assert!(corruption_within_budget(&before, &config, 7));
        config = ThreeMajority.vector_step(&config, &mut rng);
    }
}

#[test]
fn validity_tracker_flags_manufactured_colors() {
    // An adversary that funnels mass into an initially-dead color must be
    // caught by the validity check.
    let start = Configuration::from_counts(vec![500, 500, 0]);
    let tracker = ValidityTracker::from_initial(&start);
    let forged = Configuration::from_counts(vec![10, 10, 980]);
    assert!(!tracker.almost_all_valid(&forged, 0.9));
    assert!(tracker.is_valid(Opinion::new(0)));
    assert!(!tracker.is_valid(Opinion::new(2)));
}
