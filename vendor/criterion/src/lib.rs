//! Vendored, API-compatible subset of `criterion` 0.5.
//!
//! A real wall-clock micro-benchmark harness covering the criterion API
//! used in `crates/bench/benches/`: groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Differences from upstream, chosen for an offline environment:
//!
//! * CLI filters: every non-flag argument is a substring filter matched
//!   against the bench *target* name and the benchmark id, and multiple
//!   filters are OR-ed — so `cargo bench -p symbreak-bench -- samplers
//!   engines` runs exactly the `samplers` and `engines` targets.
//! * Results can be appended as JSON lines to the file named by
//!   `SYMBREAK_BENCH_JSON`, which `scripts/ci.sh` assembles into the
//!   repo-level `BENCH_*.json` baselines.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark, rendered `function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Conversion into a benchmark id string (upstream `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (recorded but not rated in this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function[/param]` id.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    result_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures `f`, adapting the iteration count to its speed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: one timed call.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Aim for a few seconds of total measurement (upstream criterion
        // defaults to 3s warmup + 5s measurement), but never fewer than
        // `samples` iterations, and bail out early for very slow bodies.
        // `SYMBREAK_BENCH_MS` overrides, e.g. for CI smoke runs.
        let budget = Duration::from_millis(
            std::env::var("SYMBREAK_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_500),
        );
        let per_sample_iters = if once > budget {
            1
        } else {
            let total_iters = (budget.as_nanos() / once.as_nanos()).max(1) as u64;
            (total_iters / self.samples as u64).max(1)
        };
        let samples = if once > budget { 1 } else { self.samples };

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample_iters {
                black_box(f());
            }
            total += start.elapsed();
            iters += per_sample_iters;
        }
        self.result_ns = total.as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates throughput (recorded as a no-op in this shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Reduces measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut b = Bencher { samples: self.samples, result_ns: 0.0, iterations: 0 };
        f(&mut b);
        self.criterion.record(full_id, b.result_ns, b.iterations);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut b = Bencher { samples: self.samples, result_ns: 0.0, iterations: 0 };
        f(&mut b, input);
        self.criterion.record(full_id, b.result_ns, b.iterations);
        self
    }

    /// Ends the group (results are flushed by `criterion_main!`).
    pub fn finish(&mut self) {}
}

/// The benchmark harness.
pub struct Criterion {
    filters: Vec<String>,
    target: String,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut args = std::env::args();
        let target = args
            .next()
            .map(|p| {
                let base = p.rsplit('/').next().unwrap_or(&p).to_string();
                // Cargo bench binaries are named `<target>-<hash>`.
                match base.rsplit_once('-') {
                    Some((name, hash))
                        if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                    {
                        name.to_string()
                    }
                    _ => base,
                }
            })
            .unwrap_or_default();
        let filters = args.filter(|a| !a.starts_with('-')).collect();
        Self { filters, target, results: Vec::new() }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), samples: 10 }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id.to_string(), f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty()
            || self
                .filters
                .iter()
                .any(|f| id.contains(f.as_str()) || self.target.contains(f.as_str()))
    }

    fn record(&mut self, id: String, ns: f64, iterations: u64) {
        println!("{:<56} time: {:>12} ({} iters)", id, format_ns(ns), iterations);
        self.results.push(BenchResult { id, ns_per_iter: ns, iterations });
    }

    /// Flushes results; called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        if let Ok(path) = std::env::var("SYMBREAK_BENCH_JSON") {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("SYMBREAK_BENCH_JSON={path}: {e}"));
            for r in &self.results {
                writeln!(
                    file,
                    "{{\"target\":\"{}\",\"id\":\"{}\",\"ns_per_iter\":{:.2},\"iterations\":{}}}",
                    self.target, r.id, r.ns_per_iter, r.iterations,
                )
                .expect("write bench json");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
