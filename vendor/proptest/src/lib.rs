//! Vendored, API-compatible subset of `proptest` 1.x.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro over `#[test]` items with `arg in strategy`
//! bindings, range and `collection::vec` strategies, `Just`,
//! `prop_filter` / `prop_filter_map`, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (derived from the test name), so failures
//! reproduce across runs. No shrinking: the failing inputs are printed
//! instead — with fixed seeds, re-running reproduces them exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

pub mod prelude {
    //! Common imports for property tests.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property-based tests.
///
/// Supports the upstream surface used here: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn
/// name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal: expands each `#[test] fn` item into a driver loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest `{}`: gave up after {} attempts ({} cases accepted); \
                     strategies or prop_assume! reject too much",
                    stringify!($name), attempts, accepted,
                );
                // Generate all arguments; a `None` means the strategy
                // filtered this candidate out — try again.
                $(
                    let $arg = match $crate::Strategy::generate(&$strat, &mut rng) {
                        Some(v) => v,
                        None => continue,
                    };
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name), accepted, msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left), stringify!($right), l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects the current test case (does not count towards the case
/// budget) unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
