//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// `generate` returns `None` when the candidate is filtered out (the
/// driver retries with fresh randomness); there is no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one candidate value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Keeps only values satisfying `pred`.
    fn prop_filter<P>(self, reason: &'static str, pred: P) -> Filter<Self, P>
    where
        Self: Sized,
        P: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Maps values through `f`, keeping only `Some` results.
    fn prop_filter_map<F, T>(self, reason: &'static str, f: F) -> FilterMap<Self, F, T>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<T>,
    {
        FilterMap { inner: self, reason, f, _marker: PhantomData }
    }

    /// Maps values through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F, T>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f, _marker: PhantomData }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// Strategy yielding a single constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, P> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: P,
}

impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F, T> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<S: Strategy, F: Fn(S::Value) -> Option<T>, T> Strategy for FilterMap<S, F, T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F, T> {
    inner: S,
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<S: Strategy, F: Fn(S::Value) -> T, T> Strategy for Map<S, F, T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).map(&self.f)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start >= self.end {
                    return None;
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                if start > end {
                    return None;
                }
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return Some(rng.next_u64() as $t);
                }
                Some((start as i128 + rng.below(span as u64) as i128) as $t)
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies generate tuples of values, as upstream.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

impl Strategy for Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> Option<i128> {
        if self.start >= self.end {
            return None;
        }
        let span = (self.end - self.start) as u128;
        let draw = if span <= u64::MAX as u128 {
            rng.below(span as u64) as u128
        } else {
            (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span
        };
        Some(self.start + draw as i128)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        // Rejects empty ranges and NaN endpoints alike.
        if !matches!(self.start.partial_cmp(&self.end), Some(std::cmp::Ordering::Less)) {
            return None;
        }
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let (start, end) = (*self.start(), *self.end());
        // Rejects empty ranges and NaN endpoints alike.
        if !matches!(
            start.partial_cmp(&end),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ) {
            return None;
        }
        // Occasionally emit the exact endpoints: properties at the
        // boundary (p = 0, p = 1) matter for the samplers under test.
        match rng.below(64) {
            0 => Some(start),
            1 => Some(end),
            _ => Some((start + (end - start) * rng.unit_f64()).min(end)),
        }
    }
}

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> Option<char> {
        if self.start >= self.end {
            return None;
        }
        let (lo, hi) = (self.start as u32, self.end as u32);
        for _ in 0..64 {
            let c = lo + rng.below((hi - lo) as u64) as u32;
            if let Some(ch) = char::from_u32(c) {
                return Some(ch);
            }
        }
        Some(self.start)
    }
}
