//! Test configuration, case errors, and the deterministic case RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs don't satisfy preconditions.
    Reject(String),
}

/// Deterministic case-generation RNG (SplitMix64 seeded from the test
/// name), so failures reproduce run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` below `span` (> 0), unbiased.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            if (m as u64) >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
