//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec()`](fn@vec): a fixed `usize` or a range.
pub trait IntoSizeRange {
    /// Lower and upper bound (inclusive) on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec length range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = if self.min == self.max {
            self.min
        } else {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
