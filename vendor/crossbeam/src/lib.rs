//! Vendored, API-compatible subset of `crossbeam` 0.8.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; since Rust
//! 1.63 the standard library provides scoped threads, so the shim is a
//! thin adapter over [`std::thread::scope`]. Behavioural difference kept
//! deliberately: a panicking child propagates at scope exit (std
//! semantics) rather than surfacing through the returned `Result`, which
//! every caller here treats as fatal anyway (`.expect(..)`).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A scope handle for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope itself so children can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame. Returns `Ok` with the closure's result; panics from
    /// children propagate as panics at scope exit.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
