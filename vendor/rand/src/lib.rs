//! Vendored, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the `rand` API it actually uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`rngs::StdRng`], and the [`distributions::Standard`]
//! plumbing behind `gen`. Semantics match upstream where the workspace
//! depends on them: `gen_range` is exactly uniform (Lemire rejection),
//! `gen::<f64>()` is uniform on `[0, 1)` with 53 bits, and trait objects
//! (`&mut dyn RngCore`) compose with the `Rng` methods exactly as in
//! upstream `rand`.

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure (infallible for
    /// all generators in this workspace).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    #[inline]
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanding it through
    /// SplitMix64 (the upstream recipe).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Extension methods on [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range. Exactly uniform
    /// for integer ranges (multiply-shift with rejection).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
