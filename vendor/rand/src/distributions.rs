//! The `Standard` distribution and uniform range sampling.

use crate::{Rng, RngCore};

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers and `bool`, uniform on `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u32() >> 24) as u8
    }
}

impl Distribution<u16> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u32() >> 16) as u16
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 random bits (upstream convention).
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 random bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling over ranges (the machinery behind
    //! `Rng::gen_range`).

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Draws a uniform value in `[0, span)` without modulo bias
    /// (Lemire's multiply-shift with rejection).
    #[inline]
    pub(crate) fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Fast path for powers of two.
        if span.is_power_of_two() {
            return rng.next_u64() & (span - 1);
        }
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let low = m as u64;
            // Accept unless `low` falls in the biased zone; `2^64 mod
            // span < span`, so the division only runs on the rare
            // `low < span` sliver.
            if low >= span || low >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty => $wide:ty),+ $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "gen_range: empty range");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
                }
            }
        )+};
    }

    impl_int_range!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    );

    impl SampleRange<f64> for Range<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            let u: f64 = Standard.sample(rng);
            self.start + (self.end - self.start) * u
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "gen_range: empty range");
            // Upstream samples [start, end] by scaling a [0, 1) draw onto a
            // slightly widened interval and clamping.
            let u: f64 = Standard.sample(rng);
            (start + (end - start) * u).min(end)
        }
    }
}
