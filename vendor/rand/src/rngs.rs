//! Standard generators.

use crate::{Error, RngCore, SeedableRng};

/// A deterministic, seedable generator standing in for `rand::rngs::StdRng`
/// (xoshiro256** core; statistical quality is ample for tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        Self { s }
    }
}
