//! Deterministic, thread-parallel Monte-Carlo driver.
//!
//! Each trial receives a seed derived purely from `(master_seed, trial
//! index)` via [`crate::rng::trial_seed`], so results are identical whether
//! trials run sequentially or across threads, and individual trials can be
//! re-run in isolation for debugging.

use crossbeam::thread;

use crate::rng::trial_seed;

/// Runs `trials` independent experiments in parallel and collects results
/// in trial order.
///
/// `f(trial_index, seed)` must be deterministic given its arguments. The
/// number of worker threads is `min(available_parallelism, trials)`.
///
/// # Example
/// ```
/// use symbreak_sim::run_trials;
/// let doubles = run_trials(8, 42, |trial, _seed| trial * 2);
/// assert_eq!(doubles, vec![0, 2, 4, 6, 8, 10, 12, 14]);
/// ```
pub fn run_trials<T, F>(trials: u64, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    if trials == 0 {
        return Vec::new();
    }
    let workers =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(trials as usize);
    if workers <= 1 {
        return (0..trials).map(|t| f(t, trial_seed(master_seed, t))).collect();
    }

    // Workers claim trials in chunks rather than one-at-a-time: short
    // trials otherwise serialize on the shared counter's cache line. The
    // chunk size keeps ~8 claims per worker for tail load-balancing.
    let chunk = (trials / (8 * workers as u64)).max(1);
    let next = std::sync::atomic::AtomicU64::new(0);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let slot_ptr = SlotsPtr(slots.as_mut_ptr());

    thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            let slot_ptr = &slot_ptr;
            scope.spawn(move |_| loop {
                let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                if start >= trials {
                    break;
                }
                let end = start.saturating_add(chunk).min(trials);
                for t in start..end {
                    let result = f(t, trial_seed(master_seed, t));
                    // SAFETY: each index t lies in exactly one claimed
                    // chunk, and `slots` outlives the scope.
                    unsafe {
                        *slot_ptr.0.add(t as usize) = Some(result);
                    }
                }
            });
        }
    })
    .expect("monte-carlo worker panicked");

    slots.into_iter().map(|s| s.expect("every trial filled")).collect()
}

/// Wrapper making a raw pointer `Sync` for the disjoint-index write pattern
/// above.
struct SlotsPtr<T>(*mut Option<T>);
// SAFETY: workers write disjoint indices only (enforced by the atomic
// fetch_add), and the pointee outlives the scope.
unsafe impl<T: Send> Sync for SlotsPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use rand::{Rng, SeedableRng};

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(100, 7, |t, _| t);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |_t: u64, seed: u64| {
            let mut rng = Pcg64::seed_from_u64(seed);
            rng.gen::<u64>()
        };
        let a = run_trials(64, 99, f);
        let b = run_trials(64, 99, f);
        assert_eq!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let f = |_t: u64, seed: u64| {
            let mut rng = Pcg64::seed_from_u64(seed);
            rng.gen::<u64>()
        };
        let a = run_trials(16, 1, f);
        let b = run_trials(16, 2, f);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 1, |t, _| t);
        assert!(out.is_empty());
    }

    #[test]
    fn single_trial_runs_inline() {
        let out = run_trials(1, 5, |t, s| (t, s));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1, trial_seed(5, 0));
    }

    #[test]
    fn seeds_match_sequential_derivation() {
        let out = run_trials(32, 1234, |t, s| (t, s));
        for (t, s) in out {
            assert_eq!(s, trial_seed(1234, t));
        }
    }
}
