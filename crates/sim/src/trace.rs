//! Round-by-round trajectory recording.
//!
//! The experiments track three observables per round — the number of
//! remaining colors (the paper's progress measure), the maximum support
//! (Theorem 5's observable), and the bias (the gap between the two largest
//! supports) — and export them as CSV for plotting.

/// Observables of one configuration snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Round index (0 = initial configuration).
    pub round: u64,
    /// Number of colors with non-zero support.
    pub num_colors: usize,
    /// Largest support.
    pub max_support: u64,
    /// Difference between the largest and second-largest support.
    pub bias: u64,
}

/// A recorded trajectory of [`RoundStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    rounds: Vec<RoundStats>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one snapshot.
    pub fn push(&mut self, stats: RoundStats) {
        if let Some(last) = self.rounds.last() {
            debug_assert!(stats.round > last.round, "rounds must be recorded in order");
        }
        self.rounds.push(stats);
    }

    /// All recorded snapshots in round order.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Number of recorded snapshots.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The last snapshot, if any.
    pub fn last(&self) -> Option<&RoundStats> {
        self.rounds.last()
    }

    /// First round at which the number of colors was ≤ `k`, if reached.
    ///
    /// This is the hitting time `T^k` of the paper (Section 2.2).
    pub fn hitting_time_colors(&self, k: usize) -> Option<u64> {
        self.rounds.iter().find(|r| r.num_colors <= k).map(|r| r.round)
    }

    /// First round at which the maximum support exceeded `threshold`, if
    /// ever (the observable of Theorem 5).
    pub fn first_support_above(&self, threshold: u64) -> Option<u64> {
        self.rounds.iter().find(|r| r.max_support > threshold).map(|r| r.round)
    }

    /// Renders the trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,num_colors,max_support,bias\n");
        for r in &self.rounds {
            out.push_str(&format!("{},{},{},{}\n", r.round, r.num_colors, r.max_support, r.bias));
        }
        out
    }
}

impl Extend<RoundStats> for Trace {
    fn extend<T: IntoIterator<Item = RoundStats>>(&mut self, iter: T) {
        for s in iter {
            self.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(round: u64, num_colors: usize, max_support: u64, bias: u64) -> RoundStats {
        RoundStats { round, num_colors, max_support, bias }
    }

    #[test]
    fn hitting_time_finds_first_round() {
        let mut t = Trace::new();
        t.extend([stats(0, 10, 1, 0), stats(1, 7, 3, 1), stats(2, 3, 6, 2), stats(3, 1, 10, 10)]);
        assert_eq!(t.hitting_time_colors(10), Some(0));
        assert_eq!(t.hitting_time_colors(5), Some(2));
        assert_eq!(t.hitting_time_colors(1), Some(3));
        assert_eq!(t.hitting_time_colors(0), None);
    }

    #[test]
    fn first_support_above_threshold() {
        let mut t = Trace::new();
        t.extend([stats(0, 10, 1, 0), stats(1, 7, 3, 1), stats(2, 3, 6, 2)]);
        assert_eq!(t.first_support_above(0), Some(0));
        assert_eq!(t.first_support_above(2), Some(1));
        assert_eq!(t.first_support_above(6), None);
    }

    #[test]
    fn csv_round_trips_fields() {
        let mut t = Trace::new();
        t.push(stats(0, 4, 2, 1));
        let csv = t.to_csv();
        assert!(csv.starts_with("round,"));
        assert!(csv.contains("0,4,2,1"));
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.last(), None);
        assert_eq!(t.hitting_time_colors(1), None);
    }

    #[test]
    fn last_returns_latest() {
        let mut t = Trace::new();
        t.push(stats(0, 2, 5, 1));
        t.push(stats(5, 1, 10, 10));
        assert_eq!(t.last().map(|r| r.round), Some(5));
        assert_eq!(t.len(), 2);
    }
}
