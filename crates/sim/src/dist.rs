//! Exact discrete samplers, implemented from scratch.
//!
//! Everything the engines draw per round bottoms out here:
//!
//! * [`Binomial`] — inversion (BINV) when `n·min(p,q) < 10`, Hörmann's
//!   BTRS transformed rejection above it; both exact.
//! * [`Multinomial`] / [`sample_multinomial_into`] — `O(k)`
//!   conditional-binomial decomposition; the `_into` form is
//!   allocation-free for hot loops. [`sample_multinomial_sparse_into`]
//!   walks an occupied-slot list instead of the dense vector, which is
//!   what keeps singleton-start vector rounds at `O(#surviving colors)`.
//! * [`Categorical`] — Vose's alias method: `O(k)` build, `O(1)` draw.
//!   This is what the agent engine rebuilds once per round to sample
//!   opinions instead of nodes.
//! * [`sample_multinomial_tally_into`] — the "ball-drop" multinomial
//!   form: `n` alias draws tallied. Same law as the conditional-binomial
//!   walk, inverted cost profile — this is what keeps the `k = n`
//!   singleton start from paying one binomial construction per occupied
//!   slot.
//! * [`Geometric`] — inversion.
//! * [`Hypergeometric`] — inversion from the support's lower bound for
//!   the small draw counts of per-node sample windows, switching to a
//!   mode-centered two-sided inversion when the edge pmf underflows
//!   (bulk draws).
//! * [`WindowSplitter`] / [`WindowMultinomial`] — per-node window
//!   samplers for rules that consume only the *multiset* of their
//!   window: a without-replacement dealing of a pooled sample histogram
//!   (multivariate hypergeometric conditionals), and i.i.d. `Mult(h, θ)`
//!   windows with the conditional binomials cached across nodes.
//! * [`GroupSplitter`] — the bulk sibling of `WindowSplitter`: deals a
//!   pooled histogram into per-(opinion-group) *blocks* of `g·h` draws
//!   in one multivariate-hypergeometric call per block, which is what
//!   makes condensed pull rounds `O(#occupied·h)` instead of per-node.
//! * [`FenwickPool`] — a without-replacement dealer over category
//!   counts (`O(log d)` bit-descended single draws, bulk removal by
//!   conditional hypergeometrics).
//! * [`DynamicCategorical`] / [`UpdatableSampler`] — the persistent
//!   round-state samplers: a Fenwick-CDF categorical with `O(log k)`
//!   single-slot updates and `O(log k)` with-replacement draws, and
//!   the arbitration wrapper that picks per round between patching it
//!   (`O(#changed·log k)`) and rebuilding a Vose alias over the
//!   occupied slots (`O(#occupied)`).
//! * [`sample_distinct`] — Floyd's algorithm for `m` distinct indices.
//!
//! All samplers take any [`rand::RngCore`] (including `&mut dyn RngCore`)
//! and are deterministic given the generator state, which keeps whole
//! trajectories bit-reproducible.
//!
//! # Example
//!
//! One synchronous round of an anonymous process, drawn two ways — the
//! vectorized multinomial (how `VectorEngine` steps) and per-node alias
//! draws (how `AgentEngine` samples) — from the same support counts:
//!
//! ```
//! use rand::SeedableRng;
//! use symbreak_sim::dist::{Categorical, Multinomial};
//! use symbreak_sim::rng::Pcg64;
//!
//! let mut rng = Pcg64::seed_from_u64(7);
//! let supports = [60.0, 30.0, 10.0];
//!
//! // Vectorized: the whole next configuration in k binomial draws.
//! let next = Multinomial::new(100, &supports).sample(&mut rng);
//! assert_eq!(next.iter().sum::<u64>(), 100);
//!
//! // Agent-level: one O(1) categorical draw per pull.
//! let alias = Categorical::new(&supports);
//! let pulls: Vec<usize> = (0..100).map(|_| alias.sample(&mut rng)).collect();
//! assert!(pulls.iter().all(|&c| c < 3));
//! ```

use rand::{Rng, RngCore};

/// `n·min(p, 1−p)` boundary between the inversion and BTRS regimes.
/// `benches/ablation.rs` probes both sides of this threshold.
const BTRS_THRESHOLD: f64 = 10.0;

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[0, span)` without modulo bias (Lemire rejection).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(span as u128);
        let low = m as u64;
        // `2^64 mod span < span`, so `low ≥ span` always accepts; the
        // division only runs on the ~`span/2^64` sliver of draws.
        if low >= span || low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

/// `ln(k!)`: exact table for small `k`, Stirling's series beyond it.
///
/// The series error at `k ≥ 16` is below 1e-13 relative, far inside the
/// tolerance the BTRS acceptance test needs.
// The table entries are ln(k!) to full f64 precision; ln(2!) genuinely
// equals the LN_2 constant clippy spots, it is not a rounded stand-in.
#[allow(clippy::approx_constant, clippy::excessive_precision)]
fn ln_factorial(k: u64) -> f64 {
    const TABLE: [f64; 17] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_251,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
        30.671_860_106_080_672,
    ];
    if k < TABLE.len() as u64 {
        return TABLE[k as usize];
    }
    let x = k as f64;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x + 0.5) * x.ln() - x
        + 0.918_938_533_204_672_7 // ln(2π)/2
        + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 / 1260.0))
}

/// Sampling regime chosen at construction time.
#[derive(Debug, Clone, Copy)]
enum BinomialMethod {
    /// `p ∈ {0, 1}` or `n = 0`: the result is constant.
    Degenerate(u64),
    /// BINV sequential inversion (small `n·p'`).
    Inversion {
        /// `q^n`, the pmf at zero.
        r0: f64,
        /// `p/q`.
        s: f64,
        /// `(n+1)·s`.
        a: f64,
    },
    /// Hörmann's BTRS transformed rejection (large `n·p'`).
    Btrs {
        b: f64,
        a: f64,
        c: f64,
        v_r: f64,
        alpha: f64,
        /// `ln(p/q)`.
        lpq: f64,
        /// Mode `⌊(n+1)p⌋`.
        m: u64,
        /// `ln(m!) + ln((n−m)!)`.
        h: f64,
    },
}

/// The binomial distribution `Bin(n, p)`.
///
/// Construction precomputes the regime constants, so repeated `sample`
/// calls on one instance are cheap in both regimes.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::Binomial;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(1);
/// let x = Binomial::new(1_000_000, 0.5).sample(&mut rng);
/// assert!((x as f64 - 500_000.0).abs() < 5_000.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Binomial {
    n: u64,
    /// Effective success probability `p' = min(p, 1−p)`.
    p_eff: f64,
    /// Whether the result must be mirrored (`p > 1/2`).
    flipped: bool,
    method: BinomialMethod,
}

impl Binomial {
    /// Creates a sampler for `Bin(n, p)`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1` and `p` is finite.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "binomial p = {p} out of [0, 1]");
        let flipped = p > 0.5;
        let p_eff = if flipped { 1.0 - p } else { p };
        let method = if n == 0 || p_eff == 0.0 {
            BinomialMethod::Degenerate(0)
        } else if n as f64 * p_eff < BTRS_THRESHOLD {
            let q = 1.0 - p_eff;
            let s = p_eff / q;
            BinomialMethod::Inversion {
                // q^n via exp(n ln q): no underflow in this regime since
                // n·p' < 10 implies n·ln(1/q) ≲ 10·(1 + p').
                r0: (n as f64 * q.ln()).exp(),
                s,
                a: (n as f64 + 1.0) * s,
            }
        } else {
            let nf = n as f64;
            let q = 1.0 - p_eff;
            let spq = (nf * p_eff * q).sqrt();
            let b = 1.15 + 2.53 * spq;
            let a = -0.0873 + 0.0248 * b + 0.01 * p_eff;
            let c = nf * p_eff + 0.5;
            let v_r = 0.92 - 4.2 / b;
            let alpha = (2.83 + 5.1 / b) * spq;
            let lpq = (p_eff / q).ln();
            let m = ((nf + 1.0) * p_eff).floor() as u64;
            BinomialMethod::Btrs {
                b,
                a,
                c,
                v_r,
                alpha,
                lpq,
                m,
                h: ln_factorial(m) + ln_factorial(n - m),
            }
        };
        Self { n, p_eff, flipped, method }
    }

    /// Number of trials `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        if self.flipped {
            1.0 - self.p_eff
        } else {
            self.p_eff
        }
    }

    /// Draws one value in `0..=n`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let x = match self.method {
            BinomialMethod::Degenerate(v) => v,
            BinomialMethod::Inversion { r0, s, a } => self.sample_inversion(rng, r0, s, a),
            BinomialMethod::Btrs { b, a, c, v_r, alpha, lpq, m, h } => {
                self.sample_btrs(rng, b, a, c, v_r, alpha, lpq, m, h)
            }
        };
        if self.flipped {
            self.n - x
        } else {
            x
        }
    }

    /// BINV: walk the cdf from zero using the pmf recurrence
    /// `pmf(x+1) = pmf(x) · (n−x)/(x+1) · p/q`.
    fn sample_inversion<R: RngCore + ?Sized>(&self, rng: &mut R, r0: f64, s: f64, a: f64) -> u64 {
        // With n·p' < 10, P(X > 110) < 1e-50; restarting past the bound
        // keeps the walk finite without measurable distortion.
        let bound = self.n.min(110);
        loop {
            let mut r = r0;
            let mut u = unit_f64(rng);
            let mut x = 0u64;
            loop {
                if u <= r {
                    return x;
                }
                u -= r;
                x += 1;
                if x > bound {
                    break; // numerical tail; redraw
                }
                r *= a / x as f64 - s;
            }
        }
    }

    /// BTRS (Hörmann 1993): transformed rejection with a squeeze that
    /// accepts ~96% of candidates without evaluating the pmf.
    #[allow(clippy::too_many_arguments)]
    fn sample_btrs<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        b: f64,
        a: f64,
        c: f64,
        v_r: f64,
        alpha: f64,
        lpq: f64,
        m: u64,
        h: f64,
    ) -> u64 {
        loop {
            let u = unit_f64(rng) - 0.5;
            let mut v = unit_f64(rng);
            let us = 0.5 - u.abs();
            let kf = (2.0 * a / us + b) * u + c;
            if kf < 0.0 || kf > self.n as f64 {
                continue;
            }
            let k = kf as u64;
            if us >= 0.07 && v <= v_r {
                return k; // inside the squeeze: accept without pmf work
            }
            v = (v * alpha / (a / (us * us) + b)).ln();
            let accept =
                h - ln_factorial(k) - ln_factorial(self.n - k) + (k as f64 - m as f64) * lpq;
            if v <= accept {
                return k;
            }
        }
    }
}

/// The multinomial distribution `Mult(n, θ)` via the conditional-binomial
/// decomposition: `X_1 ∼ Bin(n, θ_1/Σθ)`, then recursively on the rest.
///
/// `O(k)` per draw with `k` binomial draws, each `O(1)` amortized.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::Multinomial;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(3);
/// let dist = Multinomial::new(1_000, &[1.0, 1.0, 2.0]);
/// let counts = dist.sample(&mut rng);
/// assert_eq!(counts.iter().sum::<u64>(), 1_000);
/// assert!(counts[2] > counts[0]); // twice the weight
/// ```
#[derive(Debug, Clone)]
pub struct Multinomial {
    n: u64,
    theta: Vec<f64>,
    /// Index of the last strictly positive weight (all remaining mass is
    /// assigned there, so floating-point dust never lands on a
    /// zero-probability category).
    last_pos: usize,
}

impl Multinomial {
    /// Creates a sampler for `Mult(n, θ)`. Weights need not be normalized
    /// but must be finite, non-negative, and not all zero (unless `n = 0`).
    ///
    /// # Panics
    /// Panics on empty, negative, or non-finite weights, or all-zero
    /// weights with `n > 0`.
    pub fn new(n: u64, theta: &[f64]) -> Self {
        assert!(!theta.is_empty(), "multinomial needs at least one category");
        for (i, &t) in theta.iter().enumerate() {
            assert!(t.is_finite() && t >= 0.0, "theta[{i}] = {t} invalid");
        }
        let last_pos = match theta.iter().rposition(|&t| t > 0.0) {
            Some(i) => i,
            None => {
                assert!(n == 0, "all-zero weights cannot place {n} trials");
                0
            }
        };
        Self { n, theta: theta.to_vec(), last_pos }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of categories.
    pub fn k(&self) -> usize {
        self.theta.len()
    }

    /// Draws one count vector (allocates; see [`Multinomial::sample_into`]).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let mut out = vec![0u64; self.theta.len()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draws one count vector into `out` without allocating.
    ///
    /// # Panics
    /// Panics unless `out.len() == k`.
    pub fn sample_into<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [u64]) {
        conditional_binomial_into(self.n, &self.theta, self.last_pos, rng, out);
    }
}

/// Allocation-free multinomial draw: fills `out[i] ∼ Mult(n, θ)`.
///
/// Free-function form used by every rule's vector step; `θ` need not be
/// normalized. For repeated draws from fixed `θ` prefer [`Multinomial`],
/// which hoists validation out of the loop.
///
/// # Panics
/// Panics if `out.len() != theta.len()`, on invalid weights, or if all
/// weights are zero while `n > 0`.
pub fn sample_multinomial_into<R: RngCore + ?Sized>(
    n: u64,
    theta: &[f64],
    rng: &mut R,
    out: &mut [u64],
) {
    let last_pos = match theta.iter().rposition(|&t| t > 0.0) {
        Some(i) => i,
        None => {
            assert!(n == 0, "all-zero weights cannot place {n} trials");
            out.fill(0);
            return;
        }
    };
    conditional_binomial_into(n, theta, last_pos, rng, out);
}

/// Sparse multinomial draw over occupied slots only: `theta[j]` is the
/// weight of dense slot `idx[j]`, and the count drawn for it is **added**
/// to `out[idx[j]]`. Slots outside `idx` are untouched, and the
/// conditional-binomial walk visits only the `idx` list, so a draw costs
/// `O(idx.len())` regardless of `out.len()`.
///
/// With ascending `idx` listing exactly the positive entries of a dense
/// weight vector (and `out` zeroed at those slots), the RNG consumption —
/// and hence the drawn configuration — is identical to
/// [`sample_multinomial_into`] over the dense vector: a zero-weight slot
/// there draws from a degenerate binomial, which consumes no randomness.
/// This is what the occupancy-aware engine stack leans on for its
/// `O(#occupied)`-per-round steps.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::sample_multinomial_sparse_into;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(5);
/// // 1000 slots, only two occupied: the walk visits just those two.
/// let mut counts = vec![0u64; 1000];
/// sample_multinomial_sparse_into(50, &[3.0, 1.0], &[17, 900], &mut rng, &mut counts);
/// assert_eq!(counts[17] + counts[900], 50);
/// assert_eq!(counts.iter().sum::<u64>(), 50);
/// ```
///
/// # Panics
/// Panics if `theta.len() != idx.len()`, on invalid weights, or if all
/// weights are zero while `n > 0`.
pub fn sample_multinomial_sparse_into<R: RngCore + ?Sized>(
    n: u64,
    theta: &[f64],
    idx: &[u32],
    rng: &mut R,
    out: &mut [u64],
) {
    assert_eq!(theta.len(), idx.len(), "one weight per occupied slot");
    let last_pos = match theta.iter().rposition(|&t| t > 0.0) {
        Some(i) => i,
        None => {
            assert!(n == 0, "all-zero weights cannot place {n} trials");
            return;
        }
    };
    conditional_binomial_walk(n, theta, last_pos, rng, |j, x| out[idx[j] as usize] += x);
}

/// The "ball-drop" multinomial draw: `Mult(n, θ)` realized as `n`
/// i.i.d. categorical draws from the prebuilt alias `table`, each
/// tallied into `out[idx[j]]` (added, like the sparse walk; untouched
/// slots stay untouched).
///
/// A multinomial **is** the histogram of `n` i.i.d. categorical draws,
/// so the law is exactly `Mult(n, weights)` for the weights `table` was
/// built from — but the cost profile is inverted relative to the
/// conditional-binomial walk: `O(1)` per trial with no per-category
/// transcendentals, versus one `Binomial` construction per positive
/// category. The walk wins when `n ≫ #categories` (the concentrated
/// regime); the ball-drop wins when `#categories` is of the order of
/// `n` — the `k = n` singleton start, where a vector round's
/// `Mult(n, α)` would otherwise pay `n` binomial constructions. The two
/// forms consume randomness differently, so switching between them
/// changes the realized trajectory (not the law); dispatchers must pick
/// the form from deterministic round state to stay seed-reproducible.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::{sample_multinomial_tally_into, Categorical};
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(19);
/// let table = Categorical::new(&[1.0, 1.0, 2.0]);
/// let mut counts = vec![0u64; 100];
/// sample_multinomial_tally_into(50, &table, &[5, 40, 99], &mut rng, &mut counts);
/// assert_eq!(counts[5] + counts[40] + counts[99], 50);
/// ```
///
/// # Panics
/// Panics if `idx.len() != table.k()`.
pub fn sample_multinomial_tally_into<R: RngCore + ?Sized>(
    n: u64,
    table: &Categorical,
    idx: &[u32],
    rng: &mut R,
    out: &mut [u64],
) {
    assert_eq!(idx.len(), table.k(), "one slot index per alias category");
    for _ in 0..n {
        out[idx[table.sample(rng)] as usize] += 1;
    }
}

fn conditional_binomial_into<R: RngCore + ?Sized>(
    n: u64,
    theta: &[f64],
    last_pos: usize,
    rng: &mut R,
    out: &mut [u64],
) {
    assert_eq!(out.len(), theta.len(), "output length must equal category count");
    out.fill(0);
    conditional_binomial_walk(n, theta, last_pos, rng, |j, x| out[j] += x);
}

/// The shared conditional-binomial walk behind both the dense and the
/// sparse multinomial draws: `deposit(j, x)` receives the count for
/// category `j` (only called with `x > 0`).
///
/// Keeping this walk in one place is load-bearing: the engine stack's
/// seed-exactness guarantee requires the dense and sparse paths to
/// consume the RNG identically, so any change to the mass normalization,
/// the clamp, or the residual handling must apply to both at once.
fn conditional_binomial_walk<R, F>(
    n: u64,
    theta: &[f64],
    last_pos: usize,
    rng: &mut R,
    mut deposit: F,
) where
    R: RngCore + ?Sized,
    F: FnMut(usize, u64),
{
    let mut remaining = n;
    let mut mass: f64 = theta.iter().sum();
    for (j, &t) in theta.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if j == last_pos {
            // All residual mass belongs here; assigning directly keeps
            // floating-point dust off zero-weight categories.
            deposit(j, remaining);
            remaining = 0;
            break;
        }
        let p = (t / mass).clamp(0.0, 1.0);
        let x = Binomial::new(remaining, p).sample(rng);
        if x > 0 {
            deposit(j, x);
            remaining -= x;
        }
        mass -= t;
    }
    debug_assert_eq!(remaining, 0, "all trials must be placed");
}

/// A categorical distribution over `0..k` by Vose's alias method:
/// `O(k)` construction, `O(1)` per draw.
///
/// Zero-weight categories are never sampled — the paper's processes rely
/// on dead colors staying dead.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::Categorical;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(11);
/// let dist = Categorical::new(&[5.0, 0.0, 1.0]);
/// for _ in 0..1_000 {
///     assert_ne!(dist.sample(&mut rng), 1, "dead categories stay dead");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Categorical {
    /// Per-column `(acceptance probability, fallback alias)` packed
    /// into one 16-byte entry: the hot draw reads both unconditionally
    /// (branch-free select), so keeping them on the same cache line
    /// halves the random memory traffic per draw on large tables.
    table: Vec<(f64, u32)>,
    /// Lemire rejection threshold `2^64 mod k`, precomputed so the hot
    /// draw never executes an integer division.
    reject_below: u64,
}

impl Categorical {
    /// Builds the alias table from (unnormalized) non-negative weights.
    ///
    /// # Panics
    /// Panics on empty input, negative/non-finite weights, or an all-zero
    /// weight vector.
    pub fn new(weights: &[f64]) -> Self {
        let mut cat = Self { table: Vec::new(), reject_below: 0 };
        cat.rebuild(weights);
        cat
    }

    /// Rebuilds the table in place from new weights, reusing the table
    /// buffers' capacity — for samplers reconstructed every round (e.g.
    /// the ball-drop multinomial path). The two transient worklists of
    /// Vose's construction still allocate; the `O(k)` `prob`/`alias`
    /// tables do not once capacity has been reached.
    ///
    /// # Panics
    /// As [`Categorical::new`].
    pub fn rebuild(&mut self, weights: &[f64]) {
        let k = weights.len();
        assert!(k > 0, "categorical needs at least one category");
        assert!(k <= u32::MAX as usize, "too many categories for the alias table");
        let mut total = 0.0;
        let mut argmax = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weight[{i}] = {w} invalid");
            if w > weights[argmax] {
                argmax = i;
            }
            total += w;
        }
        assert!(total > 0.0, "categorical weights must not all be zero");

        // Scaled weights: mean 1. Columns < 1 need an alias partner.
        // Zero-weight columns must alias somewhere harmless; the argmax
        // is always a valid positive category.
        let scale = k as f64 / total;
        let table = &mut self.table;
        table.clear();
        table.extend(weights.iter().map(|&w| (w * scale, argmax as u32)));

        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &(p, _)) in table.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Column s keeps its own mass; the rest of the column is
            // donated by l.
            table[s as usize].1 = l;
            let donated = 1.0 - table[s as usize].0;
            table[l as usize].0 -= donated;
            if table[l as usize].0 < 1.0 {
                large.pop();
                // Only genuinely positive categories may become direct
                // hits; floating-point residue on a zero weight must not.
                if weights[l as usize] > 0.0 {
                    small.push(l);
                }
            }
        }
        // Leftovers (all ≈ 1 up to rounding) accept directly.
        for &i in small.iter().chain(large.iter()) {
            table[i as usize].0 = if weights[i as usize] > 0.0 { 1.0 } else { 0.0 };
        }
        self.reject_below = (k as u64).wrapping_neg() % k as u64;
    }

    /// Number of categories.
    pub fn k(&self) -> usize {
        self.table.len()
    }

    /// Draws one category index in `O(1)` — a single 64-bit draw.
    ///
    /// The column is chosen by Lemire multiply-shift with rejection
    /// (exactly uniform); the low 64 bits of the same widening product,
    /// which conditioned on the column are uniform on a grid finer than
    /// f64 resolution, drive the accept/alias threshold. One RNG call
    /// per draw keeps the serial generator dependency off the hot path —
    /// this is what the agent engine leans on for `n·h` draws per round.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.table.len() as u64;
        loop {
            let m = (rng.next_u64() as u128).wrapping_mul(k as u128);
            let low = m as u64;
            if low < self.reject_below {
                continue; // biased zone: probability < k/2^64
            }
            let i = (m >> 64) as usize;
            let frac = (low >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            // The accept/alias decision is data-dependent coin-flip noise
            // (on near-uniform tables the Vose construction cascades
            // donations, leaving accept probabilities spread over (0, 1)),
            // so a branch here mispredicts ~50% and dominates the draw.
            // Select with mask arithmetic instead — guaranteed branch-free.
            let (p, a) = self.table[i];
            let mask = ((frac < p) as usize).wrapping_neg();
            return (i & mask) | (a as usize & !mask);
        }
    }
}

/// The geometric distribution: number of failures before the first
/// success with per-trial success probability `p`.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::Geometric;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(13);
/// assert_eq!(Geometric::new(1.0).sample(&mut rng), 0); // p = 1: success first try
/// let mean = (0..2_000).map(|_| Geometric::new(0.25).sample(&mut rng)).sum::<u64>() as f64
///     / 2_000.0;
/// assert!((mean - 3.0).abs() < 0.5, "E = (1-p)/p = 3, got {mean}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Geometric {
    /// `ln(1 − p)` (`-inf` when `p = 1`).
    ln_q: f64,
}

impl Geometric {
    /// Creates a sampler with success probability `p ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics unless `0 < p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && p > 0.0 && p <= 1.0, "geometric p = {p} out of (0, 1]");
        Self { ln_q: (-p).ln_1p() }
    }

    /// Draws one value (0 when `p = 1`).
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.ln_q == f64::NEG_INFINITY {
            return 0;
        }
        // Inversion: ⌊ln(1−U)/ln(1−p)⌋ with 1−U ∈ (0, 1].
        let u = unit_f64(rng);
        let x = (-u).ln_1p() / self.ln_q;
        if x >= u64::MAX as f64 {
            u64::MAX
        } else {
            x as u64
        }
    }
}

/// The hypergeometric distribution: the number of *marked* balls in a
/// uniform draw of `draws` balls **without replacement** from an urn of
/// `total` balls, `marked` of which are marked.
///
/// Sampled by inversion from the support's lower bound
/// `max(0, draws − (total − marked))` using the pmf ratio recurrence —
/// exact, with the starting pmf evaluated through `ln_factorial` — when
/// the expected walk length `mean − lo` is at most [`WALK_MEAN_CAP`],
/// which fits the small per-window draw counts of the engine stack
/// (`h ≤ 9`ish). For *bulk* parameters (a long expected walk, or an
/// edge pmf that underflows `f64`) construction switches to
/// the HRUA ratio-of-uniforms rejection sampler (Stadlober 1989;
/// Kachitvichyanukul & Schmeiser 1985) — exact acceptance against the
/// true pmf through `ln_factorial`, **O(1) expected uniforms per draw**
/// regardless of the standard deviation, which is what keeps bulk
/// pool-dealing (`GroupSplitter` blocks, condensed cross-deals)
/// n-independent. Degenerate bulk corners HRUA's table-mountain hat
/// does not cover (`min(draws, total − draws) < 10` or
/// `min(marked, total − marked) < 10` — reachable only through extreme
/// `total`) fall back to a two-sided inversion walking outward from the
/// mode `⌊(draws+1)(marked+1)/(total+2)⌋` with the same exact ratio
/// recurrences, expected `O(σ)` support points per draw. Every start
/// realizes the identical law; small-draw parameters keep the
/// lower-bound start (and its exact randomness consumption) unchanged.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::Hypergeometric;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(17);
/// // 3 draws from an urn of 10 with 4 marked: mean 3·4/10 = 1.2.
/// let d = Hypergeometric::new(10, 4, 3);
/// let mean =
///     (0..4_000).map(|_| d.sample(&mut rng)).sum::<u64>() as f64 / 4_000.0;
/// assert!((mean - 1.2).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Hypergeometric {
    total: u64,
    marked: u64,
    draws: u64,
    /// Support lower bound `max(0, draws − (total − marked))`.
    lo: u64,
    /// Support upper bound `min(draws, marked)`.
    hi: u64,
    /// Inversion starting point: `lo` when `pmf(lo)` is representable
    /// (the small-draw walk), otherwise the mode (bulk regime).
    start: u64,
    /// `pmf(start)`.
    p_start: f64,
    /// Precomputed HRUA rejection constants (bulk regime only).
    hrua: Option<Hrua>,
}

/// Constants of the HRUA ratio-of-uniforms hat, precomputed once per
/// parameter triple. The hat is built over the *transformed* problem
/// `(mingoodbad, maxgoodbad, computed_draws)` with
/// `computed_draws = min(draws, total − draws) ≤ total/2` and
/// `mingoodbad = min(marked, total − marked)`, whose symmetry keeps the
/// acceptance rate bounded below uniformly in the parameters; the
/// sample is mapped back through the two reflections afterwards.
#[derive(Debug, Clone, Copy)]
struct Hrua {
    /// `min(marked, total − marked)`.
    mingoodbad: u64,
    /// `max(marked, total − marked)`.
    maxgoodbad: u64,
    /// `min(draws, total − draws)`.
    computed_draws: u64,
    /// Hat center `mean + 1/2`.
    a: f64,
    /// Hat width `D1·sqrt(var + 1/2) + D2` (twice Stadlober's `s_hat`).
    width: f64,
    /// Exclusive upper bound on accepted candidates.
    b: f64,
    /// `ln pmf` numerator terms at the transformed mode (the additive
    /// `ln C(total, draws)` constant cancels in the acceptance test).
    g: f64,
    /// Original `marked` (the second reflection needs it).
    marked: u64,
    /// `marked > total − marked`: undo with `k ← computed_draws − k`.
    marked_flipped: bool,
    /// `draws > total − draws`: undo with `k ← marked − k`.
    draws_flipped: bool,
}

/// HRUA hat-width constants: `2·sqrt(2/e)` and `3 − 2·sqrt(3/e)`.
const HRUA_D1: f64 = 1.715_527_769_921_413_5;
const HRUA_D2: f64 = 0.898_916_162_058_898_8;

/// Largest expected one-sided walk (`mean − lo` support points per
/// draw) the lower-bound inversion is allowed; longer walks take the
/// O(1)-expected HRUA rejection instead. Comfortably above every
/// per-window draw count (`draws ≤ h`), so window dealing keeps the
/// legacy walk and its exact randomness consumption; comfortably below
/// where the walk's linear cost overtakes HRUA's ~2 log-pmf
/// evaluations per draw.
pub const WALK_MEAN_CAP: f64 = 64.0;

impl Hypergeometric {
    /// Creates a sampler for the urn `(total, marked)` and `draws` draws.
    ///
    /// # Panics
    /// Panics if `marked > total` or `draws > total`.
    pub fn new(total: u64, marked: u64, draws: u64) -> Self {
        assert!(marked <= total, "cannot mark {marked} of {total} balls");
        assert!(draws <= total, "cannot draw {draws} of {total} balls");
        let lo = draws.saturating_sub(total - marked);
        let hi = draws.min(marked);
        // ln pmf(x) = ln C(marked, x) + ln C(total−marked, draws−x)
        //           − ln C(total, draws).
        let ln_c = |n: u64, k: u64| ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k);
        let ln_pmf =
            |x: u64| ln_c(marked, x) + ln_c(total - marked, draws - x) - ln_c(total, draws);
        let mut hrua = None;
        let (mut start, mut p_start) = (lo, 1.0);
        if lo != hi {
            // The one-sided walk from `lo` visits `mean − lo` support
            // points in expectation — only dispatch to it when that is
            // genuinely small (it always is for per-window draws,
            // `draws ≤ h`, which keeps the legacy byte-exact randomness
            // consumption on those paths) *and* its starting pmf is
            // representable.
            let mean = draws as f64 * marked as f64 / total as f64;
            let walkable = mean - lo as f64 <= WALK_MEAN_CAP;
            let p_lo = if walkable { ln_pmf(lo).exp() } else { 0.0 };
            if p_lo > 0.0 {
                p_start = p_lo;
            } else {
                // Bulk regime: reject against the HRUA hat (O(1)
                // expected per draw, n-independent) when its validity
                // floor holds, else start an inversion at the mode —
                // its pmf is at least 1/(support width), far above any
                // underflow — and walk both directions from there.
                hrua = Hrua::new(total, marked, draws);
                if hrua.is_none() {
                    let mode =
                        ((draws + 1) as f64 * (marked + 1) as f64 / (total + 2) as f64) as u64;
                    let mode = mode.clamp(lo, hi);
                    let p_mode = ln_pmf(mode).exp();
                    assert!(
                        p_mode > 0.0,
                        "Hypergeometric({total}, {marked}, {draws}): mode pmf underflowed"
                    );
                    (start, p_start) = (mode, p_mode);
                }
            }
        }
        Self { total, marked, draws, lo, hi, start, p_start, hrua }
    }

    /// Ratio `pmf(x+1)/pmf(x)` (requires `lo ≤ x < hi`).
    fn ratio_up(&self, x: u64) -> f64 {
        let num = (self.marked - x) as f64 * (self.draws - x) as f64;
        // `x ≥ lo` keeps `total − marked + x + 1 ≥ draws`, so this
        // ordering never underflows.
        let den = (x + 1) as f64 * (self.total - self.marked + x + 1 - self.draws) as f64;
        num / den
    }

    /// Ratio `pmf(x−1)/pmf(x)` (requires `lo < x ≤ hi`).
    fn ratio_down(&self, x: u64) -> f64 {
        // `x > lo` keeps `total − marked − draws + x ≥ 1`.
        let num = x as f64 * (self.total - self.marked - self.draws + x) as f64;
        let den = (self.marked - x + 1) as f64 * (self.draws - x + 1) as f64;
        num / den
    }

    /// Draws one value in `lo..=hi`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lo == self.hi {
            return self.lo;
        }
        if let Some(hrua) = &self.hrua {
            let x = hrua.sample(rng);
            debug_assert!((self.lo..=self.hi).contains(&x));
            return x;
        }
        if self.start == self.lo {
            // Small-draw one-sided inversion from the lower bound, with
            // the ratio recurrence; restarting past the upper bound
            // handles floating-point dust in the cdf exactly like the
            // binomial BINV walk does.
            loop {
                let mut u = unit_f64(rng);
                let mut x = self.lo;
                let mut r = self.p_start;
                loop {
                    if u <= r {
                        return x;
                    }
                    u -= r;
                    if x == self.hi {
                        break; // numerical tail; redraw
                    }
                    r *= self.ratio_up(x);
                    x += 1;
                }
            }
        }
        // Bulk fallback (degenerate corners outside the HRUA validity
        // floor): two-sided inversion accumulating the cdf outward from
        // the mode, alternating sides, so the expected number of visited
        // support points is O(standard deviation) regardless of how wide
        // the support is. One uniform per attempt, like the walk above.
        loop {
            let mut u = unit_f64(rng);
            if u <= self.p_start {
                return self.start;
            }
            u -= self.p_start;
            let (mut up, mut r_up) = (self.start, self.p_start);
            let (mut dn, mut r_dn) = (self.start, self.p_start);
            loop {
                let mut moved = false;
                if up < self.hi {
                    r_up *= self.ratio_up(up);
                    up += 1;
                    if u <= r_up {
                        return up;
                    }
                    u -= r_up;
                    moved = true;
                }
                if dn > self.lo {
                    r_dn *= self.ratio_down(dn);
                    dn -= 1;
                    if u <= r_dn {
                        return dn;
                    }
                    u -= r_dn;
                    moved = true;
                }
                if !moved {
                    break; // numerical tail; redraw
                }
            }
        }
    }
}

impl Hrua {
    /// Builds the hat for `(total, marked, draws)`, or `None` when the
    /// transformed parameters sit below the validity floor of the
    /// table-mountain majorization (the O(σ) mode walk covers those).
    fn new(total: u64, marked: u64, draws: u64) -> Option<Self> {
        let computed_draws = draws.min(total - draws);
        let mingoodbad = marked.min(total - marked);
        let maxgoodbad = marked.max(total - marked);
        if computed_draws < 10 || mingoodbad < 10 {
            return None;
        }
        let p = mingoodbad as f64 / total as f64;
        let q = maxgoodbad as f64 / total as f64;
        let mu = computed_draws as f64 * p;
        let a = mu + 0.5;
        let var =
            (total - computed_draws) as f64 * computed_draws as f64 * p * q / (total - 1) as f64;
        let sigma = (var + 0.5).sqrt();
        let width = HRUA_D1 * sigma + HRUA_D2;
        let m = ((computed_draws + 1) as f64 * (mingoodbad + 1) as f64 / (total + 2) as f64) as u64;
        let g = Self::ln_pmf_terms(m, mingoodbad, maxgoodbad, computed_draws);
        // The transformed support is the contiguous `0..=min(computed,
        // mingoodbad)` (`computed_draws ≤ total/2 ≤ maxgoodbad` pins the
        // lower bound at 0); `b` additionally clips candidates more than
        // 16 standard deviations above the mean, where the hat carries
        // no mass.
        let b = ((computed_draws.min(mingoodbad) + 1) as f64).min((a + 16.0 * sigma).floor());
        Some(Self {
            mingoodbad,
            maxgoodbad,
            computed_draws,
            a,
            width,
            b,
            g,
            marked,
            marked_flipped: marked > total - marked,
            draws_flipped: draws > total - draws,
        })
    }

    /// The `k`-dependent terms of `−ln pmf(k)` on the transformed
    /// problem: `ln k! + ln (mingoodbad−k)! + ln (computed−k)! +
    /// ln (maxgoodbad−computed+k)!`.
    fn ln_pmf_terms(k: u64, mingoodbad: u64, maxgoodbad: u64, computed: u64) -> f64 {
        ln_factorial(k)
            + ln_factorial(mingoodbad - k)
            + ln_factorial(computed - k)
            + ln_factorial(maxgoodbad - computed + k)
    }

    /// One HRUA rejection draw: two uniforms per attempt, a squeeze
    /// accept, a squeeze reject, then the exact log acceptance test —
    /// O(1) expected attempts uniformly over the parameter space.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = unit_f64(rng);
            let v = unit_f64(rng);
            if u <= 0.0 {
                continue; // guards the hat division and ln(u)
            }
            let x = self.a + self.width * (v - 0.5) / u;
            if x < 0.0 || x >= self.b {
                continue; // outside the support / clipped tail
            }
            let k = x as u64;
            let t = self.g
                - Self::ln_pmf_terms(k, self.mingoodbad, self.maxgoodbad, self.computed_draws);
            // Squeeze accept, squeeze reject, exact test (in that order).
            if u * (4.0 - u) - 3.0 <= t {
                return self.untransform(k);
            }
            if u * (u - t) >= 1.0 {
                continue;
            }
            if 2.0 * u.ln() <= t {
                return self.untransform(k);
            }
        }
    }

    /// Maps an accepted transformed sample back through the two
    /// reflections to the original `(total, marked, draws)` problem.
    fn untransform(&self, k: u64) -> u64 {
        let mut k = k;
        if self.marked_flipped {
            k = self.computed_draws - k;
        }
        if self.draws_flipped {
            k = self.marked - k;
        }
        k
    }
}

/// Deals a pooled sample histogram into fixed-size windows **without
/// replacement** — the lawful hand-out of a round's aggregate sample
/// multiset as per-node window count vectors.
///
/// If the pool is the histogram of `W·h` i.i.d. draws, a uniform dealing
/// into `W` windows of `h` leaves the windows jointly distributed as
/// consecutive `h`-blocks of the i.i.d. sequence (an i.i.d. sequence
/// conditioned on its multiset is a uniform arrangement — the same fact
/// the batched wire's Fisher–Yates dealing leans on). Sequentially, each
/// window's counts follow a multivariate hypergeometric on the
/// *remaining* pool, factorized here into univariate [`Hypergeometric`]
/// conditionals per category, with early exit once the window is full.
/// Order the pool by decreasing count so the early exit bites: a pool
/// dominated by its first category costs ~one draw per window, which is
/// how multiset-consuming rules beat the `O(h)`-draws-per-node dealing.
///
/// Zero-count categories are skipped without consuming randomness.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::WindowSplitter;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(23);
/// let mut pool = [8u64, 3, 1]; // 12 draws for 4 windows of 3
/// let mut splitter = WindowSplitter::new(&mut pool);
/// for _ in 0..4 {
///     let mut window = 0u64;
///     splitter.draw_window(3, &mut rng, |_cat, x| window += x);
///     assert_eq!(window, 3);
/// }
/// assert_eq!(splitter.remaining(), 0);
/// ```
#[derive(Debug)]
pub struct WindowSplitter<'a> {
    pool: &'a mut [u64],
    remaining: u64,
}

impl<'a> WindowSplitter<'a> {
    /// Wraps a pool histogram (counts per category) for dealing. The
    /// pool is consumed in place as windows are drawn.
    pub fn new(pool: &'a mut [u64]) -> Self {
        let remaining = pool.iter().sum();
        Self { pool, remaining }
    }

    /// Balls left in the pool.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Deals one window of `h` balls from the pool, calling
    /// `deposit(category, count)` for each category with a positive
    /// count in the window (ascending category order).
    ///
    /// # Panics
    /// Panics if fewer than `h` balls remain.
    pub fn draw_window<R, F>(&mut self, h: u64, rng: &mut R, mut deposit: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(usize, u64),
    {
        assert!(h <= self.remaining, "window of {h} from a pool of {}", self.remaining);
        let mut need = h;
        let mut suffix = self.remaining;
        for (cat, count) in self.pool.iter_mut().enumerate() {
            if need == 0 {
                break;
            }
            let k = *count;
            if k == 0 {
                continue;
            }
            // This category's share of the window: hypergeometric on the
            // remaining pool suffix. When the suffix *is* this category,
            // the draw is deterministic and consumes no randomness.
            let x =
                if k == suffix { need } else { Hypergeometric::new(suffix, k, need).sample(rng) };
            if x > 0 {
                deposit(cat, x);
                *count -= x;
                need -= x;
            }
            suffix -= k;
        }
        debug_assert_eq!(need, 0, "window must be filled exactly");
        self.remaining -= h;
    }
}

/// Deals a pooled sample histogram into per-(opinion-group) **blocks**
/// without replacement — the bulk sibling of [`WindowSplitter`].
///
/// Where `WindowSplitter` hands out one node's `h`-window at a time,
/// `GroupSplitter` hands out a whole opinion group's `g·h` draws in one
/// call: the block counts follow a multivariate hypergeometric on the
/// *remaining* pool, factorized into per-category [`Hypergeometric`]
/// conditionals (riding the mode-centered bulk path). Dealing every
/// group's block this way is jointly the same law as dealing the `g·h`
/// draws window-by-window and summing — the windows of a uniform
/// dealing are exchangeable, so any fixed grouping of them into blocks
/// is itself a uniform block dealing. A multiset-consuming rule never
/// reads the per-window partition inside a group, which is what makes
/// the `O(#groups · #categories)` block split a lawful replacement for
/// the `O(nodes · h)` per-node split.
///
/// Zero-count categories are skipped and a `draws = 0` block returns
/// immediately; neither consumes randomness.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::GroupSplitter;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(29);
/// let mut pool = [6u64, 4, 2]; // 12 pooled draws: blocks of 8 and 4
/// let mut splitter = GroupSplitter::new(&mut pool);
/// let mut block = 0u64;
/// splitter.draw_block(8, &mut rng, |_cat, x| block += x);
/// assert_eq!((block, splitter.remaining()), (8, 4));
/// splitter.draw_block(4, &mut rng, |_cat, x| block += x);
/// assert_eq!((block, splitter.remaining()), (12, 0));
/// ```
#[derive(Debug)]
pub struct GroupSplitter<'a> {
    pool: &'a mut [u64],
    remaining: u64,
}

impl<'a> GroupSplitter<'a> {
    /// Wraps a pool histogram (counts per category) for dealing. The
    /// pool is consumed in place as blocks are drawn.
    pub fn new(pool: &'a mut [u64]) -> Self {
        let remaining = pool.iter().sum();
        Self { pool, remaining }
    }

    /// Balls left in the pool.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Deals one block of `draws` balls from the pool, calling
    /// `deposit(category, count)` for each category with a positive
    /// count in the block (ascending category order).
    ///
    /// # Panics
    /// Panics if fewer than `draws` balls remain.
    pub fn draw_block<R, F>(&mut self, draws: u64, rng: &mut R, mut deposit: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(usize, u64),
    {
        assert!(draws <= self.remaining, "block of {draws} from a pool of {}", self.remaining);
        if draws == 0 {
            return;
        }
        let mut need = draws;
        let mut suffix = self.remaining;
        for (cat, count) in self.pool.iter_mut().enumerate() {
            if need == 0 {
                break;
            }
            let k = *count;
            if k == 0 {
                continue;
            }
            // This category's share of the block: hypergeometric on the
            // remaining pool suffix. When the suffix *is* this category,
            // the draw is deterministic and consumes no randomness.
            let x =
                if k == suffix { need } else { Hypergeometric::new(suffix, k, need).sample(rng) };
            if x > 0 {
                deposit(cat, x);
                *count -= x;
                need -= x;
            }
            suffix -= k;
        }
        debug_assert_eq!(need, 0, "block must be filled exactly");
        self.remaining -= draws;
    }
}

/// A without-replacement dealer over pooled category counts: `O(d)`
/// build, `O(log d)` per single-ball draw (Fenwick prefix sums,
/// bit-descended), plus incremental `add`/`remove` edits and a bulk
/// [`FenwickPool::deal`] that switches to per-category conditional
/// hypergeometrics once the requested count rivals the category count.
///
/// Sequential uniform draws without replacement realize exactly the
/// multivariate-hypergeometric block law of [`GroupSplitter`], so the
/// two are interchangeable in law; the Fenwick form is for consumers
/// that interleave draws with structural edits (e.g. 3-Majority's
/// condensed pull step temporarily masking one category out of the
/// partner pool between deals).
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::FenwickPool;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(31);
/// let mut pool = FenwickPool::new(&[5, 0, 3]);
/// assert_eq!(pool.remaining(), 8);
/// let cat = pool.draw(&mut rng);
/// assert_ne!(cat, 1, "empty categories are never drawn");
/// assert_eq!(pool.remaining(), 7);
/// let mut dealt = 0u64;
/// pool.deal(7, &mut rng, |_cat, c| dealt += c);
/// assert_eq!((dealt, pool.remaining()), (7, 0));
/// ```
#[derive(Debug, Clone)]
pub struct FenwickPool {
    /// 1-based Fenwick tree over the category counts.
    tree: Vec<u64>,
    /// Plain count mirror (`counts[i]` = balls left in category `i`).
    counts: Vec<u64>,
    remaining: u64,
}

impl FenwickPool {
    /// Builds the dealer over `counts` balls per category.
    pub fn new(counts: &[u64]) -> Self {
        let mut pool =
            Self { tree: Vec::new(), counts: counts.to_vec(), remaining: counts.iter().sum() };
        pool.rebuild();
        pool
    }

    /// Reconstructs the Fenwick tree from the count mirror, `O(d)`.
    fn rebuild(&mut self) {
        let len = self.counts.len();
        self.tree.clear();
        self.tree.resize(len + 1, 0);
        self.tree[1..].copy_from_slice(&self.counts);
        for i in 1..=len {
            let j = i + (i & i.wrapping_neg());
            if j <= len {
                self.tree[j] += self.tree[i];
            }
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the pool has no categories at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Balls left in the pool.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Balls left in category `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Adds `k` balls to category `i`, `O(log d)`.
    pub fn add(&mut self, i: usize, k: u64) {
        self.counts[i] += k;
        self.remaining += k;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] += k;
            j += j & j.wrapping_neg();
        }
    }

    /// Removes `k` balls from category `i`, `O(log d)`.
    ///
    /// # Panics
    /// Panics (in debug builds) if category `i` holds fewer than `k`.
    pub fn remove(&mut self, i: usize, k: u64) {
        debug_assert!(self.counts[i] >= k, "removing {k} from a category of {}", self.counts[i]);
        self.counts[i] -= k;
        self.remaining -= k;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] -= k;
            j += j & j.wrapping_neg();
        }
    }

    /// Draws one pooled ball uniformly and removes it; returns its
    /// 0-based category index. `O(log d)`.
    pub fn draw<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> usize {
        debug_assert!(self.remaining > 0, "drew from an empty pool");
        let len = self.counts.len();
        let mut target = rng.gen_range(0..self.remaining);
        // Descend to the largest index whose prefix sum is ≤ target.
        let mut pos = 0usize;
        let mut step = len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        let mut i = pos + 1;
        while i <= len {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
        self.counts[pos] -= 1;
        self.remaining -= 1;
        pos
    }

    /// Deals `c` uniform balls without replacement, calling
    /// `deposit(category, count)` per removal (entries may repeat and
    /// carry count 1 on the per-ball path; callers tally).
    ///
    /// Dispatched deterministically in `(c, d)`: when the deal is a
    /// sizeable fraction of the category count (`8·c ≥ d`) it runs as
    /// one per-category conditional-hypergeometric sweep plus an `O(d)`
    /// tree rebuild — the [`GroupSplitter`] law — otherwise as `c`
    /// bit-descended single draws (`O(c log d)`), which is cheaper for
    /// sparse removals from wide pools. Both realize the identical
    /// uniform without-replacement law.
    ///
    /// # Panics
    /// Panics if fewer than `c` balls remain.
    pub fn deal<R, F>(&mut self, c: u64, rng: &mut R, mut deposit: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(usize, u64),
    {
        assert!(c <= self.remaining, "deal of {c} from a pool of {}", self.remaining);
        if c == 0 {
            return;
        }
        if c.saturating_mul(8) >= self.counts.len() as u64 {
            let mut need = c;
            let mut suffix = self.remaining;
            for cat in 0..self.counts.len() {
                if need == 0 {
                    break;
                }
                let k = self.counts[cat];
                if k == 0 {
                    continue;
                }
                let x = if k == suffix {
                    need
                } else {
                    Hypergeometric::new(suffix, k, need).sample(rng)
                };
                if x > 0 {
                    deposit(cat, x);
                    self.counts[cat] -= x;
                    need -= x;
                }
                suffix -= k;
            }
            debug_assert_eq!(need, 0, "deal must drain exactly");
            self.remaining -= c;
            self.rebuild();
        } else {
            for _ in 0..c {
                let cat = self.draw(rng);
                deposit(cat, 1);
            }
        }
    }
}

/// With-replacement categorical over integer counts with `O(log k)`
/// single-slot updates and `O(log k)` inversion draws.
///
/// The delta-updatable sibling of [`FenwickPool`] (which deals
/// *without* replacement and mutates on every draw) and of
/// [`Categorical`] (whose Vose table draws in `O(1)` but costs `O(k)`
/// to rebuild after *any* weight change). The tree stores exact
/// integer counts, draws invert an exact uniform in `[0, total)`
/// against prefix sums, and a [`set`](Self::set) patches one slot along
/// its Fenwick update path — so a round that changes `c` slots costs
/// `O(c·log k)` instead of an `O(k)` rebuild, while staying exact in
/// law. This is the patch backend behind [`UpdatableSampler`].
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::DynamicCategorical;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(5);
/// let mut cat = DynamicCategorical::new(&[4, 0, 6]);
/// assert_eq!(cat.total(), 10);
/// assert_ne!(cat.sample(&mut rng), 1, "empty slots are never drawn");
/// cat.set(1, 90); // O(log k) patch, no rebuild
/// assert_eq!((cat.total(), cat.count(1)), (100, 90));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicCategorical {
    /// 1-based Fenwick tree over the slot counts.
    tree: Vec<u64>,
    /// Plain count mirror (`counts[i]` = weight of slot `i`).
    counts: Vec<u64>,
    total: u64,
}

impl DynamicCategorical {
    /// Builds the sampler over `counts` per slot, `O(k)`.
    pub fn new(counts: &[u64]) -> Self {
        let mut cat = Self { tree: Vec::new(), counts: Vec::new(), total: 0 };
        cat.rebuild(counts);
        cat
    }

    /// An all-zero sampler over `k` slots (populate via [`set`](Self::set)).
    pub fn with_slots(k: usize) -> Self {
        Self { tree: vec![0; k + 1], counts: vec![0; k], total: 0 }
    }

    /// Replaces every slot count from scratch, `O(k)`; reuses buffers.
    pub fn rebuild(&mut self, counts: &[u64]) {
        self.counts.clear();
        self.counts.extend_from_slice(counts);
        self.total = counts.iter().sum();
        let len = self.counts.len();
        self.tree.clear();
        self.tree.resize(len + 1, 0);
        self.tree[1..].copy_from_slice(&self.counts);
        for i in 1..=len {
            let j = i + (i & i.wrapping_neg());
            if j <= len {
                self.tree[j] += self.tree[i];
            }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the sampler has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Sum of all slot counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current count of slot `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Sets slot `i` to `c`, patching the tree along the Fenwick update
    /// path, `O(log k)`. A no-op when the count is unchanged.
    pub fn set(&mut self, i: usize, c: u64) {
        let old = self.counts[i];
        if c == old {
            return;
        }
        self.counts[i] = c;
        let mut j = i + 1;
        if c > old {
            let delta = c - old;
            self.total += delta;
            while j < self.tree.len() {
                self.tree[j] += delta;
                j += j & j.wrapping_neg();
            }
        } else {
            let delta = old - c;
            self.total -= delta;
            while j < self.tree.len() {
                self.tree[j] -= delta;
                j += j & j.wrapping_neg();
            }
        }
    }

    /// Draws one slot with probability proportional to its count,
    /// *with* replacement (the tree is not mutated). `O(log k)`.
    ///
    /// # Panics
    /// Panics (in debug builds) when every count is zero.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(self.total > 0, "sampled from an all-zero DynamicCategorical");
        let len = self.counts.len();
        let mut target = rng.gen_range(0..self.total);
        // Descend to the largest index whose prefix sum is ≤ target.
        let mut pos = 0usize;
        let mut step = len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos
    }
}

/// Per-round arbitration between Fenwick patching and a Vose rebuild.
///
/// Sites that redraw from a slowly-changing count vector face a choice
/// each round: patch a [`DynamicCategorical`] in `O(#changed·log k)`
/// and pay `O(log k)` per draw, or rebuild a [`Categorical`] alias
/// table over the occupied slots in `O(#occupied)` and draw in `O(1)`.
/// Neither dominates — patching wins in the stalled regime
/// (`#changed ≪ #occupied`, few draws), the alias wins when a round
/// draws far more often than the occupancy. This wrapper takes the
/// updates unconditionally into the Fenwick tree (that is the
/// unavoidable `#changed·log k` bookkeeping), tracks the occupied set,
/// and lets [`prepare`](Self::prepare) pick the draw backend per round
/// from the deterministic cost comparison — mirroring the
/// expected-visits arbitration the window samplers use. All backends
/// realize the identical categorical law; they consume the generator
/// differently, so callers that pin byte-exact trajectories must pin
/// the backend too (the engines do, via their round-state mode).
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::UpdatableSampler;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(12);
/// let mut s = UpdatableSampler::with_slots(1024);
/// s.set(3, 900);
/// s.set(700, 100);
/// s.prepare(64); // 64 draws over 2 occupied slots: patching wins
/// let x = s.sample(&mut rng);
/// assert!(x == 3 || x == 700);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpdatableSampler {
    fen: DynamicCategorical,
    /// Occupied slots in insertion order (`swap_remove` on death).
    occupied: Vec<u32>,
    /// Dense slot → index into `occupied` (`u32::MAX` = unoccupied).
    pos: Vec<u32>,
    alias: Option<Categorical>,
    alias_weights: Vec<f64>,
    /// Alias category → slot (the alias runs over occupied slots only).
    alias_slots: Vec<u32>,
    /// Whether `alias` still reflects the current counts.
    alias_fresh: bool,
    backend: UpdatableBackend,
}

#[derive(Debug, Clone, Copy, Default)]
enum UpdatableBackend {
    #[default]
    Fenwick,
    Alias,
    Constant(u32),
}

impl Default for DynamicCategorical {
    fn default() -> Self {
        Self::with_slots(0)
    }
}

impl UpdatableSampler {
    /// An all-zero sampler over `k` slots.
    pub fn with_slots(k: usize) -> Self {
        Self { fen: DynamicCategorical::with_slots(k), pos: vec![u32::MAX; k], ..Self::default() }
    }

    /// Replaces every slot count from scratch, `O(k)`; reuses buffers.
    pub fn reset(&mut self, counts: &[u64]) {
        self.fen.rebuild(counts);
        self.occupied.clear();
        self.pos.clear();
        self.pos.resize(counts.len(), u32::MAX);
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                self.pos[i] = self.occupied.len() as u32;
                self.occupied.push(i as u32);
            }
        }
        self.alias_fresh = false;
        self.backend = UpdatableBackend::Fenwick;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.fen.len()
    }

    /// Whether the sampler has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.fen.is_empty()
    }

    /// Sum of all slot counts.
    pub fn total(&self) -> u64 {
        self.fen.total()
    }

    /// Current count of slot `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.fen.count(i)
    }

    /// Number of slots with a positive count.
    pub fn occupied_len(&self) -> usize {
        self.occupied.len()
    }

    /// Sets slot `i` to `c`: one `O(log k)` tree patch plus `O(1)`
    /// occupied-set upkeep. Marks any built alias table stale.
    pub fn set(&mut self, i: usize, c: u64) {
        let old = self.fen.count(i);
        if c == old {
            return;
        }
        self.fen.set(i, c);
        self.alias_fresh = false;
        if old == 0 {
            self.pos[i] = self.occupied.len() as u32;
            self.occupied.push(i as u32);
        } else if c == 0 {
            let at = self.pos[i] as usize;
            self.occupied.swap_remove(at);
            if let Some(&moved) = self.occupied.get(at) {
                self.pos[moved as usize] = at as u32;
            }
            self.pos[i] = u32::MAX;
        }
    }

    /// Picks the draw backend for a round of `draws` samples.
    ///
    /// Deterministic in `(draws, #occupied, k)`: a single occupied slot
    /// short-circuits to a constant; otherwise patched draws cost
    /// `draws·⌈log₂ k⌉` tree descents against `#occupied + draws` for a
    /// Vose rebuild plus `O(1)` draws, and the cheaper side wins (a
    /// still-fresh alias from an unchanged round is free and always
    /// wins). Call once per round, after the updates and before the
    /// draws.
    pub fn prepare(&mut self, draws: u64) {
        if self.occupied.len() == 1 {
            self.backend = UpdatableBackend::Constant(self.occupied[0]);
            return;
        }
        if self.alias_fresh {
            self.backend = UpdatableBackend::Alias;
            return;
        }
        let lg = (usize::BITS - self.fen.len().leading_zeros()).max(1) as u64;
        if draws.saturating_mul(lg) <= (self.occupied.len() as u64).saturating_add(draws) {
            self.backend = UpdatableBackend::Fenwick;
            return;
        }
        self.alias_weights.clear();
        self.alias_slots.clear();
        for &slot in &self.occupied {
            self.alias_weights.push(self.fen.count(slot as usize) as f64);
            self.alias_slots.push(slot);
        }
        match &mut self.alias {
            Some(alias) => alias.rebuild(&self.alias_weights),
            None => self.alias = Some(Categorical::new(&self.alias_weights)),
        }
        self.alias_fresh = true;
        self.backend = UpdatableBackend::Alias;
    }

    /// The single occupied slot, when the last
    /// [`prepare`](Self::prepare) short-circuited to the constant
    /// backend — callers hoist the draw loop entirely on absorbed
    /// rounds.
    pub fn constant(&self) -> Option<usize> {
        match self.backend {
            UpdatableBackend::Constant(slot) => Some(slot as usize),
            _ => None,
        }
    }

    /// Draws one slot with probability proportional to its count, via
    /// whichever backend the last [`prepare`](Self::prepare) picked.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        match self.backend {
            UpdatableBackend::Fenwick => self.fen.sample(rng),
            UpdatableBackend::Alias => {
                let alias = self.alias.as_ref().expect("prepare built the alias backend");
                self.alias_slots[alias.sample(rng)] as usize
            }
            UpdatableBackend::Constant(slot) => slot as usize,
        }
    }
}

/// Expected number of categories a size-`h` window walk visits, for
/// weights in **decreasing** order: `Σ_j (1 − (cum_{<j}/total)^h)` —
/// category `j` is visited iff not all `h` draws landed before it.
///
/// This is the dispatch statistic for the window samplers
/// ([`WindowMultinomial`] / [`WindowSplitter`]): a walk pays roughly
/// one conditional draw per *visited* category, versus `h` draws per
/// window on a per-draw path, so the walk wins when this expectation
/// sits below `h`. (For the without-replacement splitter the formula
/// is the with-replacement approximation — fine for arbitration, and
/// irrelevant to exactness.) `O(d)`; returns `d` when the weights sum
/// to zero.
///
/// # Example
/// ```
/// use symbreak_sim::dist::expected_window_visits;
///
/// // Concentrated: nearly every window resolves on the first category.
/// assert!(expected_window_visits(&[0.98, 0.01, 0.01], 3) < 1.2);
/// // Uniform: a window of 3 scatters across most of the categories.
/// assert!(expected_window_visits(&[1.0; 8], 3) > 4.0);
/// ```
pub fn expected_window_visits(weights_desc: &[f64], h: usize) -> f64 {
    let total: f64 = weights_desc.iter().sum();
    expected_visits_of(total, weights_desc.iter().copied(), weights_desc.len(), h)
}

/// [`expected_window_visits`] over integer counts (e.g. a pooled
/// histogram), so count-valued dispatch sites need no float scratch.
pub fn expected_window_visits_counts(counts_desc: &[u64], h: usize) -> f64 {
    let total: u64 = counts_desc.iter().sum();
    expected_visits_of(total as f64, counts_desc.iter().map(|&c| c as f64), counts_desc.len(), h)
}

/// Category cap above which the window-dispatch sites skip even
/// computing the visit statistic: the qualifying decreasing-weight sort
/// would cost more than the round saves at singleton-start
/// occupancies. One constant so every dispatch site (agent engine,
/// shard pull gear, shard push gear) moves in lockstep.
pub const WALK_CANDIDATE_CAP: usize = 512;

fn expected_visits_of(
    total: f64,
    weights_desc: impl Iterator<Item = f64>,
    d: usize,
    h: usize,
) -> f64 {
    if total <= 0.0 {
        return d as f64;
    }
    let mut visits = 0.0;
    let mut cum = 0.0;
    for w in weights_desc {
        visits += 1.0 - (cum / total).powi(h as i32);
        cum += w;
    }
    visits
}

/// I.i.d. fixed-size multinomial windows `Mult(h, θ)`, with the
/// conditional-binomial walk's per-category samplers built **once** and
/// reused across windows.
///
/// This is the with-replacement sibling of [`WindowSplitter`], for
/// engines whose per-node windows are independent (Uniform Pull samples
/// with replacement): the walk at category `j` with `r` trials left
/// always draws from the same `Bin(r, θ_j / Σ_{i≥j} θ_i)`, so all
/// `d·h` binomial samplers are precomputed and a window costs only the
/// categories actually visited — ~one cached draw per window once the
/// leading category dominates. Order `weights` by decreasing mass for
/// the early exit to bite; the last weight must be positive (it absorbs
/// the walk's remainder).
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use symbreak_sim::dist::WindowMultinomial;
/// use symbreak_sim::rng::Pcg64;
///
/// let mut rng = Pcg64::seed_from_u64(29);
/// let windows = WindowMultinomial::new(&[6.0, 3.0, 1.0], 3);
/// let mut total = 0u64;
/// windows.sample_window(&mut rng, |_cat, x| total += x);
/// assert_eq!(total, 3);
/// ```
#[derive(Debug, Clone)]
pub struct WindowMultinomial {
    /// `bins[j·h + (r−1)]`: `Bin(r, θ_j / Σ_{i≥j} θ_i)` for category
    /// `j < d − 1`; the last category takes the walk's remainder.
    bins: Vec<Binomial>,
    d: usize,
    h: usize,
}

impl WindowMultinomial {
    /// Builds the cached walk for windows of `h` draws over `weights`
    /// (unnormalized; finite, non-negative, last one positive).
    ///
    /// # Panics
    /// Panics on empty weights, `h = 0`, invalid weights, or a
    /// non-positive last weight.
    pub fn new(weights: &[f64], h: usize) -> Self {
        let d = weights.len();
        assert!(d > 0, "window multinomial needs at least one category");
        assert!(h > 0, "window size must be positive");
        for (i, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "weight[{i}] = {w} invalid");
        }
        assert!(weights[d - 1] > 0.0, "the last weight absorbs the remainder; it must be positive");
        let mut bins = Vec::with_capacity((d - 1) * h);
        let mut suffix: f64 = weights.iter().sum();
        for &w in &weights[..d - 1] {
            let p = (w / suffix).clamp(0.0, 1.0);
            for r in 1..=h {
                bins.push(Binomial::new(r as u64, p));
            }
            suffix -= w;
        }
        Self { bins, d, h }
    }

    /// The window size `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Draws one window, calling `deposit(category, count)` for each
    /// category with a positive count (ascending category order).
    pub fn sample_window<R, F>(&self, rng: &mut R, mut deposit: F)
    where
        R: RngCore + ?Sized,
        F: FnMut(usize, u64),
    {
        let mut need = self.h;
        for j in 0..self.d {
            if need == 0 {
                return;
            }
            if j == self.d - 1 {
                deposit(j, need as u64);
                return;
            }
            let x = self.bins[j * self.h + (need - 1)].sample(rng);
            if x > 0 {
                deposit(j, x);
                need -= x as usize;
            }
        }
    }
}

/// Floyd's algorithm: `m` distinct indices drawn uniformly from `0..n`,
/// in `O(m)` expected time and `O(m)` space.
///
/// # Panics
/// Panics if `m > n`.
pub fn sample_distinct<R: RngCore + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<usize> {
    assert!(m <= n, "cannot draw {m} distinct indices from 0..{n}");
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut out = Vec::with_capacity(m);
    for j in n - m..n {
        let t = uniform_below(rng, j as u64 + 1) as usize;
        // If `t` is taken, use `j` itself — `j` cannot have been chosen
        // earlier (it was out of range in all previous iterations).
        let pick = if chosen.insert(t) { t } else { j };
        if pick == j {
            chosen.insert(j);
        }
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use rand::SeedableRng;

    #[test]
    fn ln_factorial_matches_direct_product() {
        for k in 0..40u64 {
            let direct: f64 = (1..=k).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(k) - direct).abs() < 1e-9,
                "ln({k}!) = {} vs {direct}",
                ln_factorial(k)
            );
        }
        // Spot-check deep into the Stirling regime.
        let direct: f64 = (1..=5000u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(5000) - direct).abs() < 1e-7);
    }

    #[test]
    fn binomial_mean_and_variance_both_regimes() {
        let mut rng = Pcg64::seed_from_u64(11);
        for &(n, p) in &[(50u64, 0.05f64), (1_000, 0.3), (10_000, 0.0007), (1_000_000, 0.5)] {
            let d = Binomial::new(n, p);
            let trials = 30_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..trials {
                let x = d.sample(&mut rng) as f64;
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / trials as f64;
            let var = sumsq / trials as f64 - mean * mean;
            let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
            let tol = 6.0 * (ev / trials as f64).sqrt() + 1e-9;
            assert!((mean - em).abs() < tol, "Bin({n},{p}): mean {mean} vs {em}");
            assert!((var - ev).abs() < 0.1 * ev + 1.0, "Bin({n},{p}): var {var} vs {ev}");
        }
    }

    #[test]
    fn binomial_flip_symmetry_exact_edges() {
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(Binomial::new(100, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).sample(&mut rng), 100);
        assert_eq!(Binomial::new(0, 0.7).sample(&mut rng), 0);
    }

    #[test]
    fn multinomial_conserves_and_respects_support() {
        let mut rng = Pcg64::seed_from_u64(3);
        let theta = [0.2, 0.0, 0.5, 0.3, 0.0];
        let m = Multinomial::new(10_000, &theta);
        for _ in 0..100 {
            let x = m.sample(&mut rng);
            assert_eq!(x.iter().sum::<u64>(), 10_000);
            assert_eq!(x[1], 0, "zero-weight category must stay empty");
            assert_eq!(x[4], 0, "trailing zero-weight category must stay empty");
        }
    }

    #[test]
    fn multinomial_marginal_mean() {
        let mut rng = Pcg64::seed_from_u64(4);
        let theta = [0.1, 0.6, 0.3];
        let m = Multinomial::new(1_000, &theta);
        let trials = 20_000u64;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            for (s, x) in sums.iter_mut().zip(m.sample(&mut rng)) {
                *s += x;
            }
        }
        for i in 0..3 {
            let mean = sums[i] as f64 / trials as f64;
            let expect = 1_000.0 * theta[i];
            assert!((mean - expect).abs() < 1.5, "cat {i}: {mean} vs {expect}");
        }
    }

    #[test]
    fn sparse_multinomial_matches_dense_bit_for_bit() {
        // Same seed, dense weights with zeros vs the sparse (theta, idx)
        // restriction: the draws must be identical, not just in law.
        let dense_theta = [0.0, 0.2, 0.0, 0.5, 0.3, 0.0];
        let sparse_theta = [0.2, 0.5, 0.3];
        let idx = [1u32, 3, 4];
        for trial in 0..50u64 {
            let mut rng_dense = Pcg64::seed_from_u64(900 + trial);
            let mut rng_sparse = Pcg64::seed_from_u64(900 + trial);
            let mut dense = [0u64; 6];
            sample_multinomial_into(10_000, &dense_theta, &mut rng_dense, &mut dense);
            let mut sparse = [0u64; 6];
            sample_multinomial_sparse_into(
                10_000,
                &sparse_theta,
                &idx,
                &mut rng_sparse,
                &mut sparse,
            );
            assert_eq!(dense, sparse);
            assert_eq!(rng_dense.next_u64(), rng_sparse.next_u64(), "RNG streams diverged");
        }
    }

    #[test]
    fn sparse_multinomial_adds_into_existing_counts() {
        let mut rng = Pcg64::seed_from_u64(10);
        let mut out = [7u64, 0, 3];
        sample_multinomial_sparse_into(100, &[0.5, 0.5], &[0, 2], &mut rng, &mut out);
        assert_eq!(out[0] + out[2], 110, "draw adds to prior values");
        assert_eq!(out[1], 0, "untouched slot stays untouched");
    }

    #[test]
    fn sparse_multinomial_zero_trials_and_zero_weights() {
        let mut rng = Pcg64::seed_from_u64(11);
        let mut out = [0u64; 4];
        sample_multinomial_sparse_into(0, &[0.0, 0.0], &[0, 1], &mut rng, &mut out);
        assert_eq!(out, [0; 4]);
        // Interior zero weight is skipped without consuming randomness.
        sample_multinomial_sparse_into(50, &[0.5, 0.0, 0.5], &[0, 1, 3], &mut rng, &mut out);
        assert_eq!(out.iter().sum::<u64>(), 50);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn categorical_point_mass_is_deterministic() {
        let mut rng = Pcg64::seed_from_u64(5);
        let cat = Categorical::new(&[0.0, 0.0, 7.0, 0.0]);
        for _ in 0..200 {
            assert_eq!(cat.sample(&mut rng), 2);
        }
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut rng = Pcg64::seed_from_u64(6);
        let weights = [1.0, 2.0, 3.0, 4.0];
        let cat = Categorical::new(&weights);
        let trials = 100_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            counts[cat.sample(&mut rng)] += 1;
        }
        for i in 0..4 {
            let freq = counts[i] as f64 / trials as f64;
            let expect = weights[i] / 10.0;
            assert!((freq - expect).abs() < 0.01, "cat {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn geometric_mean_matches_q_over_p() {
        let mut rng = Pcg64::seed_from_u64(7);
        for &p in &[0.05f64, 0.3, 0.9, 1.0] {
            let g = Geometric::new(p);
            let trials = 50_000;
            let sum: u64 = (0..trials).map(|_| g.sample(&mut rng)).sum();
            let mean = sum as f64 / trials as f64;
            let expect = (1.0 - p) / p;
            let sd = ((1.0 - p) / (p * p) / trials as f64).sqrt();
            assert!((mean - expect).abs() < 6.0 * sd + 1e-3, "p={p}: {mean} vs {expect}");
        }
    }

    #[test]
    fn sample_distinct_full_range_is_permutation_support() {
        let mut rng = Pcg64::seed_from_u64(8);
        let mut v = sample_distinct(10, 10, &mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
        assert!(sample_distinct(5, 0, &mut rng).is_empty());
    }

    #[test]
    fn categorical_rebuild_matches_fresh_table() {
        let mut table = Categorical::new(&[1.0, 1.0]);
        table.rebuild(&[1.0, 2.0, 3.0, 4.0]);
        let fresh = Categorical::new(&[1.0, 2.0, 3.0, 4.0]);
        // Same table => same draws from the same stream.
        let mut a = Pcg64::seed_from_u64(31);
        let mut b = Pcg64::seed_from_u64(31);
        for _ in 0..500 {
            assert_eq!(table.sample(&mut a), fresh.sample(&mut b));
        }
    }

    #[test]
    fn dynamic_categorical_patched_matches_rebuilt() {
        // A storm of single-slot patches must leave the tree, counts and
        // total identical to a from-scratch build over the final counts —
        // and hence the same draws from the same stream.
        let k = 37usize;
        let mut patched = DynamicCategorical::with_slots(k);
        let mut dense = vec![0u64; k];
        let mut seq = Pcg64::seed_from_u64(77);
        for _ in 0..400 {
            let slot = seq.gen_range(0..k as u64) as usize;
            let c = seq.gen_range(0..9u64);
            patched.set(slot, c);
            dense[slot] = c;
        }
        let fresh = DynamicCategorical::new(&dense);
        assert_eq!(patched.tree, fresh.tree);
        assert_eq!(patched.counts, fresh.counts);
        assert_eq!(patched.total(), fresh.total());
        let mut a = Pcg64::seed_from_u64(31);
        let mut b = Pcg64::seed_from_u64(31);
        for _ in 0..500 {
            assert_eq!(patched.sample(&mut a), fresh.sample(&mut b));
        }
    }

    #[test]
    fn dynamic_categorical_frequencies_match_counts() {
        let mut rng = Pcg64::seed_from_u64(51);
        let counts = [30u64, 0, 50, 20];
        let cat = DynamicCategorical::new(&counts);
        let trials = 50_000u64;
        let mut hits = [0u64; 4];
        for _ in 0..trials {
            hits[cat.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[1], 0, "zero-count slot must never be drawn");
        for i in [0usize, 2, 3] {
            let freq = hits[i] as f64 / trials as f64;
            let expect = counts[i] as f64 / 100.0;
            let sd = (expect * (1.0 - expect) / trials as f64).sqrt();
            assert!((freq - expect).abs() < 6.0 * sd, "slot {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn updatable_sampler_backend_arbitration_and_bookkeeping() {
        let mut rng = Pcg64::seed_from_u64(52);
        let mut s = UpdatableSampler::with_slots(256);
        s.set(10, 5);
        s.set(200, 3);
        s.set(10, 0); // kill + swap_remove bookkeeping
        s.set(17, 2);
        s.set(10, 4); // revive
        assert_eq!(s.occupied_len(), 3);
        assert_eq!((s.total(), s.count(10)), (9, 4));
        // Narrow occupancy: the Vose rebuild is nearly free, alias wins.
        s.prepare(1 << 20);
        assert!(matches!(s.backend, UpdatableBackend::Alias));
        for _ in 0..200 {
            assert!(matches!(s.sample(&mut rng), 10 | 17 | 200));
        }
        // Unchanged counts: the fresh alias is free and always picked.
        s.prepare(1);
        assert!(matches!(s.backend, UpdatableBackend::Alias));
        // Wide occupancy, few draws: patching wins (100·1 tree descents
        // beat a 100-slot rebuild); a patch staleness-marked the alias.
        for slot in 100..200 {
            s.set(slot, 1);
        }
        s.prepare(2);
        assert!(matches!(s.backend, UpdatableBackend::Fenwick));
        assert!(matches!(s.sample(&mut rng), 10 | 17 | (100..=200)));
        // Down to a single survivor: constant short-circuit.
        for slot in 100..200 {
            s.set(slot, 0);
        }
        s.set(17, 0);
        s.set(200, 0);
        s.prepare(1 << 20);
        assert!(matches!(s.backend, UpdatableBackend::Constant(10)));
        assert_eq!(s.sample(&mut rng), 10);
    }

    #[test]
    fn updatable_sampler_backends_share_one_law() {
        // Fenwick vs alias backend over the same counts: marginal
        // frequencies must agree with the exact distribution.
        let counts = [0u64, 40, 0, 10, 50];
        let trials = 40_000u64;
        for force_alias in [false, true] {
            let mut s = UpdatableSampler::with_slots(counts.len());
            s.reset(&counts);
            s.prepare(if force_alias { u64::MAX } else { 1 });
            let mut rng = Pcg64::seed_from_u64(53);
            let mut hits = [0u64; 5];
            for _ in 0..trials {
                hits[s.sample(&mut rng)] += 1;
            }
            for i in 0..counts.len() {
                let freq = hits[i] as f64 / trials as f64;
                let expect = counts[i] as f64 / 100.0;
                let sd = (expect * (1.0 - expect) / trials as f64).sqrt() + 1e-9;
                assert!(
                    (freq - expect).abs() < 6.0 * sd,
                    "slot {i} (alias={force_alias}): {freq} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn ball_drop_tally_matches_multinomial_law() {
        let mut rng = Pcg64::seed_from_u64(41);
        let weights = [0.5, 0.3, 0.2];
        let idx = [2u32, 7, 11];
        let table = Categorical::new(&weights);
        let trials = 5_000u64;
        let per_draw = 200u64;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let mut out = [0u64; 12];
            sample_multinomial_tally_into(per_draw, &table, &idx, &mut rng, &mut out);
            assert_eq!(out.iter().sum::<u64>(), per_draw);
            for (s, &i) in sums.iter_mut().zip(&idx) {
                *s += out[i as usize];
            }
        }
        for i in 0..3 {
            let mean = sums[i] as f64 / trials as f64;
            let expect = per_draw as f64 * weights[i];
            let sd = (per_draw as f64 * weights[i] * (1.0 - weights[i]) / trials as f64).sqrt();
            assert!((mean - expect).abs() < 6.0 * sd + 0.05, "cat {i}: {mean} vs {expect}");
        }
    }

    #[test]
    fn hypergeometric_matches_exact_pmf() {
        // Frequencies against the exactly enumerated pmf for a few urns.
        let mut rng = Pcg64::seed_from_u64(43);
        for &(total, marked, draws) in &[(10u64, 4u64, 3u64), (20, 15, 6), (7, 7, 3), (50, 1, 10)] {
            let d = Hypergeometric::new(total, marked, draws);
            let trials = 40_000u64;
            let mut counts = vec![0u64; draws as usize + 1];
            for _ in 0..trials {
                counts[d.sample(&mut rng) as usize] += 1;
            }
            // Exact pmf via the binomial-coefficient ratio.
            let c = |n: u64, k: u64| -> f64 {
                if k > n {
                    return 0.0;
                }
                (1..=k).map(|i| (n - k + i) as f64 / i as f64).product()
            };
            for x in 0..=draws {
                let pmf = c(marked, x) * c(total - marked, draws - x) / c(total, draws);
                let freq = counts[x as usize] as f64 / trials as f64;
                let sd = (pmf * (1.0 - pmf) / trials as f64).sqrt();
                assert!(
                    (freq - pmf).abs() < 6.0 * sd + 1e-3,
                    "H({total},{marked},{draws}) at {x}: freq {freq} vs pmf {pmf}"
                );
            }
        }
    }

    #[test]
    fn hypergeometric_degenerate_edges() {
        let mut rng = Pcg64::seed_from_u64(44);
        assert_eq!(Hypergeometric::new(5, 0, 3).sample(&mut rng), 0);
        assert_eq!(Hypergeometric::new(5, 5, 3).sample(&mut rng), 3);
        assert_eq!(Hypergeometric::new(5, 2, 0).sample(&mut rng), 0);
        // Forced lower bound: 4 draws from 5 with 3 unmarked => at least 1.
        let d = Hypergeometric::new(5, 2, 4);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((1..=2).contains(&x));
        }
    }

    #[test]
    fn window_splitter_deals_the_whole_pool() {
        let mut rng = Pcg64::seed_from_u64(45);
        for seed_pool in [[12u64, 0, 6, 2], [5, 5, 5, 5], [20, 0, 0, 0]] {
            let mut pool = seed_pool;
            let total: u64 = pool.iter().sum();
            let h = 5u64;
            let windows = total / h;
            let mut splitter = WindowSplitter::new(&mut pool);
            let mut dealt = [0u64; 4];
            for _ in 0..windows {
                let mut got = 0u64;
                splitter.draw_window(h, &mut rng, |cat, x| {
                    dealt[cat] += x;
                    got += x;
                });
                assert_eq!(got, h, "window must carry exactly h balls");
            }
            assert_eq!(splitter.remaining(), total % h);
            for (d, s) in dealt.iter().zip(&seed_pool) {
                assert!(d <= s, "cannot deal more than the pool held");
            }
            assert_eq!(dealt.iter().sum::<u64>(), windows * h);
        }
    }

    #[test]
    fn window_splitter_first_window_is_hypergeometric() {
        // The first window's count of category 0 must follow
        // H(total, pool[0], h) exactly.
        let mut rng = Pcg64::seed_from_u64(46);
        let trials = 30_000u64;
        let mut sum = 0u64;
        for _ in 0..trials {
            let mut pool = [6u64, 3, 3];
            let mut splitter = WindowSplitter::new(&mut pool);
            splitter.draw_window(4, &mut rng, |cat, x| {
                if cat == 0 {
                    sum += x;
                }
            });
        }
        let mean = sum as f64 / trials as f64;
        let expect = 4.0 * 6.0 / 12.0; // h · K / N = 2
        assert!((mean - expect).abs() < 0.03, "mean {mean} vs {expect}");
    }

    #[test]
    fn window_multinomial_matches_direct_draws() {
        // Window marginals must equal Mult(h, θ): compare per-category
        // means against h·θ_i.
        let mut rng = Pcg64::seed_from_u64(47);
        let weights = [5.0, 3.0, 2.0];
        let h = 4usize;
        let wm = WindowMultinomial::new(&weights, h);
        let trials = 30_000u64;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let mut got = 0u64;
            wm.sample_window(&mut rng, |cat, x| {
                sums[cat] += x;
                got += x;
            });
            assert_eq!(got, h as u64);
        }
        for i in 0..3 {
            let mean = sums[i] as f64 / trials as f64;
            let expect = h as f64 * weights[i] / 10.0;
            assert!((mean - expect).abs() < 0.03, "cat {i}: {mean} vs {expect}");
        }
    }

    #[test]
    fn window_multinomial_concentrated_early_exit_is_lawful() {
        // A dominant first category: most windows resolve in one cached
        // draw, and the law still matches Mult(h, θ).
        let mut rng = Pcg64::seed_from_u64(48);
        let wm = WindowMultinomial::new(&[0.98, 0.02], 3);
        let trials = 50_000u64;
        let mut minority = 0u64;
        for _ in 0..trials {
            wm.sample_window(&mut rng, |cat, x| {
                if cat == 1 {
                    minority += x;
                }
            });
        }
        let mean = minority as f64 / trials as f64;
        assert!((mean - 0.06).abs() < 0.01, "minority mean {mean} vs 3·0.02");
    }

    #[test]
    fn sample_distinct_is_uniform_over_pairs() {
        // All C(4,2)=6 pairs from 0..4 should appear equally often.
        let mut rng = Pcg64::seed_from_u64(9);
        let mut counts = std::collections::HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let mut v = sample_distinct(4, 2, &mut rng);
            v.sort_unstable();
            *counts.entry((v[0], v[1])).or_insert(0u64) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&pair, &c) in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 1.0 / 6.0).abs() < 0.01, "pair {pair:?}: {freq}");
        }
    }
}
