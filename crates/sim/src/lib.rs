#![warn(missing_docs)]
//! Deterministic simulation substrate for consensus-process experiments.
//!
//! The paper proves "with high probability" statements over the protocol's
//! own randomness on a synchronous complete graph. This crate supplies the
//! substrate for sampling that randomness exactly and reproducibly:
//!
//! * [`rng`] — seedable, splittable generators implemented in-house
//!   ([`rng::SplitMix64`], [`rng::Pcg64`]) so trajectories are bit-stable
//!   across `rand` version bumps; deterministic per-trial seed derivation.
//! * [`dist`] — exact discrete samplers built from scratch: binomial
//!   (inversion + BTRS rejection), multinomial (conditional-binomial,
//!   `O(k)`), categorical (Vose alias method, `O(1)` per draw), and
//!   Floyd's distinct-index sampling.
//! * [`trace`] — round-by-round trajectory recording with CSV export.
//! * [`montecarlo`] — a deterministic, thread-parallel multi-trial driver.
//!
//! # Example
//!
//! ```
//! use symbreak_sim::rng::{Pcg64, trial_seed};
//! use symbreak_sim::dist::Binomial;
//! use rand::SeedableRng;
//!
//! let mut rng = Pcg64::seed_from_u64(trial_seed(42, 0));
//! let b = Binomial::new(1000, 0.25);
//! let x = b.sample(&mut rng);
//! assert!(x <= 1000);
//! ```

pub mod bundle;
pub mod dist;
pub mod montecarlo;
pub mod rng;
pub mod trace;

pub use bundle::{RoundAggregate, TraceBundle};
pub use dist::{Binomial, Categorical, Multinomial};
pub use montecarlo::run_trials;
pub use rng::{trial_seed, Pcg64, SplitMix64};
pub use trace::{RoundStats, Trace};
