//! Aggregation of many [`Trace`]s into per-round summary curves.
//!
//! The experiment harness runs dozens of trials per parameter point; a
//! [`TraceBundle`] turns the resulting traces into mean/quantile curves
//! of each observable over rounds (padding short trajectories with their
//! final value, since consensus is absorbing).

use crate::trace::Trace;

/// A per-round aggregate across traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundAggregate {
    /// Round index.
    pub round: u64,
    /// Mean number of remaining colors.
    pub mean_colors: f64,
    /// Mean maximum support.
    pub mean_max_support: f64,
    /// Median number of remaining colors.
    pub median_colors: f64,
    /// Number of traces still "alive" (not yet past their last round).
    pub alive: usize,
}

/// A collection of traces from repeated trials of one experiment cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBundle {
    traces: Vec<Trace>,
}

impl TraceBundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one trial's trace.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn push(&mut self, trace: Trace) {
        assert!(!trace.is_empty(), "cannot aggregate an empty trace");
        self.traces.push(trace);
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the bundle is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The longest recorded round index.
    pub fn max_round(&self) -> u64 {
        self.traces.iter().filter_map(|t| t.last().map(|r| r.round)).max().unwrap_or(0)
    }

    /// Aggregates at the given round: traces shorter than `round` hold
    /// their final value (consensus is absorbing), so every trace always
    /// contributes.
    ///
    /// # Panics
    /// Panics if the bundle is empty.
    pub fn at_round(&self, round: u64) -> RoundAggregate {
        assert!(!self.is_empty(), "empty bundle");
        let mut colors = Vec::with_capacity(self.traces.len());
        let mut max_support = Vec::with_capacity(self.traces.len());
        let mut alive = 0usize;
        for t in &self.traces {
            // Last snapshot at or before `round`, else the first one.
            let snap =
                t.rounds().iter().take_while(|r| r.round <= round).last().unwrap_or(&t.rounds()[0]);
            if t.last().map(|r| r.round).unwrap_or(0) >= round {
                alive += 1;
            }
            colors.push(snap.num_colors as f64);
            max_support.push(snap.max_support as f64);
        }
        colors.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = colors.len();
        let median_colors =
            if n % 2 == 1 { colors[n / 2] } else { (colors[n / 2 - 1] + colors[n / 2]) / 2.0 };
        RoundAggregate {
            round,
            mean_colors: colors.iter().sum::<f64>() / n as f64,
            mean_max_support: max_support.iter().sum::<f64>() / n as f64,
            median_colors,
            alive,
        }
    }

    /// Aggregates on a geometric grid of rounds `1, 2, 4, …` up to the
    /// longest trace, plus round 0.
    pub fn geometric_series(&self) -> Vec<RoundAggregate> {
        let mut out = vec![self.at_round(0)];
        let mut r = 1u64;
        let max = self.max_round();
        while r <= max {
            out.push(self.at_round(r));
            r *= 2;
        }
        if out.last().map(|a| a.round) != Some(max) && max > 0 {
            out.push(self.at_round(max));
        }
        out
    }

    /// CSV of the geometric series.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,mean_colors,median_colors,mean_max_support,alive\n");
        for a in self.geometric_series() {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                a.round, a.mean_colors, a.median_colors, a.mean_max_support, a.alive
            ));
        }
        out
    }
}

impl Extend<Trace> for TraceBundle {
    fn extend<T: IntoIterator<Item = Trace>>(&mut self, iter: T) {
        for t in iter {
            self.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RoundStats;

    fn trace(pairs: &[(u64, usize)]) -> Trace {
        let mut t = Trace::new();
        for &(round, num_colors) in pairs {
            t.push(RoundStats { round, num_colors, max_support: 10, bias: 0 });
        }
        t
    }

    #[test]
    fn aggregates_mean_and_median() {
        let mut b = TraceBundle::new();
        b.push(trace(&[(0, 10), (1, 4)]));
        b.push(trace(&[(0, 10), (1, 8)]));
        let a = b.at_round(1);
        assert_eq!(a.mean_colors, 6.0);
        assert_eq!(a.median_colors, 6.0);
        assert_eq!(a.alive, 2);
    }

    #[test]
    fn short_traces_hold_their_final_value() {
        let mut b = TraceBundle::new();
        b.push(trace(&[(0, 10), (1, 1)])); // done at round 1
        b.push(trace(&[(0, 10), (1, 5), (2, 3)]));
        let a = b.at_round(2);
        assert_eq!(a.mean_colors, 2.0); // (1 + 3)/2
        assert_eq!(a.alive, 1);
    }

    #[test]
    fn geometric_series_covers_the_range() {
        let mut b = TraceBundle::new();
        b.push(trace(&[(0, 16), (1, 8), (2, 4), (3, 3), (4, 2), (5, 1)]));
        let series = b.geometric_series();
        let rounds: Vec<u64> = series.iter().map(|a| a.round).collect();
        assert_eq!(rounds, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut b = TraceBundle::new();
        b.push(trace(&[(0, 3), (1, 1)]));
        let csv = b.to_csv();
        assert!(csv.starts_with("round,"));
        assert!(csv.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "empty bundle")]
    fn empty_bundle_panics() {
        TraceBundle::new().at_round(0);
    }

    #[test]
    fn extend_collects_traces() {
        let mut b = TraceBundle::new();
        b.extend([trace(&[(0, 2)]), trace(&[(0, 4)])]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.max_round(), 0);
    }
}
