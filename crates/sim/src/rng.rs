//! Seedable, splittable random-number generators.
//!
//! Implemented from scratch (SplitMix64 and PCG-XSL-RR 128/64) so that
//! experiment trajectories are bit-reproducible regardless of `rand`
//! internals. Both implement [`rand::RngCore`]/[`rand::SeedableRng`] and so
//! compose with the whole `rand` distribution ecosystem.

use rand::{RngCore, SeedableRng};

/// SplitMix64: a tiny, fast, well-mixed 64-bit generator.
///
/// Used here primarily for *seed derivation* (splitting one master seed
/// into independent per-trial/per-node streams), its original purpose.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output (the algorithm's canonical method name).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next(self) >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// PCG-XSL-RR 128/64: 128-bit LCG state with an xor-shift-low / random
/// rotation output function. High statistical quality, 2^128 period.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates a generator from explicit state and stream-selector values.
    ///
    /// The stream selector is forced odd as the PCG family requires.
    pub fn from_state(state: u128, stream: u128) -> Self {
        let mut rng = Self { state: 0, inc: (stream << 1) | 1 };
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    #[inline]
    fn output(state: u128) -> u64 {
        let rot = (state >> 122) as u32;
        let xsl = ((state >> 64) as u64) ^ (state as u64);
        xsl.rotate_right(rot)
    }

    /// Draws a uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step();
        Self::output(self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let state = u128::from_le_bytes(seed[0..16].try_into().expect("16 bytes"));
        let stream = u128::from_le_bytes(seed[16..32].try_into().expect("16 bytes"));
        Self::from_state(state, stream)
    }

    fn seed_from_u64(seed: u64) -> Self {
        // Expand via SplitMix64, the standard seeding recipe.
        let mut sm = SplitMix64::new(seed);
        let state = (sm.next() as u128) << 64 | sm.next() as u128;
        let stream = (sm.next() as u128) << 64 | sm.next() as u128;
        Self::from_state(state, stream)
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Derives a statistically independent seed for trial `trial` from a master
/// seed, by mixing through SplitMix64.
///
/// Adjacent trial indices yield unrelated streams; the derivation is pure so
/// trials can run in any order (or in parallel) and reproduce exactly.
pub fn trial_seed(master: u64, trial: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(trial | 1));
    sm.next().wrapping_add(trial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 implementation by Vigna.
        let mut sm = SplitMix64::new(1234567);
        let out: Vec<u64> = (0..3).map(|_| sm.next()).collect();
        assert_eq!(out[0], 6457827717110365317);
        assert_eq!(out[1], 3203168211198807973);
        assert_eq!(out[2], 9817491932198370423);
    }

    #[test]
    fn pcg_is_deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(99);
        let mut b = Pcg64::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Pcg64::seed_from_u64(100);
        let same = (0..100).all(|_| a.next_u64() == c.next_u64());
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Pcg64::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = Pcg64::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is astronomically unlikely");
    }

    #[test]
    fn trial_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..1000).map(|t| trial_seed(42, t)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "trial seeds must be unique");
    }

    #[test]
    fn trial_seed_is_pure() {
        assert_eq!(trial_seed(1, 2), trial_seed(1, 2));
        assert_ne!(trial_seed(1, 2), trial_seed(2, 2));
    }

    #[test]
    fn gen_range_works_through_rand() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces should appear");
    }

    #[test]
    fn pcg_from_seed_bytes() {
        let seed = [7u8; 32];
        let mut a = Pcg64::from_seed(seed);
        let mut b = Pcg64::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn monobit_balance() {
        // Crude statistical smoke test: ones-density of PCG output.
        let mut rng = Pcg64::seed_from_u64(2024);
        let mut ones = 0u64;
        let samples = 10_000u64;
        for _ in 0..samples {
            ones += rng.next_u64().count_ones() as u64;
        }
        let density = ones as f64 / (samples * 64) as f64;
        assert!((density - 0.5).abs() < 0.005, "bit density {density}");
    }
}
