//! Property-based tests of the sampler invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use symbreak_sim::dist::{
    sample_distinct, Binomial, Categorical, DynamicCategorical, Geometric, Multinomial,
};
use symbreak_sim::rng::{trial_seed, Pcg64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binomial_sample_in_range(n in 0u64..10_000, p in 0.0f64..=1.0, seed in 0u64..10_000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let x = Binomial::new(n, p).sample(&mut rng);
        prop_assert!(x <= n);
    }

    #[test]
    fn binomial_extremes(n in 0u64..10_000, seed in 0u64..10_000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        prop_assert_eq!(Binomial::new(n, 0.0).sample(&mut rng), 0);
        prop_assert_eq!(Binomial::new(n, 1.0).sample(&mut rng), n);
    }

    #[test]
    fn binomial_mirror_symmetry_in_distribution(seed in 0u64..500) {
        // Bin(n, p) and n − Bin(n, 1−p) have the same law; check means on
        // small batches.
        let n = 200u64;
        let p = 0.73;
        let mut rng_a = Pcg64::seed_from_u64(seed);
        let mut rng_b = Pcg64::seed_from_u64(seed + 100_000);
        let batch = 200;
        let ma: f64 = (0..batch).map(|_| Binomial::new(n, p).sample(&mut rng_a) as f64).sum::<f64>() / batch as f64;
        let mb: f64 = (0..batch)
            .map(|_| (n - Binomial::new(n, 1.0 - p).sample(&mut rng_b)) as f64)
            .sum::<f64>() / batch as f64;
        // Loose: both near np = 146 within 5 sigma of the batch mean.
        let sd = (n as f64 * p * (1.0 - p) / batch as f64).sqrt();
        prop_assert!((ma - 146.0).abs() < 5.0 * sd + 1.0);
        prop_assert!((mb - 146.0).abs() < 5.0 * sd + 1.0);
    }

    #[test]
    fn multinomial_counts_sum_to_n(
        n in 0u64..5_000,
        weights in proptest::collection::vec(0.01f64..5.0, 1..12),
        seed in 0u64..10_000,
    ) {
        let total: f64 = weights.iter().sum();
        let theta: Vec<f64> = weights.iter().map(|w| w / total).collect();
        // Re-normalize exactly enough for the constructor.
        let m = Multinomial::new(n, &theta);
        let mut rng = Pcg64::seed_from_u64(seed);
        let x = m.sample(&mut rng);
        prop_assert_eq!(x.iter().sum::<u64>(), n);
        prop_assert_eq!(x.len(), theta.len());
    }

    #[test]
    fn categorical_samples_only_supported_indices(
        weights in proptest::collection::vec(0.0f64..5.0, 2..10),
        seed in 0u64..10_000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.1);
        let cat = Categorical::new(&weights);
        let mut rng = Pcg64::seed_from_u64(seed);
        for _ in 0..50 {
            let i = cat.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }

    #[test]
    fn sample_distinct_properties(n in 1usize..200, seed in 0u64..10_000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let m = n / 2;
        let v = sample_distinct(n, m, &mut rng);
        prop_assert_eq!(v.len(), m);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), m);
        prop_assert!(v.iter().all(|&i| i < n));
    }

    #[test]
    fn geometric_nonnegative_and_finite(p in 0.001f64..=1.0, seed in 0u64..10_000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let g = Geometric::new(p);
        let x = g.sample(&mut rng);
        prop_assert!(x < 1_000_000_000, "absurdly large geometric draw {x}");
    }

    #[test]
    fn trial_seeds_distinct_for_distinct_trials(master in 0u64..1000, a in 0u64..1000, b in 0u64..1000) {
        if a != b {
            prop_assert_ne!(trial_seed(master, a), trial_seed(master, b));
        }
    }

    #[test]
    fn pcg_streams_reproducible(seed in 0u64..100_000) {
        use rand::RngCore;
        let mut a = Pcg64::seed_from_u64(seed);
        let mut b = Pcg64::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dynamic_categorical_patched_equals_from_scratch(
        start in proptest::collection::vec(0u64..40, 1..24),
        deltas in proptest::collection::vec((0usize..24, 0u64..40), 0..64),
        seed in 0u64..10_000,
    ) {
        // An arbitrary sequence of `set` patches must leave the sampler
        // in *exactly* the state a from-scratch build over the final
        // counts produces — internal tree included (pinned through the
        // derived Debug form), hence byte-identical draw streams.
        let mut patched = DynamicCategorical::new(&start);
        let mut counts = start.clone();
        for &(i, c) in &deltas {
            let i = i % counts.len();
            patched.set(i, c);
            counts[i] = c;
        }
        let fresh = DynamicCategorical::new(&counts);
        prop_assert_eq!(format!("{patched:?}"), format!("{fresh:?}"));
        prop_assert_eq!(patched.total(), counts.iter().sum::<u64>());
        if patched.total() > 0 {
            let mut rng_a = Pcg64::seed_from_u64(seed);
            let mut rng_b = Pcg64::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert_eq!(patched.sample(&mut rng_a), fresh.sample(&mut rng_b));
            }
        }
    }
}
