//! Chi-square goodness-of-fit of the exact samplers against their exact
//! pmfs — stronger than the range/mean invariants in `properties.rs`.

use rand::SeedableRng;
use symbreak_sim::dist::{
    Binomial, Categorical, DynamicCategorical, FenwickPool, Geometric, GroupSplitter,
    Hypergeometric,
};
use symbreak_sim::rng::Pcg64;
use symbreak_stats::infer::chi_square_gof;

/// Exact `Bin(n, p)` pmf over `0..=n` via the stable recurrence
/// `pmf(x+1) = pmf(x)·(n−x)/(x+1)·p/q`, started from the mode outward to
/// avoid underflow at large `n`.
fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
    let q = 1.0 - p;
    let mode = ((n + 1) as f64 * p).floor().min(n as f64) as usize;
    let mut pmf = vec![0.0f64; n as usize + 1];
    // Unnormalized start; renormalize at the end (exact up to f64).
    pmf[mode] = 1.0;
    for x in mode..n as usize {
        pmf[x + 1] = pmf[x] * ((n - x as u64) as f64 / (x as f64 + 1.0)) * (p / q);
    }
    for x in (0..mode).rev() {
        pmf[x] = pmf[x + 1] * ((x as f64 + 1.0) / (n - x as u64) as f64) * (q / p);
    }
    let total: f64 = pmf.iter().sum();
    for v in pmf.iter_mut() {
        *v /= total;
    }
    pmf
}

fn binomial_chi_square(n: u64, p: f64, draws: u64, seed: u64) -> bool {
    let d = Binomial::new(n, p);
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut observed = vec![0u64; n as usize + 1];
    for _ in 0..draws {
        observed[d.sample(&mut rng) as usize] += 1;
    }
    let expected: Vec<f64> = binomial_pmf(n, p).iter().map(|&q| q * draws as f64).collect();
    chi_square_gof(&observed, &expected, 5.0).within_sigma(5.0)
}

#[test]
fn binomial_inversion_regime_matches_exact_pmf() {
    // n·p = 2.5: the BINV path.
    assert!(binomial_chi_square(50, 0.05, 200_000, 1));
}

#[test]
fn binomial_btrs_regime_matches_exact_pmf() {
    // n·p = 300: the BTRS path.
    assert!(binomial_chi_square(1_000, 0.3, 200_000, 2));
}

#[test]
fn binomial_btrs_boundary_matches_exact_pmf() {
    // n·p' just above the regime split at 10, and a flipped p > 1/2.
    assert!(binomial_chi_square(10_000, 0.0012, 150_000, 3));
    assert!(binomial_chi_square(200, 0.85, 150_000, 4));
}

#[test]
fn categorical_matches_weights_chi_square() {
    let weights = [5.0, 0.0, 1.0, 17.0, 3.0, 0.5, 8.0, 2.5];
    let total: f64 = weights.iter().sum();
    let cat = Categorical::new(&weights);
    let mut rng = Pcg64::seed_from_u64(5);
    let draws = 400_000u64;
    let mut observed = vec![0u64; weights.len()];
    for _ in 0..draws {
        observed[cat.sample(&mut rng)] += 1;
    }
    assert_eq!(observed[1], 0, "zero-weight category must never be drawn");
    // Drop the structural zero from the test (its expected count is 0).
    let obs: Vec<u64> =
        observed.iter().zip(&weights).filter(|(_, &w)| w > 0.0).map(|(&o, _)| o).collect();
    let expected: Vec<f64> =
        weights.iter().filter(|&&w| w > 0.0).map(|&w| w / total * draws as f64).collect();
    assert!(chi_square_gof(&obs, &expected, 5.0).within_sigma(5.0));
}

#[test]
fn categorical_near_uniform_table_chi_square() {
    // Exactly equal weights exercise the alias construction's donation
    // cascade (every column ends up with a fractional accept probability).
    let k = 101usize;
    let weights = vec![990.0; k];
    let cat = Categorical::new(&weights);
    let mut rng = Pcg64::seed_from_u64(6);
    let draws = 500_000u64;
    let mut observed = vec![0u64; k];
    for _ in 0..draws {
        observed[cat.sample(&mut rng)] += 1;
    }
    let expected = vec![draws as f64 / k as f64; k];
    assert!(chi_square_gof(&observed, &expected, 5.0).within_sigma(5.0));
}

/// Exact `Hypergeometric(total, marked, draws)` pmf over the support
/// `[lo, hi]`, mode-started via the same outward recurrence idiom as
/// [`binomial_pmf`]: `pmf(x+1)/pmf(x) = (marked−x)(draws−x) /
/// ((x+1)(total−marked−draws+x+1))`.
fn hypergeometric_pmf(total: u64, marked: u64, draws: u64) -> (u64, Vec<f64>) {
    let lo = draws.saturating_sub(total - marked);
    let hi = marked.min(draws);
    let mode = (((draws + 1) * (marked + 1)) / (total + 2)).clamp(lo, hi);
    let mut pmf = vec![0.0f64; (hi - lo + 1) as usize];
    pmf[(mode - lo) as usize] = 1.0;
    let ratio_up = |x: u64| {
        ((marked - x) * (draws - x)) as f64 / ((x + 1) * (total - marked + x + 1 - draws)) as f64
    };
    for x in mode..hi {
        pmf[(x + 1 - lo) as usize] = pmf[(x - lo) as usize] * ratio_up(x);
    }
    for x in (lo..mode).rev() {
        pmf[(x - lo) as usize] = pmf[(x + 1 - lo) as usize] / ratio_up(x);
    }
    let total_mass: f64 = pmf.iter().sum();
    for v in pmf.iter_mut() {
        *v /= total_mass;
    }
    (lo, pmf)
}

fn hypergeometric_chi_square(total: u64, marked: u64, draws: u64, samples: u64, seed: u64) -> bool {
    let d = Hypergeometric::new(total, marked, draws);
    let mut rng = Pcg64::seed_from_u64(seed);
    let (lo, pmf) = hypergeometric_pmf(total, marked, draws);
    let mut observed = vec![0u64; pmf.len()];
    for _ in 0..samples {
        observed[(d.sample(&mut rng) - lo) as usize] += 1;
    }
    // Lump bins whose expected count is negligible into their inner
    // neighbour so the chi-square statistic stays well-conditioned.
    let mut obs = Vec::new();
    let mut expected = Vec::new();
    let mut carry_o = 0u64;
    let mut carry_e = 0.0f64;
    for (o, &q) in observed.iter().zip(&pmf) {
        carry_o += o;
        carry_e += q * samples as f64;
        if carry_e >= 5.0 {
            obs.push(carry_o);
            expected.push(carry_e);
            carry_o = 0;
            carry_e = 0.0;
        }
    }
    if carry_e > 0.0 {
        let last = obs.len() - 1;
        obs[last] += carry_o;
        expected[last] += carry_e;
    }
    chi_square_gof(&obs, &expected, 5.0).within_sigma(5.0)
}

#[test]
fn hypergeometric_small_draw_walk_matches_exact_pmf() {
    // Tiny draws: the p_lo-started one-sided walk (the path that is
    // byte-identical to the pre-bulk sampler).
    assert!(hypergeometric_chi_square(500, 120, 8, 200_000, 11));
}

#[test]
fn hypergeometric_bulk_mode_walk_matches_exact_pmf() {
    // Large draws from a large pool: `pmf(lo)` underflows f64, so the
    // sampler must start the two-sided walk at the mode.
    assert!(hypergeometric_chi_square(40_000, 18_000, 9_000, 120_000, 12));
}

#[test]
fn hypergeometric_bulk_tight_support_matches_exact_pmf() {
    // draws > total − marked pins lo > 0; the bulk path must respect
    // the shifted support.
    assert!(hypergeometric_chi_square(1_000, 900, 700, 150_000, 13));
}

#[test]
fn group_splitter_blocks_sum_to_pool_exactly() {
    let mut rng = Pcg64::seed_from_u64(21);
    let original = vec![17u64, 0, 4, 96, 1, 33, 250, 8];
    let total: u64 = original.iter().sum();
    let group_sizes = [100u64, 0, 250, 59];
    assert_eq!(group_sizes.iter().sum::<u64>(), total, "groups must exhaust the pool");
    let mut pool = original.clone();
    let mut splitter = GroupSplitter::new(&mut pool);
    let mut dealt = vec![0u64; original.len()];
    for &g in &group_sizes {
        let mut block = vec![0u64; original.len()];
        splitter.draw_block(g, &mut rng, |j, x| block[j] += x);
        assert_eq!(block.iter().sum::<u64>(), g, "block mass must equal the group size");
        for (d, b) in dealt.iter_mut().zip(&block) {
            *d += b;
        }
    }
    assert_eq!(splitter.remaining(), 0, "the pool must be exhausted");
    assert_eq!(dealt, original, "blocks must sum to the pool exactly");
    assert_eq!(pool, vec![0u64; original.len()], "the pool slice must be drained");
}

#[test]
fn group_splitter_degenerate_pools() {
    let mut rng = Pcg64::seed_from_u64(22);
    // Single category: every block is deterministic.
    let mut pool = vec![40u64];
    let mut splitter = GroupSplitter::new(&mut pool);
    let mut got = 0u64;
    splitter.draw_block(15, &mut rng, |j, x| {
        assert_eq!(j, 0);
        got += x;
    });
    assert_eq!(got, 15);
    assert_eq!(splitter.remaining(), 25);
    // Empty group: no randomness, no deposits.
    splitter.draw_block(0, &mut rng, |_, _| panic!("draws == 0 must deposit nothing"));
    assert_eq!(splitter.remaining(), 25);
    // h = 1 windows: 25 singleton blocks drain the remainder.
    for _ in 0..25 {
        let mut x = 0u64;
        splitter.draw_block(1, &mut rng, |_, c| x += c);
        assert_eq!(x, 1);
    }
    assert_eq!(splitter.remaining(), 0);
}

#[test]
fn group_splitter_marginals_are_hypergeometric_chi_square() {
    // The first block's per-category count is marginally
    // Hypergeometric(total, pool[j], g): the nested conditional
    // construction must reproduce the unconditional marginal.
    let original = [60u64, 140, 25, 75];
    let total: u64 = original.iter().sum();
    let g = 90u64;
    let samples = 120_000u64;
    let mut rng = Pcg64::seed_from_u64(23);
    for (j, &marked) in original.iter().enumerate() {
        let (lo, pmf) = hypergeometric_pmf(total, marked, g);
        let mut observed = vec![0u64; pmf.len()];
        for _ in 0..samples {
            let mut pool = original.to_vec();
            let mut splitter = GroupSplitter::new(&mut pool);
            let mut x = 0u64;
            splitter.draw_block(g, &mut rng, |cat, c| {
                if cat == j {
                    x = c;
                }
            });
            observed[(x - lo) as usize] += 1;
        }
        let expected: Vec<f64> = pmf.iter().map(|&q| q * samples as f64).collect();
        // Lump sub-5-count tails exactly as the hypergeometric helper.
        let mut obs_l = Vec::new();
        let mut exp_l = Vec::new();
        let (mut co, mut ce) = (0u64, 0.0f64);
        for (&o, &e) in observed.iter().zip(&expected) {
            co += o;
            ce += e;
            if ce >= 5.0 {
                obs_l.push(co);
                exp_l.push(ce);
                co = 0;
                ce = 0.0;
            }
        }
        if ce > 0.0 {
            let last = obs_l.len() - 1;
            obs_l[last] += co;
            exp_l[last] += ce;
        }
        assert!(
            chi_square_gof(&obs_l, &exp_l, 5.0).within_sigma(5.0),
            "category {j} marginal deviates from Hypergeometric({total}, {marked}, {g})"
        );
    }
}

#[test]
fn fenwick_pool_prefix_sums_and_point_ops() {
    let counts = [5u64, 0, 12, 3, 0, 7, 1];
    let mut pool = FenwickPool::new(&counts);
    assert_eq!(pool.len(), counts.len());
    assert_eq!(pool.remaining(), counts.iter().sum::<u64>());
    assert!(!pool.is_empty());
    for (i, &c) in counts.iter().enumerate() {
        assert_eq!(pool.count(i), c, "counts mirror must match the input");
    }
    pool.remove(2, 12);
    assert_eq!(pool.count(2), 0);
    pool.add(4, 9);
    assert_eq!(pool.count(4), 9);
    assert_eq!(pool.remaining(), 5 + 3 + 9 + 7 + 1);
    // Remove everything; the pool must report no balls left (the
    // categories themselves remain — `is_empty` is about categories).
    for i in 0..counts.len() {
        let c = pool.count(i);
        pool.remove(i, c);
    }
    assert_eq!(pool.remaining(), 0);
    assert!(!pool.is_empty(), "categories persist after their balls are gone");
}

#[test]
fn fenwick_pool_draw_agrees_with_naive_cdf_scan() {
    // Replaying the identical RNG stream through the bit-descended draw
    // and a naive linear CDF scan must pick the same categories: both
    // map `target ∈ [0, remaining)` to the category holding that ball.
    use rand::Rng as _;
    for seed in 0..20u64 {
        let mut grow = Pcg64::seed_from_u64(900 + seed);
        let len = grow.gen_range(1..24usize);
        let counts: Vec<u64> = (0..len).map(|_| grow.gen_range(0..9u64)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            continue;
        }
        let mut pool = FenwickPool::new(&counts);
        let mut naive = counts.clone();
        let mut rng_a = Pcg64::seed_from_u64(7_000 + seed);
        let mut rng_b = Pcg64::seed_from_u64(7_000 + seed);
        for _ in 0..total {
            let picked = pool.draw(&mut rng_a);
            let mut target = rng_b.gen_range(0..naive.iter().sum::<u64>());
            let mut scan = 0usize;
            while target >= naive[scan] {
                target -= naive[scan];
                scan += 1;
            }
            naive[scan] -= 1;
            assert_eq!(picked, scan, "draw must match the naive CDF scan");
            assert_eq!(pool.count(picked), naive[picked], "counts mirror must track draws");
        }
        assert_eq!(pool.remaining(), 0, "drawing `total` balls must empty the pool");
    }
}

#[test]
fn fenwick_pool_deal_matches_pool_composition() {
    // `deal` dispatches between per-ball draws and the bulk
    // conditional-hypergeometric sweep on `c·8 ≥ len`; both must hand
    // back exactly `c` balls that the pool actually held.
    let mut rng = Pcg64::seed_from_u64(31);
    let counts = [9u64, 0, 14, 2, 5];
    for c in [1u64, 2, 30] {
        let mut pool = FenwickPool::new(&counts);
        let before: Vec<u64> = (0..pool.len()).map(|i| pool.count(i)).collect();
        let mut dealt = vec![0u64; counts.len()];
        pool.deal(c, &mut rng, |cat, x| dealt[cat] += x);
        assert_eq!(dealt.iter().sum::<u64>(), c, "deal must hand back exactly c balls");
        for i in 0..counts.len() {
            assert!(dealt[i] <= before[i], "cannot deal more than the pool held");
            assert_eq!(pool.count(i), before[i] - dealt[i], "pool must shrink by the dealt mass");
        }
        assert_eq!(pool.remaining(), counts.iter().sum::<u64>() - c);
    }
}

/// Chi-square of the Fenwick sampler's draw frequencies against its own
/// count vector (the exact categorical law it claims to realize).
fn dynamic_categorical_chi_square(cat: &DynamicCategorical, draws: u64, seed: u64) -> bool {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut observed = vec![0u64; cat.len()];
    for _ in 0..draws {
        observed[cat.sample(&mut rng)] += 1;
    }
    let total = cat.total() as f64;
    // Drop structural zeros (their expected count is 0 and they must
    // never be drawn — asserted slot by slot).
    let mut obs = Vec::new();
    let mut expected = Vec::new();
    for (i, &o) in observed.iter().enumerate() {
        let c = cat.count(i);
        if c == 0 {
            assert_eq!(o, 0, "empty slot {i} was drawn");
        } else {
            obs.push(o);
            expected.push(c as f64 / total * draws as f64);
        }
    }
    chi_square_gof(&obs, &expected, 5.0).within_sigma(5.0)
}

#[test]
fn dynamic_categorical_fresh_matches_counts_chi_square() {
    // Built in one shot over a count vector with interior zeros: the
    // bit-descended draw must realize exactly the counts' law.
    let counts = [5u64, 0, 1, 17, 3, 0, 8, 2, 40, 0, 11];
    let cat = DynamicCategorical::new(&counts);
    assert_eq!(cat.total(), counts.iter().sum::<u64>());
    assert!(dynamic_categorical_chi_square(&cat, 400_000, 41));
}

#[test]
fn dynamic_categorical_after_update_storm_matches_counts_chi_square() {
    // Grown from all-zero through a randomized storm of `set`s that
    // flips occupancy both ways: the patched tree must sample exactly
    // like a fresh build over the final counts — same law, not merely
    // close.
    use rand::Rng as _;
    let k = 64usize;
    let mut cat = DynamicCategorical::with_slots(k);
    let mut storm = Pcg64::seed_from_u64(42);
    for _ in 0..10_000 {
        let i = storm.gen_range(0..k);
        let c = if storm.gen_bool(0.3) { 0 } else { storm.gen_range(1..50u64) };
        cat.set(i, c);
    }
    assert!(cat.total() > 0, "storm left the sampler empty");
    assert!(dynamic_categorical_chi_square(&cat, 400_000, 43));
}

#[test]
fn geometric_matches_exact_pmf_chi_square() {
    let p = 0.23f64;
    let g = Geometric::new(p);
    let mut rng = Pcg64::seed_from_u64(7);
    let draws = 300_000u64;
    let cap = 80usize; // P(G ≥ 80) < 1e-9; lump the tail into the last bin
    let mut observed = vec![0u64; cap + 1];
    for _ in 0..draws {
        observed[(g.sample(&mut rng) as usize).min(cap)] += 1;
    }
    let mut expected: Vec<f64> =
        (0..cap).map(|x| p * (1.0 - p).powi(x as i32) * draws as f64).collect();
    expected.push((1.0 - p).powi(cap as i32) * draws as f64);
    assert!(chi_square_gof(&observed, &expected, 5.0).within_sigma(5.0));
}
