//! Chi-square goodness-of-fit of the exact samplers against their exact
//! pmfs — stronger than the range/mean invariants in `properties.rs`.

use rand::SeedableRng;
use symbreak_sim::dist::{Binomial, Categorical, Geometric};
use symbreak_sim::rng::Pcg64;
use symbreak_stats::infer::chi_square_gof;

/// Exact `Bin(n, p)` pmf over `0..=n` via the stable recurrence
/// `pmf(x+1) = pmf(x)·(n−x)/(x+1)·p/q`, started from the mode outward to
/// avoid underflow at large `n`.
fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
    let q = 1.0 - p;
    let mode = ((n + 1) as f64 * p).floor().min(n as f64) as usize;
    let mut pmf = vec![0.0f64; n as usize + 1];
    // Unnormalized start; renormalize at the end (exact up to f64).
    pmf[mode] = 1.0;
    for x in mode..n as usize {
        pmf[x + 1] = pmf[x] * ((n - x as u64) as f64 / (x as f64 + 1.0)) * (p / q);
    }
    for x in (0..mode).rev() {
        pmf[x] = pmf[x + 1] * ((x as f64 + 1.0) / (n - x as u64) as f64) * (q / p);
    }
    let total: f64 = pmf.iter().sum();
    for v in pmf.iter_mut() {
        *v /= total;
    }
    pmf
}

fn binomial_chi_square(n: u64, p: f64, draws: u64, seed: u64) -> bool {
    let d = Binomial::new(n, p);
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut observed = vec![0u64; n as usize + 1];
    for _ in 0..draws {
        observed[d.sample(&mut rng) as usize] += 1;
    }
    let expected: Vec<f64> = binomial_pmf(n, p).iter().map(|&q| q * draws as f64).collect();
    chi_square_gof(&observed, &expected, 5.0).within_sigma(5.0)
}

#[test]
fn binomial_inversion_regime_matches_exact_pmf() {
    // n·p = 2.5: the BINV path.
    assert!(binomial_chi_square(50, 0.05, 200_000, 1));
}

#[test]
fn binomial_btrs_regime_matches_exact_pmf() {
    // n·p = 300: the BTRS path.
    assert!(binomial_chi_square(1_000, 0.3, 200_000, 2));
}

#[test]
fn binomial_btrs_boundary_matches_exact_pmf() {
    // n·p' just above the regime split at 10, and a flipped p > 1/2.
    assert!(binomial_chi_square(10_000, 0.0012, 150_000, 3));
    assert!(binomial_chi_square(200, 0.85, 150_000, 4));
}

#[test]
fn categorical_matches_weights_chi_square() {
    let weights = [5.0, 0.0, 1.0, 17.0, 3.0, 0.5, 8.0, 2.5];
    let total: f64 = weights.iter().sum();
    let cat = Categorical::new(&weights);
    let mut rng = Pcg64::seed_from_u64(5);
    let draws = 400_000u64;
    let mut observed = vec![0u64; weights.len()];
    for _ in 0..draws {
        observed[cat.sample(&mut rng)] += 1;
    }
    assert_eq!(observed[1], 0, "zero-weight category must never be drawn");
    // Drop the structural zero from the test (its expected count is 0).
    let obs: Vec<u64> =
        observed.iter().zip(&weights).filter(|(_, &w)| w > 0.0).map(|(&o, _)| o).collect();
    let expected: Vec<f64> =
        weights.iter().filter(|&&w| w > 0.0).map(|&w| w / total * draws as f64).collect();
    assert!(chi_square_gof(&obs, &expected, 5.0).within_sigma(5.0));
}

#[test]
fn categorical_near_uniform_table_chi_square() {
    // Exactly equal weights exercise the alias construction's donation
    // cascade (every column ends up with a fractional accept probability).
    let k = 101usize;
    let weights = vec![990.0; k];
    let cat = Categorical::new(&weights);
    let mut rng = Pcg64::seed_from_u64(6);
    let draws = 500_000u64;
    let mut observed = vec![0u64; k];
    for _ in 0..draws {
        observed[cat.sample(&mut rng)] += 1;
    }
    let expected = vec![draws as f64 / k as f64; k];
    assert!(chi_square_gof(&observed, &expected, 5.0).within_sigma(5.0));
}

#[test]
fn geometric_matches_exact_pmf_chi_square() {
    let p = 0.23f64;
    let g = Geometric::new(p);
    let mut rng = Pcg64::seed_from_u64(7);
    let draws = 300_000u64;
    let cap = 80usize; // P(G ≥ 80) < 1e-9; lump the tail into the last bin
    let mut observed = vec![0u64; cap + 1];
    for _ in 0..draws {
        observed[(g.sample(&mut rng) as usize).min(cap)] += 1;
    }
    let mut expected: Vec<f64> =
        (0..cap).map(|x| p * (1.0 - p).powi(x as i32) * draws as f64).collect();
    expected.push((1.0 - p).powi(cap as i32) * draws as f64);
    assert!(chi_square_gof(&observed, &expected, 5.0).within_sigma(5.0));
}
