//! Property-based tests of the graph substrate and the duality coupling.

use proptest::prelude::*;
use rand::SeedableRng;
use symbreak_graphs::{CoalescingWalks, DualityCoupling, Graph};
use symbreak_sim::rng::Pcg64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn handshake_lemma(n in 2usize..40, p in 0.0f64..=1.0, seed in 0u64..1000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let g = Graph::gnp(n, p, &mut rng);
        let degree_sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn neighbors_are_symmetric(n in 2usize..30, seed in 0u64..1000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let g = Graph::gnp(n, 0.3, &mut rng);
        for u in 0..n {
            for &v in g.neighbors(u) {
                prop_assert!(
                    g.neighbors(v as usize).contains(&(u as u32)),
                    "edge ({u},{v}) not symmetric"
                );
            }
        }
    }

    #[test]
    fn complete_graph_properties(n in 2usize..40) {
        let g = Graph::complete(n);
        prop_assert_eq!(g.num_edges(), n * (n - 1) / 2);
        prop_assert!(g.is_connected());
        for u in 0..n {
            prop_assert_eq!(g.degree(u), n - 1);
        }
    }

    #[test]
    fn random_regular_degree_invariant(
        half_n in 6usize..20,
        d in 2usize..5,
        seed in 0u64..500,
    ) {
        let n = 2 * half_n; // even, so n*d is always even
        let mut rng = Pcg64::seed_from_u64(seed);
        let g = Graph::random_regular(n, d, &mut rng);
        for u in 0..n {
            prop_assert_eq!(g.degree(u), d);
        }
    }

    #[test]
    fn coalescing_walks_monotone_nonincreasing(n in 4usize..60, seed in 0u64..1000) {
        let g = Graph::complete(n);
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut w = CoalescingWalks::new(&g);
        let mut prev = w.num_walks();
        for _ in 0..30 {
            w.step(&mut rng);
            prop_assert!(w.num_walks() <= prev);
            prop_assert!(w.num_walks() >= 1);
            prev = w.num_walks();
        }
    }

    #[test]
    fn duality_identity_on_random_gnp(n in 6usize..24, seed in 0u64..300) {
        let mut rng = Pcg64::seed_from_u64(seed);
        // Dense enough to be connected w.h.p.; skip disconnected draws.
        let g = Graph::gnp(n, 0.6, &mut rng);
        prop_assume!(g.is_connected());
        // k = 2 avoids the bipartite obstruction on unlucky structures.
        let Some((coupling, t_c)) =
            DualityCoupling::generate_until_coalesced(&g, 2, 200_000, &mut rng)
        else {
            return Ok(()); // pathological mixing; nothing to check
        };
        prop_assert!(coupling.verify_identity());
        prop_assert_eq!(
            symbreak_graphs::voter_time_from_coupling(&coupling, 2),
            Some(t_c)
        );
    }

    #[test]
    fn walk_positions_stay_in_range(n in 4usize..40, seed in 0u64..500) {
        let g = Graph::cycle(n.max(3));
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut w = CoalescingWalks::new(&g);
        for _ in 0..10 {
            w.step(&mut rng);
            prop_assert!(w.positions().iter().all(|&p| (p as usize) < g.num_nodes()));
        }
    }
}
