//! Coalescing random walks.
//!
//! Initially one walk sits on every node; in each synchronous step every
//! walk moves to a uniform random neighbor, and walks that meet merge. The
//! coalescence times `T^k_C` (first time at most `k` walks remain) are dual
//! to the Voter hitting times `T^k_V` via time reversal (Lemma 4, see
//! [`crate::duality`]); Lemma 3's `E[T^k_C] ≤ 20 n/k` bound is validated in
//! Experiment E5.

use rand::Rng;

use crate::graph::Graph;

/// State of a coalescing-random-walk simulation.
#[derive(Debug, Clone)]
pub struct CoalescingWalks<'g> {
    graph: &'g Graph,
    /// `positions[w]` = node currently hosting walk representative `w`;
    /// coalesced walks are removed from this list.
    positions: Vec<u32>,
    steps: u64,
}

impl<'g> CoalescingWalks<'g> {
    /// Starts with one walk on every node of `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        let positions = (0..graph.num_nodes() as u32).collect();
        Self { graph, positions, steps: 0 }
    }

    /// Starts with walks on the given (distinct) nodes only.
    ///
    /// # Panics
    /// Panics if `starts` contains duplicates or out-of-range nodes.
    pub fn with_starts(graph: &'g Graph, starts: &[u32]) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(starts.len());
        for &s in starts {
            assert!((s as usize) < graph.num_nodes(), "start {s} out of range");
            assert!(seen.insert(s), "duplicate start {s}");
        }
        Self { graph, positions: starts.to_vec(), steps: 0 }
    }

    /// Number of walks still alive.
    pub fn num_walks(&self) -> usize {
        self.positions.len()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current walk positions (one entry per surviving walk).
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// One synchronous step: every walk moves to a uniform random neighbor,
    /// then walks sharing a node coalesce.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for pos in self.positions.iter_mut() {
            *pos = self.graph.random_neighbor(*pos as usize, rng);
        }
        self.coalesce();
        self.steps += 1;
    }

    fn coalesce(&mut self) {
        self.positions.sort_unstable();
        self.positions.dedup();
    }

    /// Runs until at most `k` walks remain; returns the number of steps
    /// taken from the current state, or `None` if `max_steps` elapsed
    /// first.
    pub fn run_until<R: Rng + ?Sized>(
        &mut self,
        k: usize,
        max_steps: u64,
        rng: &mut R,
    ) -> Option<u64> {
        let start = self.steps;
        while self.num_walks() > k {
            if self.steps - start >= max_steps {
                return None;
            }
            self.step(rng);
        }
        Some(self.steps - start)
    }
}

/// Convenience: the coalescence time `T^k_C` from the all-nodes start on
/// `graph`, or `None` at the cap.
pub fn coalescence_time<R: Rng + ?Sized>(
    graph: &Graph,
    k: usize,
    max_steps: u64,
    rng: &mut R,
) -> Option<u64> {
    CoalescingWalks::new(graph).run_until(k, max_steps, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn starts_with_one_walk_per_node() {
        let g = Graph::complete(10);
        let w = CoalescingWalks::new(&g);
        assert_eq!(w.num_walks(), 10);
        assert_eq!(w.steps(), 0);
    }

    #[test]
    fn walk_count_is_non_increasing() {
        let g = Graph::complete(64);
        let mut w = CoalescingWalks::new(&g);
        let mut rng = Pcg64::seed_from_u64(1);
        let mut prev = w.num_walks();
        for _ in 0..50 {
            w.step(&mut rng);
            assert!(w.num_walks() <= prev);
            prev = w.num_walks();
        }
    }

    #[test]
    fn coalesces_to_one_on_complete_graph() {
        let g = Graph::complete(32);
        let mut rng = Pcg64::seed_from_u64(2);
        let t = coalescence_time(&g, 1, 1_000_000, &mut rng).expect("coalesces");
        assert!(t > 0);
    }

    #[test]
    fn expected_coalescence_time_within_lemma3_bound() {
        // E[T^k_C] <= 20 n/k (Equation (19)); Monte-Carlo mean must comply
        // with slack for sampling error.
        let n = 128;
        let g = Graph::complete(n);
        for k in [1usize, 4, 16] {
            let trials = 30;
            let mut total = 0u64;
            for t in 0..trials {
                let mut rng = Pcg64::seed_from_u64(100 + t);
                total += coalescence_time(&g, k, 10_000_000, &mut rng).expect("coalesces");
            }
            let mean = total as f64 / trials as f64;
            let bound = 20.0 * n as f64 / k as f64;
            assert!(mean < bound, "k={k}: mean {mean} exceeds 20n/k = {bound}");
        }
    }

    #[test]
    fn custom_starts() {
        let g = Graph::cycle(10);
        let w = CoalescingWalks::with_starts(&g, &[0, 5]);
        assert_eq!(w.num_walks(), 2);
    }

    #[test]
    fn two_walks_on_cycle_meet() {
        let g = Graph::cycle(8);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut w = CoalescingWalks::with_starts(&g, &[0, 4]);
        let t = w.run_until(1, 1_000_000, &mut rng).expect("meet");
        assert!(t >= 1);
        assert_eq!(w.num_walks(), 1);
    }

    #[test]
    fn cap_returns_none() {
        let g = Graph::cycle(64);
        let mut rng = Pcg64::seed_from_u64(4);
        assert_eq!(coalescence_time(&g, 1, 1, &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "duplicate start")]
    fn duplicate_starts_panic() {
        let g = Graph::complete(4);
        CoalescingWalks::with_starts(&g, &[1, 1]);
    }
}
