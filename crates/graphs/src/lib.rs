#![warn(missing_docs)]
//! Graph substrate for consensus dynamics: CSR graphs, builders, spectral
//! estimates, per-node Voter/2-Choices dynamics, coalescing random walks,
//! and the exact Voter/coalescence duality coupling of Lemma 4.
//!
//! The paper's theorems live on the complete graph, but Lemma 4 is stated
//! and proven for arbitrary graphs; [`duality`] makes that proof executable
//! by materializing the arrow field `Y_t(u)` and running both processes
//! over it (Figure 1 as code).
//!
//! # Example
//!
//! ```
//! use symbreak_graphs::graph::Graph;
//! use symbreak_graphs::duality::DualityCoupling;
//! use symbreak_sim::rng::Pcg64;
//! use rand::SeedableRng;
//!
//! let g = Graph::complete(16);
//! let mut rng = Pcg64::seed_from_u64(7);
//! let (coupling, t_c) =
//!     DualityCoupling::generate_until_coalesced(&g, 1, 100_000, &mut rng).unwrap();
//! // The Voter process over the reversed arrows hits one opinion at
//! // exactly the same time (Lemma 4).
//! assert_eq!(coupling.voter_opinions_after(t_c as usize), 1);
//! ```

pub mod builders_ext;
pub mod coalescing;
pub mod duality;
pub mod dynamics;
pub mod graph;
pub mod props;

pub use coalescing::{coalescence_time, CoalescingWalks};
pub use duality::{voter_time_from_coupling, DualityCoupling};
pub use dynamics::{GraphDynamics, GraphRule};
pub use graph::Graph;
pub use props::{degree_stats, spectral_gap_estimate, DegreeStats};
