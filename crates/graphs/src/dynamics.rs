//! Voter and 2-Choices dynamics on arbitrary graphs.
//!
//! The paper's related work studies 2-Choices on `d`-regular and expander
//! graphs (\[CER14\], \[CER+15\]) and Voter on general graphs
//! (\[CEOR13\], \[BGKMT16\]). These runners let the experiment harness
//! contrast the complete-graph behaviour with sparse topologies.

use rand::Rng;

use symbreak_core::opinion::Opinion;
use symbreak_core::Configuration;

use crate::graph::Graph;

/// Per-node opinion dynamics on a graph.
#[derive(Debug, Clone)]
pub struct GraphDynamics<'g> {
    graph: &'g Graph,
    opinions: Vec<Opinion>,
    next: Vec<Opinion>,
    round: u64,
}

/// The update rule to run on the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphRule {
    /// Sample one neighbor, adopt its opinion.
    Voter,
    /// Sample two neighbors (with replacement); adopt on agreement, else
    /// keep your own opinion.
    TwoChoices,
}

impl<'g> GraphDynamics<'g> {
    /// Starts with pairwise distinct opinions (leader election).
    pub fn singletons(graph: &'g Graph) -> Self {
        let opinions: Vec<Opinion> = (0..graph.num_nodes() as u32).map(Opinion::new).collect();
        let next = opinions.clone();
        Self { graph, opinions, next, round: 0 }
    }

    /// Starts from explicit per-node opinions.
    ///
    /// # Panics
    /// Panics if the assignment length differs from the node count.
    pub fn with_opinions(graph: &'g Graph, opinions: Vec<Opinion>) -> Self {
        assert_eq!(opinions.len(), graph.num_nodes(), "one opinion per node");
        let next = opinions.clone();
        Self { graph, opinions, next, round: 0 }
    }

    /// The current per-node opinions.
    pub fn opinions(&self) -> &[Opinion] {
        &self.opinions
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of distinct opinions present.
    pub fn num_opinions(&self) -> usize {
        let mut v: Vec<Opinion> = self.opinions.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Whether all nodes agree.
    pub fn is_consensus(&self) -> bool {
        self.opinions.windows(2).all(|w| w[0] == w[1])
    }

    /// The configuration over `k` color slots (for interop with
    /// `symbreak-core` observables).
    pub fn configuration(&self, k: usize) -> Configuration {
        Configuration::from_opinions(&self.opinions, k)
    }

    /// One synchronous round of `rule`.
    pub fn step<R: Rng + ?Sized>(&mut self, rule: GraphRule, rng: &mut R) {
        let n = self.graph.num_nodes();
        for u in 0..n {
            self.next[u] = match rule {
                GraphRule::Voter => {
                    let v = self.graph.random_neighbor(u, rng);
                    self.opinions[v as usize]
                }
                GraphRule::TwoChoices => {
                    let a = self.opinions[self.graph.random_neighbor(u, rng) as usize];
                    let b = self.opinions[self.graph.random_neighbor(u, rng) as usize];
                    if a == b {
                        a
                    } else {
                        self.opinions[u]
                    }
                }
            };
        }
        std::mem::swap(&mut self.opinions, &mut self.next);
        self.round += 1;
    }

    /// Runs until consensus, returning the round count, or `None` at the
    /// cap.
    pub fn run_to_consensus<R: Rng + ?Sized>(
        &mut self,
        rule: GraphRule,
        max_rounds: u64,
        rng: &mut R,
    ) -> Option<u64> {
        let start = self.round;
        while !self.is_consensus() {
            if self.round - start >= max_rounds {
                return None;
            }
            self.step(rule, rng);
        }
        Some(self.round - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn voter_reaches_consensus_on_complete_graph() {
        let g = Graph::complete(32);
        let mut d = GraphDynamics::singletons(&g);
        let mut rng = Pcg64::seed_from_u64(1);
        let t = d.run_to_consensus(GraphRule::Voter, 1_000_000, &mut rng).expect("consensus");
        assert!(t > 0);
        assert!(d.is_consensus());
        assert_eq!(d.num_opinions(), 1);
    }

    #[test]
    fn voter_reaches_consensus_on_odd_cycle() {
        // The cycle must be odd: on bipartite graphs the synchronous Voter
        // process preserves the parity classes (dual walks at odd distance
        // never meet) and full consensus is unreachable.
        let g = Graph::cycle(15);
        let mut d = GraphDynamics::singletons(&g);
        let mut rng = Pcg64::seed_from_u64(2);
        assert!(d.run_to_consensus(GraphRule::Voter, 10_000_000, &mut rng).is_some());
    }

    #[test]
    fn voter_on_even_cycle_reaches_two_opinions_not_one() {
        // The bipartite obstruction in action: 2 opinions are reachable
        // (one per parity class), 1 is not in any reasonable horizon.
        let g = Graph::cycle(8);
        let mut d = GraphDynamics::singletons(&g);
        let mut rng = Pcg64::seed_from_u64(7);
        let mut rounds = 0u64;
        while d.num_opinions() > 2 && rounds < 1_000_000 {
            d.step(GraphRule::Voter, &mut rng);
            rounds += 1;
        }
        assert_eq!(d.num_opinions(), 2, "parity classes coalesce separately");
        assert!(d.run_to_consensus(GraphRule::Voter, 10_000, &mut rng).is_none());
    }

    #[test]
    fn two_choices_with_heavy_majority_converges_fast() {
        // 2-Choices with a large bias: the big color should win quickly.
        let g = Graph::complete(100);
        let mut opinions: Vec<Opinion> = vec![Opinion::new(0); 90];
        opinions.extend(std::iter::repeat_n(Opinion::new(1), 10));
        let mut d = GraphDynamics::with_opinions(&g, opinions);
        let mut rng = Pcg64::seed_from_u64(3);
        let t = d.run_to_consensus(GraphRule::TwoChoices, 100_000, &mut rng).expect("consensus");
        assert!(t < 1000, "took {t} rounds");
        assert_eq!(d.opinions()[0], Opinion::new(0), "majority color should win");
    }

    #[test]
    fn consensus_is_absorbing_for_both_rules() {
        let g = Graph::complete(10);
        let mut rng = Pcg64::seed_from_u64(4);
        for rule in [GraphRule::Voter, GraphRule::TwoChoices] {
            let mut d = GraphDynamics::with_opinions(&g, vec![Opinion::new(5); 10]);
            d.step(rule, &mut rng);
            assert!(d.is_consensus());
        }
    }

    #[test]
    fn configuration_interop() {
        let g = Graph::complete(6);
        let opinions = vec![
            Opinion::new(0),
            Opinion::new(0),
            Opinion::new(1),
            Opinion::new(1),
            Opinion::new(1),
            Opinion::new(2),
        ];
        let d = GraphDynamics::with_opinions(&g, opinions);
        let c = d.configuration(3);
        assert_eq!(c.counts(), &[2, 3, 1]);
        assert_eq!(d.num_opinions(), 3);
    }

    #[test]
    fn rounds_are_counted() {
        let g = Graph::complete(8);
        let mut d = GraphDynamics::singletons(&g);
        let mut rng = Pcg64::seed_from_u64(5);
        d.step(GraphRule::Voter, &mut rng);
        d.step(GraphRule::TwoChoices, &mut rng);
        assert_eq!(d.round(), 2);
    }

    #[test]
    #[should_panic(expected = "one opinion per node")]
    fn wrong_opinion_count_panics() {
        let g = Graph::complete(4);
        GraphDynamics::with_opinions(&g, vec![Opinion::new(0); 3]);
    }
}
