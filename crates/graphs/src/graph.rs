//! Compressed-sparse-row graphs and standard builders.
//!
//! The paper's own results live on the complete graph, but Lemma 4 (the
//! Voter/coalescence duality) is proven **for any graph**, and the related
//! work it builds on (\[CEOR13\], \[CER14\], \[BGKMT16\]) concerns general,
//! regular, and expander graphs — so the substrate supports them all.

use rand::Rng;

/// An undirected simple graph in CSR form.
///
/// Self-loops are not stored; parallel edges are rejected by the builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` nodes.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or duplicate edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range");
            assert!(u != v, "self-loop at {u}");
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for (u, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            let before = list.len();
            list.dedup();
            assert!(list.len() == before, "duplicate edge at node {u}");
        }
        Self::from_adjacency(adj)
    }

    fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        offsets.push(0);
        let mut neighbors = Vec::new();
        for list in adj {
            neighbors.extend_from_slice(&list);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Neighbors of `u`, sorted ascending.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// A uniformly random neighbor of `u`.
    ///
    /// # Panics
    /// Panics if `u` is isolated.
    pub fn random_neighbor<R: Rng + ?Sized>(&self, u: usize, rng: &mut R) -> u32 {
        let nb = self.neighbors(u);
        assert!(!nb.is_empty(), "node {u} has no neighbors");
        nb[rng.gen_range(0..nb.len())]
    }

    /// Whether every node can reach every other (BFS from node 0; the
    /// empty and single-node graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    queue.push_back(v as usize);
                }
            }
        }
        count == n
    }

    // ---- Builders -------------------------------------------------------

    /// The complete graph `K_n` (the paper's setting).
    pub fn complete(n: usize) -> Self {
        assert!(n >= 1, "need at least one node");
        let adj: Vec<Vec<u32>> =
            (0..n).map(|u| (0..n as u32).filter(|&v| v != u as u32).collect()).collect();
        Self::from_adjacency(adj)
    }

    /// The cycle `C_n`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 nodes");
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|u| (u, (u + 1) % n as u32)).collect();
        Self::from_edges(n, &edges)
    }

    /// The path `P_n`.
    pub fn path(n: usize) -> Self {
        assert!(n >= 2, "a path needs at least 2 nodes");
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|u| (u, u + 1)).collect();
        Self::from_edges(n, &edges)
    }

    /// The star graph: node 0 connected to all others.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least 2 nodes");
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        Self::from_edges(n, &edges)
    }

    /// The 2D torus on a `rows × cols` grid (wrap-around neighbors).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
        let n = rows * cols;
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::with_capacity(2 * n);
        for r in 0..rows {
            for c in 0..cols {
                edges.push((idx(r, c), idx(r, (c + 1) % cols)));
                edges.push((idx(r, c), idx((r + 1) % rows, c)));
            }
        }
        Self::from_edges(n, &edges)
    }

    /// The `d`-dimensional hypercube (`2^d` nodes).
    pub fn hypercube(d: usize) -> Self {
        assert!((1..=24).contains(&d), "hypercube dimension must be in 1..=24");
        let n = 1usize << d;
        let mut edges = Vec::with_capacity(n * d / 2);
        for u in 0..n {
            for b in 0..d {
                let v = u ^ (1 << b);
                if u < v {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Erdős–Rényi `G(n, p)`.
    pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0,1]");
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < p {
                    edges.push((u, v));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// A random `d`-regular simple graph: the pairing (configuration)
    /// model followed by double-edge-swap *repair* of self-loops and
    /// multi-edges.
    ///
    /// Full-restart rejection is hopeless beyond small degrees (the
    /// pairing is simple with probability ≈ exp(−(d−1)/2 − (d−1)²/4), i.e.
    /// ~1e-7 at d = 8), so defective pairs are repaired by degree-
    /// preserving swaps with uniformly random partners — the standard
    /// approximate-uniform sampler for random regular graphs.
    ///
    /// # Panics
    /// Panics if `n·d` is odd, `d ≥ n`, `d == 0`, or the repair loop fails
    /// to converge (practically impossible for `d < n/4`).
    pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Self {
        assert!((n * d).is_multiple_of(2), "n*d must be even");
        assert!(d < n, "degree must be below n");
        assert!(d >= 1, "degree must be positive");
        // Stubs: d copies of each node, randomly permuted, then paired.
        let mut stubs: Vec<u32> = (0..n as u32).flat_map(|u| std::iter::repeat_n(u, d)).collect();
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut pairs: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
        let norm = |u: u32, v: u32| (u.min(v), u.max(v));
        let mut present: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::with_capacity(pairs.len() * 2);
        for &(u, v) in &pairs {
            *present.entry(norm(u, v)).or_insert(0) += 1;
        }
        let is_bad = |(u, v): (u32, u32), present: &std::collections::HashMap<(u32, u32), u32>| {
            u == v || present[&norm(u, v)] > 1
        };
        let m = pairs.len();
        // Each successful swap strictly reduces the number of defective
        // pairs in expectation; the cap is generous.
        for _ in 0..200 * m.max(64) {
            let Some(i) = (0..m).find(|&i| is_bad(pairs[i], &present)) else {
                let edges: Vec<(u32, u32)> = pairs.iter().map(|&(u, v)| norm(u, v)).collect();
                return Self::from_edges(n, &edges);
            };
            let j = rng.gen_range(0..m);
            if j == i {
                continue;
            }
            let (u, v) = pairs[i];
            let (x, y) = pairs[j];
            // Propose rewiring (u,v),(x,y) -> (u,x),(v,y); require both
            // new edges simple and absent.
            if u == x
                || v == y
                || present.get(&norm(u, x)).copied().unwrap_or(0) > 0
                || present.get(&norm(v, y)).copied().unwrap_or(0) > 0
                || norm(u, x) == norm(v, y)
            {
                continue;
            }
            // Apply the swap.
            for old in [(u, v), (x, y)] {
                if old.0 != old.1 {
                    let e = present.get_mut(&norm(old.0, old.1)).expect("tracked");
                    *e -= 1;
                    if *e == 0 {
                        present.remove(&norm(old.0, old.1));
                    }
                } else {
                    // Self-loops were recorded under norm(u,u) too.
                    let e = present.get_mut(&norm(old.0, old.1)).expect("tracked");
                    *e -= 1;
                    if *e == 0 {
                        present.remove(&norm(old.0, old.1));
                    }
                }
            }
            *present.entry(norm(u, x)).or_insert(0) += 1;
            *present.entry(norm(v, y)).or_insert(0) += 1;
            pairs[i] = (u, x);
            pairs[j] = (v, y);
        }
        panic!("edge-swap repair failed to converge for a {d}-regular graph on {n} nodes");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn complete_graph_shape() {
        let g = Graph::complete(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 10);
        for u in 0..5 {
            assert_eq!(g.degree(u), 4);
            assert!(!g.neighbors(u).contains(&(u as u32)));
        }
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_and_path_degrees() {
        let c = Graph::cycle(6);
        assert!(c.is_connected());
        assert!((0..6).all(|u| c.degree(u) == 2));
        let p = Graph::path(6);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(5), 1);
        assert!((1..5).all(|u| p.degree(u) == 2));
    }

    #[test]
    fn star_shape() {
        let s = Graph::star(7);
        assert_eq!(s.degree(0), 6);
        assert!((1..7).all(|u| s.degree(u) == 1));
        assert!(s.is_connected());
    }

    #[test]
    fn torus_is_4_regular() {
        let t = Graph::torus(4, 5);
        assert_eq!(t.num_nodes(), 20);
        assert!((0..20).all(|u| t.degree(u) == 4));
        assert_eq!(t.num_edges(), 40);
        assert!(t.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let h = Graph::hypercube(4);
        assert_eq!(h.num_nodes(), 16);
        assert!((0..16).all(|u| h.degree(u) == 4));
        assert_eq!(h.num_edges(), 32);
        assert!(h.is_connected());
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = Graph::random_regular(50, 4, &mut rng);
        assert!((0..50).all(|u| g.degree(u) == 4));
        assert_eq!(g.num_edges(), 100);
        // Simplicity is enforced by from_edges' duplicate check.
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = Pcg64::seed_from_u64(2);
        let empty = Graph::gnp(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        assert!(!empty.is_connected());
        let full = Graph::gnp(10, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        let g = Graph::cycle(10);
        let mut rng = Pcg64::seed_from_u64(3);
        for u in 0..10 {
            for _ in 0..20 {
                let v = g.random_neighbor(u, &mut rng);
                assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Graph::from_edges(3, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_rejected() {
        Graph::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "no neighbors")]
    fn isolated_node_random_neighbor_panics() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut rng = Pcg64::seed_from_u64(4);
        g.random_neighbor(2, &mut rng);
    }
}
