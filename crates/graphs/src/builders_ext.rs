//! Additional graph builders for the topology experiments: preferential
//! attachment (scale-free), complete binary trees, and the lollipop graph
//! (the classical slow-mixing worst case).

use rand::Rng;

use crate::graph::Graph;

impl Graph {
    /// Barabási–Albert preferential attachment: starts from a clique on
    /// `m + 1` nodes; each new node attaches to `m` distinct existing
    /// nodes chosen with probability proportional to degree.
    ///
    /// # Panics
    /// Panics if `n ≤ m` or `m == 0`.
    pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(m >= 1, "attachment count must be positive");
        assert!(n > m, "need more nodes than the attachment count");
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Seed clique on m+1 nodes.
        for u in 0..=m as u32 {
            for v in (u + 1)..=m as u32 {
                edges.push((u, v));
            }
        }
        // Degree-proportional sampling via the edge-endpoint trick: a
        // uniform endpoint of a uniform existing edge is degree-biased.
        for new in (m + 1)..n {
            let mut targets = std::collections::HashSet::with_capacity(m);
            while targets.len() < m {
                let &(a, b) = &edges[rng.gen_range(0..edges.len())];
                let pick = if rng.gen::<bool>() { a } else { b };
                targets.insert(pick);
            }
            for t in targets {
                edges.push((t, new as u32));
            }
        }
        Self::from_edges(n, &edges)
    }

    /// The complete binary tree with `n` nodes (node 0 the root; node `i`
    /// has children `2i+1`, `2i+2`).
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn binary_tree(n: usize) -> Self {
        assert!(n >= 2, "a tree needs at least two nodes");
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| ((v - 1) / 2, v)).collect();
        Self::from_edges(n, &edges)
    }

    /// The lollipop graph: a clique on `clique` nodes with a path of
    /// `tail` extra nodes hanging off node 0 — the classic slow-mixing
    /// example.
    ///
    /// # Panics
    /// Panics if `clique < 3` or `tail < 1`.
    pub fn lollipop(clique: usize, tail: usize) -> Self {
        assert!(clique >= 3, "need a clique of at least 3");
        assert!(tail >= 1, "need a tail");
        let n = clique + tail;
        let mut edges = Vec::new();
        for u in 0..clique as u32 {
            for v in (u + 1)..clique as u32 {
                edges.push((u, v));
            }
        }
        // Path: 0 - clique - clique+1 - ... - n-1.
        let mut prev = 0u32;
        for v in clique as u32..n as u32 {
            edges.push((prev, v));
            prev = v;
        }
        Self::from_edges(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn preferential_attachment_shape() {
        let mut rng = Pcg64::seed_from_u64(1);
        let g = Graph::preferential_attachment(100, 3, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.is_connected());
        // Seed clique C(4,2) = 6 edges; every later node attaches 3 more.
        assert_eq!(g.num_edges(), 6 + (100 - 4) * 3);
        // Min degree is m; hubs are much larger.
        let degrees: Vec<usize> = (0..100).map(|u| g.degree(u)).collect();
        assert!(degrees.iter().all(|&d| d >= 3));
        assert!(*degrees.iter().max().expect("nodes") >= 10, "a scale-free hub should emerge");
    }

    #[test]
    fn binary_tree_structure() {
        let g = Graph::binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_connected());
        assert_eq!(g.degree(0), 2); // root
        assert_eq!(g.degree(3), 1); // leaf
        assert_eq!(g.neighbors(1), &[0, 3, 4]);
    }

    #[test]
    fn lollipop_structure() {
        let g = Graph::lollipop(5, 3);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 10 + 3);
        assert!(g.is_connected());
        assert_eq!(g.degree(7), 1, "tail end is a leaf");
        assert_eq!(g.degree(0), 5, "clique node 0 carries the tail");
    }

    #[test]
    fn lollipop_mixes_slower_than_clique() {
        use crate::props::spectral_gap_estimate;
        let lolli = Graph::lollipop(16, 16);
        let clique = Graph::complete(32);
        let g_l = spectral_gap_estimate(&lolli, 600);
        let g_c = spectral_gap_estimate(&clique, 600);
        assert!(g_l < g_c / 4.0, "lollipop ({g_l}) should mix far slower than K_32 ({g_c})");
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn tiny_pa_panics() {
        let mut rng = Pcg64::seed_from_u64(2);
        Graph::preferential_attachment(3, 3, &mut rng);
    }
}
