//! Structural graph properties: degree statistics and a spectral-gap
//! estimate.
//!
//! The related-work bounds the paper cites are parameterized by spectral
//! quantities — \[CEOR13\] bounds coalescing time by `O(1/μ · (log⁴n + ρ))`
//! where `μ` is the spectral gap — so the harness reports the estimated gap
//! alongside measured consensus times on non-complete graphs.

use crate::graph::Graph;

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Average degree.
    pub avg: f64,
}

/// Computes degree statistics.
///
/// # Panics
/// Panics on the empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.num_nodes();
    assert!(n > 0, "empty graph has no degree statistics");
    let mut min = usize::MAX;
    let mut max = 0;
    let mut total = 0usize;
    for u in 0..n {
        let d = g.degree(u);
        min = min.min(d);
        max = max.max(d);
        total += d;
    }
    DegreeStats { min, max, avg: total as f64 / n as f64 }
}

/// Estimates the spectral gap `1 − λ₂` of the lazy random-walk matrix
/// `(I + D⁻¹A)/2` by power iteration with deflation of the stationary
/// distribution.
///
/// The lazy walk makes the spectrum non-negative so the power iteration
/// converges to the second-largest eigenvalue rather than oscillating on
/// bipartite graphs. Returns a value in `[0, 1]`; larger means better
/// expansion. `iters` power-iteration steps are performed (200 is plenty
/// for the sizes used in tests).
///
/// # Panics
/// Panics if the graph has an isolated node (the walk is undefined).
pub fn spectral_gap_estimate(g: &Graph, iters: usize) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "need at least two nodes");
    let degs: Vec<f64> = (0..n)
        .map(|u| {
            let d = g.degree(u);
            assert!(d > 0, "isolated node {u}");
            d as f64
        })
        .collect();
    let two_m: f64 = degs.iter().sum();
    // Stationary distribution π_u = d_u / 2m. Deflate components along π
    // in the d-weighted inner product: <x, 1>_π = Σ π_u x_u.
    let mut x: Vec<f64> = (0..n).map(|u| ((u * 2654435761) % 1000) as f64 / 1000.0 - 0.5).collect();
    let deflate = |x: &mut [f64]| {
        let proj: f64 = x.iter().zip(&degs).map(|(xi, d)| xi * d).sum::<f64>() / two_m;
        for xi in x.iter_mut() {
            *xi -= proj;
        }
    };
    deflate(&mut x);
    let mut lambda = 0.0;
    let mut y = vec![0.0; n];
    for _ in 0..iters {
        // y = (x + P x)/2 where (P x)_u = avg of x over neighbors of u.
        for u in 0..n {
            let s: f64 = g.neighbors(u).iter().map(|&v| x[v as usize]).sum();
            y[u] = 0.5 * (x[u] + s / degs[u]);
        }
        deflate(&mut y);
        // Rayleigh-style estimate in the π-weighted norm.
        let norm: f64 = y.iter().zip(&degs).map(|(v, d)| v * v * d).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 1.0; // x was (numerically) entirely stationary: gap is large
        }
        let old_norm: f64 = x.iter().zip(&degs).map(|(v, d)| v * v * d).sum::<f64>().sqrt();
        lambda = norm / old_norm;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    // λ here estimates the lazy walk's λ₂ ∈ [0,1]; the non-lazy gap is
    // 1 − λ₂(non-lazy) = 2·(1 − λ₂(lazy)).
    (2.0 * (1.0 - lambda)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_stats_complete() {
        let s = degree_stats(&Graph::complete(8));
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
        assert!((s.avg - 7.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&Graph::star(9));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
        assert!((s.avg - 2.0 * 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_has_large_gap() {
        // Non-lazy λ₂(K_n) = −1/(n−1); the walk gap is 1 − |small| ≈ 1.
        let gap = spectral_gap_estimate(&Graph::complete(16), 300);
        assert!(gap > 0.9, "complete-graph gap {gap} should be near 1");
    }

    #[test]
    fn cycle_has_small_gap() {
        let gap = spectral_gap_estimate(&Graph::cycle(64), 500);
        // λ₂(C_n) = cos(2π/n): gap = 1 − cos(2π/64) ≈ 0.0048.
        assert!(gap < 0.05, "cycle gap {gap} should be tiny");
        assert!(gap > 0.0005, "cycle gap {gap} should be positive");
    }

    #[test]
    fn expander_beats_cycle() {
        use rand::SeedableRng;
        let mut rng = symbreak_sim::rng::Pcg64::seed_from_u64(1);
        let expander = Graph::random_regular(64, 6, &mut rng);
        let gap_exp = spectral_gap_estimate(&expander, 500);
        let gap_cyc = spectral_gap_estimate(&Graph::cycle(64), 500);
        assert!(
            gap_exp > 4.0 * gap_cyc,
            "random 6-regular ({gap_exp}) should far out-expand the cycle ({gap_cyc})"
        );
    }

    #[test]
    fn hypercube_gap_matches_theory() {
        // Non-lazy walk on the d-cube: λ₂ = 1 − 2/d, gap = 2/d.
        let d = 6;
        let gap = spectral_gap_estimate(&Graph::hypercube(d), 800);
        assert!(
            (gap - 2.0 / d as f64).abs() < 0.02,
            "hypercube gap {gap} vs theory {}",
            2.0 / d as f64
        );
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_node_panics() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        spectral_gap_estimate(&g, 10);
    }
}
