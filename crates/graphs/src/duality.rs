//! The exact Voter/coalescence duality coupling — Lemma 4 / Figure 1 as
//! executable code.
//!
//! Materialize the arrow field `Y_t(u)` (the uniform neighbor node `u`
//! would pull from at time `t`). Running *coalescing random walks forward*
//! over `Y_0, Y_1, …` and the *Voter process over the same arrows in
//! reverse order* yields, deterministically and per-realization,
//!
//! ```text
//! #opinions after a τ-round Voter run  =  #walks after τ coalescence steps
//! ```
//!
//! for every `τ`, hence `T^k_V = T^k_C` exactly (not merely in
//! distribution). Experiment E6 exercises this on complete and general
//! graphs.

use rand::Rng;

use crate::graph::Graph;

/// A materialized arrow field: `arrows[t][u]` is the node `u` pulls from
/// (walk on `u` moves to) at time `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualityCoupling {
    arrows: Vec<Vec<u32>>,
    n: usize,
}

impl DualityCoupling {
    /// Draws `steps` rounds of arrows for `graph`.
    pub fn generate<R: Rng + ?Sized>(graph: &Graph, steps: usize, rng: &mut R) -> Self {
        let n = graph.num_nodes();
        let arrows =
            (0..steps).map(|_| (0..n).map(|u| graph.random_neighbor(u, rng)).collect()).collect();
        Self { arrows, n }
    }

    /// Draws arrows until the coalescing walks (run forward over them)
    /// first drop to at most `k` walks; returns the coupling together with
    /// the coalescence time `T^k_C`, or `None` if `max_steps` elapsed.
    pub fn generate_until_coalesced<R: Rng + ?Sized>(
        graph: &Graph,
        k: usize,
        max_steps: usize,
        rng: &mut R,
    ) -> Option<(Self, u64)> {
        let n = graph.num_nodes();
        let mut arrows: Vec<Vec<u32>> = Vec::new();
        let mut walk_nodes: Vec<u32> = (0..n as u32).collect();
        let mut t = 0u64;
        while walk_nodes.len() > k {
            if arrows.len() >= max_steps {
                return None;
            }
            let field: Vec<u32> = (0..n).map(|u| graph.random_neighbor(u, rng)).collect();
            for w in walk_nodes.iter_mut() {
                *w = field[*w as usize];
            }
            walk_nodes.sort_unstable();
            walk_nodes.dedup();
            arrows.push(field);
            t += 1;
        }
        Some((Self { arrows, n }, t))
    }

    /// Number of materialized rounds.
    pub fn steps(&self) -> usize {
        self.arrows.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of surviving walks after `tau` coalescence steps over
    /// `Y_0 … Y_{τ−1}` (walks start on every node).
    ///
    /// # Panics
    /// Panics if `tau > self.steps()`.
    pub fn walks_after(&self, tau: usize) -> usize {
        assert!(tau <= self.arrows.len(), "tau exceeds materialized steps");
        let mut nodes: Vec<u32> = (0..self.n as u32).collect();
        for field in &self.arrows[..tau] {
            for w in nodes.iter_mut() {
                *w = field[*w as usize];
            }
            nodes.sort_unstable();
            nodes.dedup();
        }
        nodes.len()
    }

    /// Number of distinct opinions after a `tau`-round Voter run over the
    /// *reversed* arrows (`round s` pulls along `Y_{τ−s}`), starting from
    /// pairwise-distinct opinions.
    ///
    /// This simulates Voter semantics directly — node `u` adopts the
    /// opinion of the node it pulls from — providing an independent check
    /// of the duality rather than reusing the walk recursion.
    ///
    /// # Panics
    /// Panics if `tau > self.steps()`.
    pub fn voter_opinions_after(&self, tau: usize) -> usize {
        assert!(tau <= self.arrows.len(), "tau exceeds materialized steps");
        // opinions[u] = opinion of node u; start: all distinct.
        let mut opinions: Vec<u32> = (0..self.n as u32).collect();
        let mut next = opinions.clone();
        for s in 1..=tau {
            let field = &self.arrows[tau - s];
            for u in 0..self.n {
                next[u] = opinions[field[u] as usize];
            }
            std::mem::swap(&mut opinions, &mut next);
        }
        let mut distinct = opinions;
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    }

    /// Checks the per-`τ` duality identity for every `τ ≤ steps`.
    pub fn verify_identity(&self) -> bool {
        (0..=self.arrows.len()).all(|tau| self.walks_after(tau) == self.voter_opinions_after(tau))
    }
}

/// The Voter hitting time `T^k_V` extracted from the coupling: the first
/// `τ` whose τ-round Voter run has at most `k` opinions.
///
/// By Lemma 4 this equals the coalescence time over the same arrows; the
/// function computes it from the Voter side only.
pub fn voter_time_from_coupling(coupling: &DualityCoupling, k: usize) -> Option<u64> {
    (0..=coupling.steps()).find(|&tau| coupling.voter_opinions_after(tau) <= k).map(|t| t as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn identity_holds_on_complete_graph() {
        let g = Graph::complete(24);
        let mut rng = Pcg64::seed_from_u64(1);
        let (coupling, t) =
            DualityCoupling::generate_until_coalesced(&g, 1, 100_000, &mut rng).expect("coalesces");
        assert!(t > 0);
        assert!(coupling.verify_identity(), "T^k_V = T^k_C must hold per-realization");
    }

    #[test]
    fn identity_holds_on_cycle_and_torus() {
        let mut rng = Pcg64::seed_from_u64(2);
        for g in [Graph::cycle(16), Graph::torus(4, 4)] {
            let (coupling, _) =
                DualityCoupling::generate_until_coalesced(&g, 2, 1_000_000, &mut rng)
                    .expect("coalesces to 2");
            assert!(coupling.verify_identity());
        }
    }

    #[test]
    fn identity_holds_on_random_regular() {
        let mut rng = Pcg64::seed_from_u64(3);
        let g = Graph::random_regular(20, 3, &mut rng);
        let (coupling, _) = DualityCoupling::generate_until_coalesced(&g, 1, 1_000_000, &mut rng)
            .expect("coalesces");
        assert!(coupling.verify_identity());
    }

    #[test]
    fn voter_time_matches_coalescence_time() {
        let g = Graph::complete(32);
        for seed in 10..20 {
            let mut rng = Pcg64::seed_from_u64(seed);
            for k in [1usize, 3, 8] {
                let mut rng2 = rng.clone();
                let (coupling, t_c) =
                    DualityCoupling::generate_until_coalesced(&g, k, 100_000, &mut rng2)
                        .expect("coalesces");
                let t_v = voter_time_from_coupling(&coupling, k).expect("voter reaches k");
                assert_eq!(t_v, t_c, "seed {seed}, k={k}: T^k_V != T^k_C");
            }
            rng.next_f64();
        }
    }

    #[test]
    fn zero_rounds_have_n_of_each() {
        let g = Graph::complete(9);
        let mut rng = Pcg64::seed_from_u64(4);
        let coupling = DualityCoupling::generate(&g, 5, &mut rng);
        assert_eq!(coupling.walks_after(0), 9);
        assert_eq!(coupling.voter_opinions_after(0), 9);
        assert_eq!(coupling.steps(), 5);
        assert_eq!(coupling.num_nodes(), 9);
    }

    #[test]
    fn walk_counts_non_increasing_in_tau() {
        let g = Graph::complete(16);
        let mut rng = Pcg64::seed_from_u64(5);
        let coupling = DualityCoupling::generate(&g, 30, &mut rng);
        let mut prev = usize::MAX;
        for tau in 0..=30 {
            let w = coupling.walks_after(tau);
            assert!(w <= prev);
            prev = w;
        }
    }

    #[test]
    fn cap_returns_none() {
        let g = Graph::cycle(32);
        let mut rng = Pcg64::seed_from_u64(6);
        assert!(DualityCoupling::generate_until_coalesced(&g, 1, 1, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "tau exceeds")]
    fn tau_out_of_range_panics() {
        let g = Graph::complete(4);
        let mut rng = Pcg64::seed_from_u64(7);
        DualityCoupling::generate(&g, 2, &mut rng).walks_after(3);
    }
}
