//! Empirical CDFs and stochastic-order tests.
//!
//! Lemma 2 of the paper asserts `T^κ_{3M}(c) ≤_st T^κ_V(c)`: for every
//! threshold `t`, `Pr[T_{3M} > t] ≤ Pr[T_V > t]`. Empirically this means
//! the ECDF of the 3-Majority hitting times lies (weakly) *above* the ECDF
//! of the Voter hitting times everywhere. [`StochasticOrder`] quantifies
//! how badly that relation is violated by two samples.

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample.
    ///
    /// # Panics
    /// Panics if `data` is empty or contains NaN.
    pub fn new(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot build an ECDF from an empty sample");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF sample"));
        Self { sorted }
    }

    /// Builds an ECDF from integer counts (e.g. hitting times in rounds).
    pub fn of_counts(data: &[u64]) -> Self {
        let v: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        Self::new(&v)
    }

    /// `F(x) = (#samples ≤ x) / n`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The underlying sorted sample.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// All distinct jump points of either this ECDF or `other`.
    fn joint_support(&self, other: &Ecdf) -> Vec<f64> {
        let mut pts: Vec<f64> = self.sorted.iter().chain(other.sorted.iter()).copied().collect();
        pts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        pts.dedup();
        pts
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup_x |F(x) − G(x)|`.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        self.joint_support(other)
            .iter()
            .map(|&x| (self.eval(x) - other.eval(x)).abs())
            .fold(0.0, f64::max)
    }
}

/// Result of testing first-order stochastic dominance between two samples.
///
/// "X is stochastically dominated by Y" (`X ≤_st Y`) means
/// `F_X(t) ≥ F_Y(t)` for all `t`: X's CDF sits above Y's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticOrder {
    /// Largest violation of `F_X(t) ≥ F_Y(t)` (how far X's CDF dips below
    /// Y's anywhere); `0` when dominance holds exactly in the samples.
    pub max_violation: f64,
    /// Largest margin `F_X(t) − F_Y(t)` in favour of dominance.
    pub max_margin: f64,
    /// Two-sample KS statistic between the samples.
    pub ks: f64,
}

impl StochasticOrder {
    /// Tests whether sample `xs` is stochastically dominated by sample `ys`
    /// (`X ≤_st Y`, i.e. X tends to be smaller).
    pub fn test(xs: &[f64], ys: &[f64]) -> Self {
        let fx = Ecdf::new(xs);
        let fy = Ecdf::new(ys);
        let mut max_violation: f64 = 0.0;
        let mut max_margin: f64 = 0.0;
        for &t in fx.joint_support(&fy).iter() {
            let diff = fx.eval(t) - fy.eval(t); // want >= 0 everywhere
            if diff < 0.0 {
                max_violation = max_violation.max(-diff);
            } else {
                max_margin = max_margin.max(diff);
            }
        }
        let ks = fx.ks_statistic(&fy);
        Self { max_violation, max_margin, ks }
    }

    /// Integer-sample convenience wrapper for [`StochasticOrder::test`].
    pub fn test_counts(xs: &[u64], ys: &[u64]) -> Self {
        let vx: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        let vy: Vec<f64> = ys.iter().map(|&y| y as f64).collect();
        Self::test(&vx, &vy)
    }

    /// Whether dominance holds up to sampling noise: violations must not
    /// exceed `tol` (e.g. a KS-style `c·sqrt((n+m)/(n·m))` threshold).
    pub fn holds_within(&self, tol: f64) -> bool {
        self.max_violation <= tol
    }
}

/// Two-sided KS rejection threshold at confidence parameter `c_alpha`
/// (1.36 for α=0.05, 1.63 for α=0.01) for sample sizes `n` and `m`.
pub fn ks_threshold(n: usize, m: usize, c_alpha: f64) -> f64 {
    c_alpha * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Mann–Whitney U statistic of `xs` against `ys`: the number of pairs
/// `(x, y)` with `x < y`, counting ties as ½.
///
/// Large values (relative to `n·m/2`) indicate `xs` tends to be smaller.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> f64 {
    let mut u = 0.0;
    for &x in xs {
        for &y in ys {
            if x < y {
                u += 1.0;
            } else if x == y {
                u += 0.5;
            }
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_step_values() {
        let f = Ecdf::new(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(f.eval(0.5), 0.0);
        assert_eq!(f.eval(1.0), 0.25);
        assert_eq!(f.eval(2.0), 0.75);
        assert_eq!(f.eval(3.0), 0.75);
        assert_eq!(f.eval(4.0), 1.0);
        assert_eq!(f.eval(100.0), 1.0);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn ks_of_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(Ecdf::new(&a).ks_statistic(&Ecdf::new(&a)), 0.0);
    }

    #[test]
    fn ks_of_disjoint_samples_is_one() {
        let a = Ecdf::new(&[1.0, 2.0]);
        let b = Ecdf::new(&[10.0, 20.0]);
        assert_eq!(a.ks_statistic(&b), 1.0);
    }

    #[test]
    fn dominance_of_shifted_samples() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 4.0, 5.0, 6.0];
        let ord = StochasticOrder::test(&xs, &ys);
        assert_eq!(ord.max_violation, 0.0);
        assert!(ord.max_margin > 0.0);
        assert!(ord.holds_within(0.0));
        // The reverse direction is clearly violated.
        let rev = StochasticOrder::test(&ys, &xs);
        assert!(rev.max_violation > 0.0);
        assert!(!rev.holds_within(0.1));
    }

    #[test]
    fn dominance_is_reflexive() {
        let xs = [5.0, 7.0, 9.0];
        let ord = StochasticOrder::test(&xs, &xs);
        assert_eq!(ord.max_violation, 0.0);
        assert_eq!(ord.ks, 0.0);
    }

    #[test]
    fn test_counts_matches_test() {
        let a = [1u64, 2, 3];
        let b = [2u64, 3, 4];
        let c1 = StochasticOrder::test_counts(&a, &b);
        let c2 = StochasticOrder::test(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]);
        assert_eq!(c1, c2);
    }

    #[test]
    fn ks_threshold_shrinks_with_samples() {
        assert!(ks_threshold(100, 100, 1.36) < ks_threshold(10, 10, 1.36));
    }

    #[test]
    fn mann_whitney_balanced() {
        // Identical samples: every pair ties at u = n*m/2.
        let a = [1.0, 2.0];
        assert_eq!(mann_whitney_u(&a, &a), 2.0);
        // xs strictly smaller: u = n*m.
        assert_eq!(mann_whitney_u(&[0.0, 0.0], &[1.0, 1.0]), 4.0);
        // xs strictly larger: u = 0.
        assert_eq!(mann_whitney_u(&[2.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_ecdf_panics() {
        Ecdf::new(&[]);
    }
}
