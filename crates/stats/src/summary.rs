//! Sample summaries and streaming moments.

/// Summary statistics of a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    var: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or contains NaN.
    pub fn of(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        Self { n, mean, var, min: sorted[0], max: sorted[n - 1], sorted }
    }

    /// Convenience constructor from integer-valued samples (e.g. round
    /// counts).
    pub fn of_counts(data: &[u64]) -> Self {
        let v: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        Self::of(&v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sample is empty (never true for a constructed summary).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        self.var
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Quantile by linear interpolation of the order statistics,
    /// `q ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `q ∉ [0,1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0,1]");
        if self.n == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (the 0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Normal-approximation confidence interval for the mean at `z` standard
    /// errors (z = 1.96 for ~95%).
    pub fn mean_ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_err();
        (self.mean - half, self.mean + half)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} max={:.4}",
            self.n,
            self.mean,
            self.std_dev(),
            self.min,
            self.median(),
            self.max
        )
    }
}

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable one-pass computation; useful when trajectories are too
/// long to store.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased running variance (0 until two observations arrive).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.quantile(1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.quantile(0.3), 42.0);
    }

    #[test]
    fn ci_is_symmetric_around_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.mean_ci(1.96);
        assert!((((lo + hi) / 2.0) - s.mean()).abs() < 1e-12);
        assert!(hi > lo);
    }

    #[test]
    fn of_counts_converts() {
        let s = Summary::of_counts(&[1, 2, 3]);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn welford_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        w.extend(data.iter().copied());
        let s = Summary::of(&data);
        assert!((w.mean() - s.mean()).abs() < 1e-12);
        assert!((w.variance() - s.variance()).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut wa = Welford::new();
        wa.extend(a.iter().copied());
        let mut wb = Welford::new();
        wb.extend(b.iter().copied());
        wa.merge(&wb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let s = Summary::of(&all);
        assert!((wa.mean() - s.mean()).abs() < 1e-12);
        assert!((wa.variance() - s.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w = Welford::new();
        w.push(5.0);
        let empty = Welford::new();
        let mut w2 = w;
        w2.merge(&empty);
        assert_eq!(w2, w);
        let mut e = Welford::new();
        e.merge(&w);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!(!format!("{s}").is_empty());
    }
}
