//! Table rendering for experiment-harness output.
//!
//! Each experiment binary prints the series/table it regenerates in both a
//! human-readable Markdown form and machine-readable CSV. Rendering is
//! hand-rolled to avoid pulling in formatting dependencies.

/// A simple column-oriented table builder.
///
/// # Example
/// ```
/// use symbreak_stats::Table;
/// let mut t = Table::new(vec!["n", "rounds"]);
/// t.row(vec!["1024".into(), "388".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header width");
        self.rows.push(cells);
        self
    }

    /// Appends a row of displayable values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Renders as a GitHub-flavoured Markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        out.push('|');
        for (h, w) in self.headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push('|');
            for (c, w) in r.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        Self::push_csv_row(&mut out, &self.headers);
        for r in &self.rows {
            Self::push_csv_row(&mut out, r);
        }
        out
    }

    fn push_csv_row(out: &mut String, cells: &[String]) {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                out.push('"');
                out.push_str(&c.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(c);
            }
        }
        out.push('\n');
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        widths
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// Formats a float compactly for table cells (4 significant-ish digits).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 && v.abs() < 1e9 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["30".into(), "40".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| a"));
        assert!(lines[1].starts_with("|--"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["plain".into()]);
        t.row(vec!["with,comma".into()]);
        t.row(vec!["with\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("plain\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::new(vec!["n"]);
        t.row_display(vec![42]);
        assert_eq!(t.to_csv(), "n\n42\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn fmt_f64_regimes() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(3.5), "3.5000");
        assert!(fmt_f64(1.0e6).contains('e'));
        assert!(fmt_f64(1.0e-5).contains('e'));
    }

    #[test]
    fn display_matches_markdown() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["v".into()]);
        assert_eq!(format!("{t}"), t.to_markdown());
    }
}
