#![warn(missing_docs)]
//! Statistics for simulation studies.
//!
//! The paper's claims are "with high probability" statements about hitting
//! times and stochastic-dominance statements about their distributions.
//! This crate provides the estimation machinery the experiment harness uses
//! to validate those claims from Monte-Carlo samples:
//!
//! * [`summary`] — means, variances, quantiles, confidence intervals, and a
//!   streaming (Welford) accumulator.
//! * [`regression`] — ordinary least squares and log–log power-law exponent
//!   fits (used to confirm e.g. the `n^{3/4}` scaling of Theorem 4).
//! * [`ecdf`] — empirical CDFs, two-sample Kolmogorov–Smirnov statistics,
//!   first-order stochastic dominance tests, and the Mann–Whitney U
//!   statistic (used for the `T^κ_{3M} ≤_st T^κ_V` claim of Lemma 2).
//! * [`infer`] — chi-square goodness of fit, bootstrap CIs, Wilson
//!   intervals.
//! * [`histogram`] — fixed-width histograms with ASCII rendering.
//! * [`table`] — fixed-width and Markdown table rendering for harness
//!   output.

pub mod ecdf;
pub mod histogram;
pub mod infer;
pub mod regression;
pub mod summary;
pub mod table;

pub use ecdf::{Ecdf, StochasticOrder};
pub use histogram::Histogram;
pub use infer::{bootstrap_ci, chi_square_gof, wilson_interval, ChiSquare};
pub use regression::{fit_power_law, linear_fit, LinearFit, PowerLawFit};
pub use summary::{Summary, Welford};
pub use table::Table;
