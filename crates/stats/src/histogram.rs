//! Fixed-width histograms with text rendering, for quick distribution
//! inspection in the experiment harness.

/// A histogram over `[lo, hi)` with equal-width bins (values outside the
//  range are clamped into the edge bins).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(lo < hi, "need lo < hi");
        Self { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Builds a histogram spanning the sample's min..max.
    ///
    /// # Panics
    /// Panics on an empty sample or NaN.
    pub fn of(data: &[f64], bins: usize) -> Self {
        assert!(!data.is_empty(), "cannot build a histogram of nothing");
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo.is_finite() && hi.is_finite(), "NaN/inf in sample");
        let mut h = Self::new(lo, if hi > lo { hi } else { lo + 1.0 }, bins);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Adds one observation (clamped into the edge bins).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `[lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// ASCII bar rendering, one line per bin, bars scaled to `width`
    /// characters at the modal bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("[{lo:>10.2}, {hi:>10.2}) | {c:>7} | {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.5); // bin 0
        h.add(3.9); // bin 1
        h.add(9.9); // bin 4
        assert_eq!(h.counts(), &[1, 1, 0, 0, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(42.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn of_spans_the_sample() {
        let h = Histogram::of(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(h.total(), 4);
        let (lo, _) = h.bin_bounds(0);
        assert_eq!(lo, 1.0);
    }

    #[test]
    fn constant_sample_handled() {
        let h = Histogram::of(&[2.0, 2.0, 2.0], 3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..8 {
            h.add(0.5);
        }
        h.add(1.5);
        let s = h.render(8);
        assert!(s.contains("########"), "modal bin gets full width:\n{s}");
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_bounds_panic() {
        Histogram::new(2.0, 1.0, 3);
    }
}
