//! Least-squares fits, including the log–log power-law fit used to measure
//! scaling exponents (e.g. the `n^{3/4}` consensus-time growth of
//! Theorem 4).

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least-squares fit of `y` on `x`.
///
/// # Panics
/// Panics if fewer than two points are given, lengths differ, or all `x`
/// are identical.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx).powi(2)).sum();
    assert!(sxx > 0.0, "x values must not all be identical");
    let sxy: f64 = x.iter().zip(y).map(|(u, v)| (u - mx) * (v - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|v| (v - my).powi(2)).sum();
    let ss_res: f64 = x.iter().zip(y).map(|(u, v)| (v - (slope * u + intercept)).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    LinearFit { slope, intercept, r_squared }
}

/// Result of fitting `y ≈ c · x^exponent` by OLS in log–log space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent.
    pub exponent: f64,
    /// Fitted multiplicative constant `c`.
    pub constant: f64,
    /// R² of the underlying log–log linear fit.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.constant * x.powf(self.exponent)
    }
}

/// Fits a power law `y = c·x^a` through positive data by linear regression
/// on `(ln x, ln y)`.
///
/// # Panics
/// Panics if any coordinate is non-positive, lengths differ, or fewer than
/// two points are given.
pub fn fit_power_law(x: &[f64], y: &[f64]) -> PowerLawFit {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    assert!(
        x.iter().chain(y.iter()).all(|&v| v > 0.0),
        "power-law fit requires strictly positive data"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let fit = linear_fit(&lx, &ly);
    PowerLawFit { exponent: fit.slope, constant: fit.intercept.exp(), r_squared: fit.r_squared }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 1.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_reasonable_r2() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let y = [1.1, 1.9, 3.2, 3.8, 5.1, 5.9];
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 1.0).abs() < 0.1);
        assert!(fit.r_squared > 0.98);
    }

    #[test]
    fn power_law_exact_recovery() {
        let x = [2.0f64, 4.0, 8.0, 16.0, 32.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v.powf(0.75)).collect();
        let fit = fit_power_law(&x, &y);
        assert!((fit.exponent - 0.75).abs() < 1e-10);
        assert!((fit.constant - 3.0).abs() < 1e-9);
        assert!((fit.predict(64.0) - 3.0 * 64.0_f64.powf(0.75)).abs() < 1e-7);
    }

    #[test]
    fn flat_data_r2_is_one_by_convention() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_law_rejects_nonpositive() {
        fit_power_law(&[1.0, 0.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
