//! Additional inference helpers: chi-square goodness of fit, bootstrap
//! confidence intervals, and Wilson score intervals for proportions.
//!
//! The sampler validation (chi-square against exact pmfs) and the
//! experiment harness (win-probability intervals, heavy-tailed
//! hitting-time CIs) use these.

/// Result of a chi-square goodness-of-fit computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The statistic `Σ (O − E)² / E` over the pooled bins.
    pub statistic: f64,
    /// Degrees of freedom (pooled bins − 1).
    pub dof: usize,
}

impl ChiSquare {
    /// Conservative acceptance check: a chi-square variable with `d`
    /// degrees of freedom has mean `d` and standard deviation `√(2d)`;
    /// accept when the statistic is within `z` standard deviations above
    /// the mean. (Avoids shipping a chi-square CDF; `z = 5` gives a
    /// false-rejection rate far below 1e-5.)
    pub fn within_sigma(&self, z: f64) -> bool {
        let d = self.dof as f64;
        self.statistic <= d + z * (2.0 * d).sqrt()
    }
}

/// Computes the chi-square statistic of observed counts against expected
/// counts, pooling adjacent bins until each pooled expected count is at
/// least `min_expected` (5 is customary).
///
/// # Panics
/// Panics if lengths differ, total expected mass is zero, or fewer than
/// two pooled bins remain.
pub fn chi_square_gof(observed: &[u64], expected: &[f64], min_expected: f64) -> ChiSquare {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(expected.iter().sum::<f64>() > 0.0, "expected mass must be positive");
    let mut statistic = 0.0;
    let mut bins = 0usize;
    let mut pooled_obs = 0.0;
    let mut pooled_exp = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        pooled_obs += o as f64;
        pooled_exp += e;
        if pooled_exp >= min_expected {
            statistic += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
            bins += 1;
            pooled_obs = 0.0;
            pooled_exp = 0.0;
        }
    }
    if pooled_exp > 0.0 {
        statistic += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
        bins += 1;
    }
    assert!(bins >= 2, "need at least two pooled bins");
    ChiSquare { statistic, dof: bins - 1 }
}

/// Percentile-bootstrap confidence interval for a statistic of a sample.
///
/// Resamples `data` with replacement `resamples` times (deterministically,
/// from `seed`), applies `stat`, and returns the `(α/2, 1 − α/2)`
/// percentile interval.
///
/// # Panics
/// Panics if `data` is empty, `resamples == 0`, or `alpha ∉ (0, 1)`.
pub fn bootstrap_ci<F>(data: &[f64], stat: F, resamples: usize, alpha: f64, seed: u64) -> (f64, f64)
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!data.is_empty(), "cannot bootstrap an empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
    // Minimal in-house SplitMix64 so this crate stays dependency-free.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = data.len();
    let mut stats: Vec<f64> = (0..resamples)
        .map(|_| {
            let resample: Vec<f64> = (0..n).map(|_| data[(next() % n as u64) as usize]).collect();
            stat(&resample)
        })
        .collect();
    stats.sort_by(|a, b| a.partial_cmp(b).expect("no NaN from stat"));
    let lo_idx = ((alpha / 2.0) * (resamples - 1) as f64).round() as usize;
    let hi_idx =
        (((1.0 - alpha / 2.0) * (resamples - 1) as f64).round() as usize).min(resamples - 1);
    (stats[lo_idx], stats[hi_idx])
}

/// Wilson score interval for a binomial proportion at `z` standard
/// deviations (`z = 1.96` for ~95%).
///
/// Well-behaved at the boundaries (0 or n successes), unlike the normal
/// approximation.
///
/// # Panics
/// Panics if `successes > trials` or `trials == 0`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_of_perfect_fit_is_zero() {
        let observed = [10u64, 20, 30, 40];
        let expected = [10.0, 20.0, 30.0, 40.0];
        let c = chi_square_gof(&observed, &expected, 5.0);
        assert_eq!(c.statistic, 0.0);
        assert_eq!(c.dof, 3);
        assert!(c.within_sigma(1.0));
    }

    #[test]
    fn chi_square_detects_gross_mismatch() {
        let observed = [100u64, 0, 0, 0];
        let expected = [25.0, 25.0, 25.0, 25.0];
        let c = chi_square_gof(&observed, &expected, 5.0);
        assert!(c.statistic > 100.0);
        assert!(!c.within_sigma(5.0));
    }

    #[test]
    fn chi_square_pools_small_bins() {
        // Tail bins with tiny expectations get pooled together.
        let observed = [50u64, 45, 3, 1, 1];
        let expected = [50.0, 45.0, 2.0, 2.0, 1.0];
        let c = chi_square_gof(&observed, &expected, 5.0);
        assert_eq!(c.dof, 2, "three tail bins pool into one");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chi_square_length_mismatch_panics() {
        chi_square_gof(&[1], &[1.0, 2.0], 5.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = bootstrap_ci(&data, mean, 500, 0.05, 7);
        let true_mean = 4.5;
        assert!(lo <= true_mean && true_mean <= hi, "[{lo}, {hi}] misses {true_mean}");
        assert!(hi - lo < 1.5, "interval [{lo}, {hi}] too wide");
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert_eq!(bootstrap_ci(&data, mean, 100, 0.1, 3), bootstrap_ci(&data, mean, 100, 0.1, 3));
    }

    #[test]
    fn wilson_interval_basic_properties() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // Boundary cases stay in [0,1] and exclude the impossible.
        let (lo0, hi0) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.4);
        let (lo1, hi1) = wilson_interval(20, 20, 1.96);
        assert_eq!(hi1, 1.0);
        assert!(lo1 > 0.6);
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let w = |n: u64| {
            let (lo, hi) = wilson_interval(n / 2, n, 1.96);
            hi - lo
        };
        assert!(w(1000) < w(100));
        assert!(w(100) < w(10));
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed")]
    fn wilson_rejects_impossible_counts() {
        wilson_interval(5, 4, 1.96);
    }
}
