//! Transport abstraction for the cluster wire: the same shard workers
//! and coordinators run over in-process channels or OS sockets.
//!
//! Two traits split the runtime from its plumbing:
//!
//! * [`Transport`] is the shard's view — send a data-plane message to a
//!   peer, receive the next one, report to the coordinator, block on
//!   the next control command.
//! * `CoordinatorLink` (crate-internal) is the coordinator's view —
//!   command a shard, receive the next report.
//!
//! Both backends account every message at its [`crate::codec`] frame
//! size, so the `bytes_sent`/`bytes_received` counters are comparable
//! across backends — and, per seed, *identical*: the realized message
//! sequence is deterministic (per-origin serving streams, report-
//! barrier lockstep), the codec is a pure function of the message, and
//! the channel backend never actually serializes (it moves the enums
//! and adds the would-be frame length), which is what keeps the default
//! path byte-identical to the pre-transport runtime. Handshake frames
//! (`Hello`/`Init`/`Ready`/`PeerHello`, socket backend only) are *not*
//! counted: they have no channel counterpart and are not part of the
//! per-round cost model.
//!
//! # Backends
//!
//! [`ChannelTransport`] is the default in-process path: `std::sync::mpsc`
//! channels exactly as before, one thread per shard under one
//! coordinator thread.
//!
//! The socket backend runs each shard as its **own OS process**
//! ([`spawn_shard_process`], [`shard_process_main`]) speaking length-
//! framed codec bytes over Unix domain sockets (or TCP, when the
//! configured address says so). Bring-up is a three-beat handshake —
//! every worker connects to the coordinator and says `Hello` with its
//! own listener address; the coordinator answers with the full `Init`
//! spec (partition, modes, seeds, fault plan, serialized rule, seed
//! body, the fleet's addresses); workers build the full peer mesh and
//! say `Ready` — after which rounds run through the exact same worker
//! and coordinator loops as the channel backend. Every socket has a
//! dedicated reader thread draining frames into an in-process queue,
//! so socket receive buffers never back up and the blocking exchange
//! loops cannot write-deadlock.
//!
//! # Disconnects
//!
//! A vanished peer process surfaces as
//! [`crate::StopReason::TransportLost`], never as a hang: the dead
//! process's sockets close, every live worker holds a reader thread on
//! one of them, so the EOF reaches everyone — workers abort their
//! round, exit, and cascade the EOF to the coordinator's report
//! readers, which fail the blocking `recv_report` and abort the run
//! like `TooManyFaults` (live shards get a best-effort Stop). Injected
//! [`FaultPlan`] faults are unrelated: they are *decisions* shared by
//! sender and receiver (never physical losses), so both backends
//! degrade identically under the same plan.

use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

use symbreak_core::rules::{
    HMajority, LazyVoter, ThreeMajority, ThreeMajorityAlt, TwoChoices, TwoMedian,
    UndecidedDynamics, Voter,
};
use symbreak_core::{Opinion, RoundStateMode, UpdateRule};

use crate::cluster::{ConsumeMode, ReportMode, ShardRepr, WireMode};
use crate::codec::{
    control_len, decode_control, decode_hello, decode_peer_hello, decode_report,
    decode_shard_message, decode_worker_init, encode_control, encode_hello, encode_peer_hello,
    encode_ready, encode_report, encode_shard_message, encode_worker_init, read_frame, report_len,
    shard_message_len, write_frame, FrameKind, Hello, WorkerInit,
};
use crate::fault::FaultPlan;
use crate::message::{Control, ReportBody, ShardMessage, ShardReport};
use crate::shard::{run_shard, Partition, ShardInit, ShardSpec};

/// The peer or coordinator on the other end of a transport is gone
/// (its process died, its socket closed). Never returned by injected
/// [`FaultPlan`] faults — those are shared decisions, not losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportLost;

impl std::fmt::Display for TransportLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport endpoint lost")
    }
}

impl std::error::Error for TransportLost {}

/// A shard's connection to its fleet: peers on the data plane, the
/// coordinator on the control plane.
///
/// Sends are infallible by signature: a backend that detects a broken
/// peer flags the loss internally and surfaces it from the next
/// receive, so the blocking exchange loops have exactly one error exit.
/// Byte counters are cumulative over the connection's lifetime and
/// count every message at its [`crate::codec`] frame size (whether or
/// not the backend physically serializes).
pub trait Transport {
    /// Queues one data-plane message to peer shard `dest` (self-sends
    /// allowed; they loop back without touching any socket but are
    /// counted like every other message).
    fn send(&mut self, dest: usize, msg: ShardMessage);
    /// Blocks for the next data-plane message.
    fn recv(&mut self) -> Result<ShardMessage, TransportLost>;
    /// Sends this shard's per-round report to the coordinator. A
    /// backend that serializes the report (and is therefore done with
    /// its body) returns the drained sparse-body buffer for the caller
    /// to pool; backends that hand the report over intact return
    /// `None`.
    fn send_report(&mut self, report: ShardReport) -> Option<Vec<(u32, u64)>>;
    /// Blocks for the next coordinator command.
    fn recv_control(&mut self) -> Result<Control, TransportLost>;
    /// Accounts a message the fault plan transmitted-and-lost: the
    /// frame bytes count as sent, nothing is delivered. Keeps the byte
    /// counters honest under injected drops, mirroring the entry
    /// accounting (see [`crate::message`]).
    fn count_lost(&mut self, msg: &ShardMessage);
    /// Accounts a report the fault plan transmitted-and-lost.
    fn count_lost_report(&mut self, report: &ShardReport);
    /// Cumulative frame bytes sent (data plane + reports).
    fn bytes_sent(&self) -> u64;
    /// Cumulative frame bytes received (data plane + control).
    fn bytes_received(&self) -> u64;
}

/// The coordinator's side of the fleet connection.
pub(crate) trait CoordinatorLink {
    /// Sends one control command to `shard`.
    fn send_control(&mut self, shard: usize, ctrl: Control) -> Result<(), TransportLost>;
    /// Blocks for the next shard report, from any shard.
    fn recv_report(&mut self) -> Result<ShardReport, TransportLost>;
    /// Cumulative control-frame bytes sent.
    fn bytes_sent(&self) -> u64;
    /// Cumulative report-frame bytes received.
    fn bytes_received(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Channel backend.
// ---------------------------------------------------------------------------

/// The default in-process backend: one `mpsc` inbox per shard, everyone
/// holding senders to everyone — the exact pre-transport topology, with
/// frame-length accounting bolted on. Messages are moved as enums
/// (never serialized), so this path is byte-identical per seed to the
/// pre-transport runtime.
pub struct ChannelTransport {
    inbox: mpsc::Receiver<ShardMessage>,
    peers: Vec<mpsc::Sender<ShardMessage>>,
    control: mpsc::Receiver<Control>,
    report: mpsc::Sender<ShardReport>,
    sent: u64,
    received: u64,
}

impl ChannelTransport {
    pub(crate) fn new(
        inbox: mpsc::Receiver<ShardMessage>,
        peers: Vec<mpsc::Sender<ShardMessage>>,
        control: mpsc::Receiver<Control>,
        report: mpsc::Sender<ShardReport>,
    ) -> Self {
        Self { inbox, peers, control, report, sent: 0, received: 0 }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, dest: usize, msg: ShardMessage) {
        self.sent += shard_message_len(&msg);
        self.peers[dest].send(msg).expect("peer shard alive");
    }

    fn recv(&mut self) -> Result<ShardMessage, TransportLost> {
        let msg = self.inbox.recv().map_err(|_| TransportLost)?;
        self.received += shard_message_len(&msg);
        Ok(msg)
    }

    fn send_report(&mut self, report: ShardReport) -> Option<Vec<(u32, u64)>> {
        self.sent += report_len(&report);
        // The coordinator consumes the report in place — the body
        // crosses the channel intact, so there is nothing to pool.
        self.report.send(report).expect("coordinator alive");
        None
    }

    fn recv_control(&mut self) -> Result<Control, TransportLost> {
        let ctrl = self.control.recv().map_err(|_| TransportLost)?;
        self.received += control_len(&ctrl);
        Ok(ctrl)
    }

    fn count_lost(&mut self, msg: &ShardMessage) {
        self.sent += shard_message_len(msg);
    }

    fn count_lost_report(&mut self, report: &ShardReport) {
        self.sent += report_len(report);
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

/// The coordinator's channel-backend link.
pub(crate) struct ChannelLink {
    control_txs: Vec<mpsc::Sender<Control>>,
    report_rx: mpsc::Receiver<ShardReport>,
    sent: u64,
    received: u64,
}

impl ChannelLink {
    pub(crate) fn new(
        control_txs: Vec<mpsc::Sender<Control>>,
        report_rx: mpsc::Receiver<ShardReport>,
    ) -> Self {
        Self { control_txs, report_rx, sent: 0, received: 0 }
    }
}

impl CoordinatorLink for ChannelLink {
    fn send_control(&mut self, shard: usize, ctrl: Control) -> Result<(), TransportLost> {
        self.sent += control_len(&ctrl);
        self.control_txs[shard].send(ctrl).map_err(|_| TransportLost)
    }

    fn recv_report(&mut self) -> Result<ShardReport, TransportLost> {
        let rep = self.report_rx.recv().map_err(|_| TransportLost)?;
        self.received += report_len(&rep);
        Ok(rep)
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

// ---------------------------------------------------------------------------
// Addresses, streams, listeners.
// ---------------------------------------------------------------------------

/// Where a socket fleet's coordinator listens: a Unix domain socket
/// path (the local default) or a TCP address.
///
/// The string forms are `unix:<path>` and `tcp:<host>:<port>` — what
/// [`TransportAddr::parse`] accepts and what travels in the handshake
/// frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportAddr {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` address (`port` 0 binds ephemerally).
    Tcp(String),
}

impl TransportAddr {
    /// Parses the `unix:<path>` / `tcp:<host>:<port>` string form.
    pub fn parse(s: &str) -> Option<Self> {
        if let Some(path) = s.strip_prefix("unix:") {
            Some(TransportAddr::Unix(PathBuf::from(path)))
        } else {
            s.strip_prefix("tcp:").map(|addr| TransportAddr::Tcp(addr.to_string()))
        }
    }
}

impl std::fmt::Display for TransportAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            TransportAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn connect(addr: &TransportAddr) -> io::Result<Self> {
        Ok(match addr {
            TransportAddr::Unix(path) => Conn::Unix(UnixStream::connect(path)?),
            TransportAddr::Tcp(a) => Conn::Tcp(TcpStream::connect(a.as_str())?),
        })
    }

    fn try_clone(&self) -> io::Result<Self> {
        Ok(match self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds and returns the *resolved* address (TCP port 0 becomes the
    /// real ephemeral port; a stale Unix path is removed first).
    fn bind(addr: &TransportAddr) -> io::Result<(Self, TransportAddr)> {
        Ok(match addr {
            TransportAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                (Listener::Unix(UnixListener::bind(path)?), TransportAddr::Unix(path.clone()))
            }
            TransportAddr::Tcp(a) => {
                let listener = TcpListener::bind(a.as_str())?;
                let resolved = TransportAddr::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), resolved)
            }
        })
    }

    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
        })
    }
}

// ---------------------------------------------------------------------------
// Serialized rules.
// ---------------------------------------------------------------------------

/// A wire-serializable description of an update rule, carried in the
/// socket handshake's `Init` frame so a worker process can
/// reconstitute the exact rule the coordinator is running.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleSpec {
    /// [`Voter`].
    Voter,
    /// [`ThreeMajority`].
    ThreeMajority,
    /// [`ThreeMajorityAlt`].
    ThreeMajorityAlt,
    /// [`TwoChoices`].
    TwoChoices,
    /// [`TwoMedian`].
    TwoMedian,
    /// [`UndecidedDynamics`].
    UndecidedDynamics,
    /// [`LazyVoter`] with its activity probability.
    LazyVoter(f64),
    /// [`HMajority`] with its window size.
    HMajority(u32),
}

/// An [`UpdateRule`] the socket backend can ship to worker processes.
///
/// The channel backend moves rule values in-process and needs no spec;
/// only the socket entry points ([`crate::Cluster::run_horizon_socket`])
/// require this bound.
pub trait WireRule: UpdateRule {
    /// The serializable description of this rule instance.
    fn spec(&self) -> RuleSpec;
}

impl WireRule for Voter {
    fn spec(&self) -> RuleSpec {
        RuleSpec::Voter
    }
}

impl WireRule for ThreeMajority {
    fn spec(&self) -> RuleSpec {
        RuleSpec::ThreeMajority
    }
}

impl WireRule for ThreeMajorityAlt {
    fn spec(&self) -> RuleSpec {
        RuleSpec::ThreeMajorityAlt
    }
}

impl WireRule for TwoChoices {
    fn spec(&self) -> RuleSpec {
        RuleSpec::TwoChoices
    }
}

impl WireRule for TwoMedian {
    fn spec(&self) -> RuleSpec {
        RuleSpec::TwoMedian
    }
}

impl WireRule for UndecidedDynamics {
    fn spec(&self) -> RuleSpec {
        RuleSpec::UndecidedDynamics
    }
}

impl WireRule for LazyVoter {
    fn spec(&self) -> RuleSpec {
        RuleSpec::LazyVoter(self.activity())
    }
}

impl WireRule for HMajority {
    fn spec(&self) -> RuleSpec {
        RuleSpec::HMajority(self.h() as u32)
    }
}

// ---------------------------------------------------------------------------
// Socket backend: worker side.
// ---------------------------------------------------------------------------

enum PeerEvent {
    /// A decoded data-plane frame and its wire length.
    Data(ShardMessage, u64),
    /// The peer's socket closed or produced garbage.
    Lost,
}

/// The socket backend's shard-side transport: framed codec bytes to a
/// full peer mesh, with one reader thread per peer draining frames into
/// an in-process queue (see the module docs for why that drains-always
/// design is what makes the blocking exchange loops deadlock-free).
struct SocketTransport {
    shard_id: usize,
    coord_r: BufReader<Conn>,
    coord_w: Conn,
    /// Write halves of the peer mesh (`None` at `shard_id`: self-sends
    /// loop back through `self_queue` without touching a socket).
    peer_w: Vec<Option<Conn>>,
    events: mpsc::Receiver<PeerEvent>,
    self_queue: VecDeque<(ShardMessage, u64)>,
    lost: bool,
    sent: u64,
    received: u64,
    /// Deterministic kill switch: `abort()` upon receiving this round's
    /// command — the disconnect-test harness.
    die_at_round: Option<u64>,
    scratch: Vec<u8>,
}

impl Transport for SocketTransport {
    fn send(&mut self, dest: usize, msg: ShardMessage) {
        let len = shard_message_len(&msg);
        self.sent += len;
        if dest == self.shard_id {
            self.self_queue.push_back((msg, len));
            return;
        }
        self.scratch.clear();
        encode_shard_message(&msg, &mut self.scratch);
        debug_assert_eq!(self.scratch.len() as u64, len, "encoded_len must match the encoder");
        let conn = self.peer_w[dest].as_mut().expect("mesh covers every non-self peer");
        if write_frame(conn, &self.scratch).is_err() {
            // The loss surfaces from the next recv; the round cannot
            // complete anyway (the peer will never answer).
            self.lost = true;
        }
    }

    fn recv(&mut self) -> Result<ShardMessage, TransportLost> {
        if self.lost {
            return Err(TransportLost);
        }
        if let Some((msg, len)) = self.self_queue.pop_front() {
            self.received += len;
            return Ok(msg);
        }
        match self.events.recv() {
            Ok(PeerEvent::Data(msg, len)) => {
                self.received += len;
                Ok(msg)
            }
            Ok(PeerEvent::Lost) | Err(_) => {
                self.lost = true;
                Err(TransportLost)
            }
        }
    }

    fn send_report(&mut self, report: ShardReport) -> Option<Vec<(u32, u64)>> {
        self.sent += report_len(&report);
        self.scratch.clear();
        encode_report(&report, &mut self.scratch);
        if write_frame(&mut self.coord_w, &self.scratch).is_err() {
            self.lost = true;
        }
        // Serialized — the body is spent; hand a sparse buffer back
        // for the worker's report pool.
        match report.body {
            ReportBody::Sparse(mut pairs) => {
                pairs.clear();
                Some(pairs)
            }
            _ => None,
        }
    }

    fn recv_control(&mut self) -> Result<Control, TransportLost> {
        if self.lost {
            return Err(TransportLost);
        }
        match read_frame(&mut self.coord_r) {
            Ok(Some(frame)) => {
                self.received += frame.wire_len();
                let Ok(ctrl) = decode_control(&frame) else {
                    self.lost = true;
                    return Err(TransportLost);
                };
                if let Control::Round { round, .. } = ctrl {
                    if self.die_at_round == Some(round) {
                        // The kill-test knob: vanish without unwinding,
                        // exactly like a crashed process.
                        std::process::abort();
                    }
                }
                Ok(ctrl)
            }
            Ok(None) | Err(_) => {
                self.lost = true;
                Err(TransportLost)
            }
        }
    }

    fn count_lost(&mut self, msg: &ShardMessage) {
        self.sent += shard_message_len(msg);
    }

    fn count_lost_report(&mut self, report: &ShardReport) {
        self.sent += report_len(report);
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

fn spawn_peer_reader(conn: BufReader<Conn>, tx: mpsc::Sender<PeerEvent>) {
    std::thread::spawn(move || {
        let mut conn = conn;
        loop {
            match read_frame(&mut conn) {
                Ok(Some(frame)) => {
                    let len = frame.wire_len();
                    match decode_shard_message(&frame) {
                        Ok(msg) => {
                            if tx.send(PeerEvent::Data(msg, len)).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            let _ = tx.send(PeerEvent::Lost);
                            return;
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send(PeerEvent::Lost);
                    return;
                }
            }
        }
    });
}

/// Spawns one shard-worker OS process that will connect back to the
/// coordinator listening at `coordinator` (a `unix:`/`tcp:` address
/// string) and run shard `shard` of its fleet.
///
/// `worker` is the `symbreak_shard_worker` binary (built alongside the
/// workspace); the child inherits stdout/stderr for diagnostics.
pub fn spawn_shard_process(worker: &Path, coordinator: &str, shard: usize) -> io::Result<Child> {
    Command::new(worker).arg(coordinator).arg(shard.to_string()).stdin(Stdio::null()).spawn()
}

/// The entry point a shard-worker binary calls from `main()`: connects
/// to the coordinator named by `argv[1]`, runs the socket handshake for
/// shard `argv[2]`, and executes rounds until Stop or disconnect.
///
/// # Panics
/// Panics on malformed arguments or a failed handshake (the
/// coordinator observes the process exit as a transport loss).
pub fn shard_process_main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: symbreak_shard_worker <unix:path | tcp:host:port> <shard>";
    let addr = args.next().expect(usage);
    let shard: usize = args.next().and_then(|s| s.parse().ok()).expect(usage);
    let addr = TransportAddr::parse(&addr).expect("unparseable coordinator address");

    let coord = Conn::connect(&addr).expect("connect to coordinator");
    let mut coord_w = coord.try_clone().expect("clone coordinator stream");
    let mut coord_r = BufReader::new(coord);

    // Own listener first, then Hello: once the coordinator has every
    // Hello, every peer listener exists, so the mesh below needs no
    // connect retries.
    let my_spec = match &addr {
        TransportAddr::Unix(p) => {
            TransportAddr::Unix(PathBuf::from(format!("{}.s{shard}", p.display())))
        }
        TransportAddr::Tcp(_) => TransportAddr::Tcp("127.0.0.1:0".to_string()),
    };
    let (listener, my_addr) = Listener::bind(&my_spec).expect("bind peer listener");

    let mut scratch = Vec::new();
    encode_hello(&Hello { shard, peer_addr: my_addr.to_string() }, &mut scratch);
    write_frame(&mut coord_w, &scratch).expect("send hello");

    let frame = read_frame(&mut coord_r).expect("read init").expect("coordinator sent init");
    let init = decode_worker_init(&frame).expect("decode init");
    let shards = init.shards;
    assert!(shard < shards, "shard index out of range");

    // Full mesh: connect to lower-indexed peers (identifying ourselves
    // with a PeerHello), accept from higher-indexed ones.
    let mut peer_w: Vec<Option<Conn>> = (0..shards).map(|_| None).collect();
    let mut peer_r: Vec<Option<BufReader<Conn>>> = (0..shards).map(|_| None).collect();
    for (j, peer_addr) in init.peer_addrs.iter().enumerate().take(shard) {
        let paddr = TransportAddr::parse(peer_addr).expect("unparseable peer address");
        let c = Conn::connect(&paddr).expect("connect to peer");
        let mut w = c.try_clone().expect("clone peer stream");
        scratch.clear();
        encode_peer_hello(shard, &mut scratch);
        write_frame(&mut w, &scratch).expect("send peer hello");
        peer_w[j] = Some(w);
        peer_r[j] = Some(BufReader::new(c));
    }
    for _ in shard + 1..shards {
        let c = listener.accept().expect("accept peer");
        let w = c.try_clone().expect("clone peer stream");
        let mut r = BufReader::new(c);
        let frame = read_frame(&mut r).expect("read peer hello").expect("peer sent hello");
        let j = decode_peer_hello(&frame).expect("decode peer hello");
        assert!(j > shard && j < shards && peer_w[j].is_none(), "mesh hello from shard {j}");
        peer_w[j] = Some(w);
        peer_r[j] = Some(r);
    }

    scratch.clear();
    encode_ready(&mut scratch);
    write_frame(&mut coord_w, &scratch).expect("send ready");

    let (tx, events) = mpsc::channel();
    for r in peer_r.into_iter().flatten() {
        spawn_peer_reader(r, tx.clone());
    }
    drop(tx);

    let transport = SocketTransport {
        shard_id: shard,
        coord_r,
        coord_w,
        peer_w,
        events,
        self_queue: VecDeque::new(),
        lost: false,
        sent: 0,
        received: 0,
        die_at_round: init.die_at_round,
        scratch,
    };

    let spec = ShardSpec {
        partition: Partition::new(init.n, shards),
        k_slots: init.k_slots,
        report_mode: init.report_mode,
        wire_mode: init.wire_mode,
        consume_mode: init.consume_mode,
        repr: init.repr,
        master_seed: init.master_seed,
        plan: init.plan,
        round_state: init.round_state,
    };
    let shard_init = if init.condensed {
        ShardInit::Histogram(init.body)
    } else {
        // Expand the sparse seed body into the agent vector exactly as
        // the channel coordinator does: colors ascending and contiguous.
        let mut opinions = Vec::new();
        for &(slot, count) in &init.body {
            opinions.extend(std::iter::repeat_n(Opinion::new(slot), count as usize));
        }
        ShardInit::Agents(opinions)
    };
    match init.rule {
        RuleSpec::Voter => run_shard(shard, spec, Voter, shard_init, transport),
        RuleSpec::ThreeMajority => run_shard(shard, spec, ThreeMajority, shard_init, transport),
        RuleSpec::ThreeMajorityAlt => {
            run_shard(shard, spec, ThreeMajorityAlt, shard_init, transport)
        }
        RuleSpec::TwoChoices => run_shard(shard, spec, TwoChoices, shard_init, transport),
        RuleSpec::TwoMedian => run_shard(shard, spec, TwoMedian, shard_init, transport),
        RuleSpec::UndecidedDynamics => {
            run_shard(shard, spec, UndecidedDynamics, shard_init, transport)
        }
        RuleSpec::LazyVoter(p) => run_shard(shard, spec, LazyVoter::new(p), shard_init, transport),
        RuleSpec::HMajority(h) => {
            run_shard(shard, spec, HMajority::new(h as usize), shard_init, transport)
        }
    }
    if let TransportAddr::Unix(p) = my_addr {
        let _ = std::fs::remove_file(p);
    }
}

// ---------------------------------------------------------------------------
// Socket backend: coordinator side.
// ---------------------------------------------------------------------------

/// How a cluster's socket run is deployed — see
/// [`crate::Cluster::run_horizon_socket`].
#[derive(Debug, Clone, Default)]
pub struct SocketConfig {
    /// Where the coordinator listens. `None` picks a fresh Unix socket
    /// path under the system temp directory.
    pub addr: Option<TransportAddr>,
    /// The `symbreak_shard_worker` binary. `None` looks next to the
    /// current executable (and up its target directory), honoring a
    /// `SYMBREAK_SHARD_WORKER` environment override first.
    pub worker: Option<PathBuf>,
    /// Deterministic kill switch for disconnect tests: worker `(shard)`
    /// calls `abort()` upon receiving round `(round)`'s command.
    pub kill: Option<(usize, u64)>,
}

static NEXT_SOCKET: AtomicU64 = AtomicU64::new(0);

fn default_unix_addr() -> TransportAddr {
    let id = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
    TransportAddr::Unix(
        std::env::temp_dir().join(format!("symbreak-{}-{id}.sock", std::process::id())),
    )
}

fn default_worker_path() -> PathBuf {
    if let Ok(p) = std::env::var("SYMBREAK_SHARD_WORKER") {
        return PathBuf::from(p);
    }
    let name = format!("symbreak_shard_worker{}", std::env::consts::EXE_SUFFIX);
    if let Ok(exe) = std::env::current_exe() {
        // Next to the executable (bench/bin siblings), or up the
        // target tree (integration tests live in target/<p>/deps/).
        let mut dir = exe.parent();
        for _ in 0..3 {
            let Some(d) = dir else { break };
            let cand = d.join(&name);
            if cand.is_file() {
                return cand;
            }
            dir = d.parent();
        }
    }
    panic!(
        "symbreak_shard_worker binary not found; build the workspace first \
         (cargo build --release) or set SYMBREAK_SHARD_WORKER"
    )
}

/// Everything the coordinator ships to the fleet at launch.
pub(crate) struct FleetSpec {
    pub n: u32,
    pub shards: usize,
    pub k_slots: usize,
    pub report_mode: ReportMode,
    pub wire_mode: WireMode,
    pub consume_mode: ConsumeMode,
    pub repr: ShardRepr,
    pub master_seed: u64,
    pub plan: FaultPlan,
    pub round_state: RoundStateMode,
    pub rule: RuleSpec,
    pub condensed: bool,
    pub bodies: Vec<Vec<(u32, u64)>>,
}

/// The coordinator's socket-backend link: one framed stream per worker
/// process, reports drained by per-worker reader threads into a shared
/// queue.
pub(crate) struct SocketLink {
    conns: Vec<Conn>,
    reports: mpsc::Receiver<Option<(ShardReport, u64)>>,
    sent: u64,
    received: u64,
    scratch: Vec<u8>,
}

impl CoordinatorLink for SocketLink {
    fn send_control(&mut self, shard: usize, ctrl: Control) -> Result<(), TransportLost> {
        self.sent += control_len(&ctrl);
        self.scratch.clear();
        encode_control(&ctrl, &mut self.scratch);
        write_frame(&mut self.conns[shard], &self.scratch).map_err(|_| TransportLost)
    }

    fn recv_report(&mut self) -> Result<ShardReport, TransportLost> {
        match self.reports.recv() {
            Ok(Some((rep, len))) => {
                self.received += len;
                Ok(rep)
            }
            Ok(None) | Err(_) => Err(TransportLost),
        }
    }

    fn bytes_sent(&self) -> u64 {
        self.sent
    }

    fn bytes_received(&self) -> u64 {
        self.received
    }
}

/// A launched socket fleet: the coordinator link plus the worker
/// processes and the socket files to clean up.
pub(crate) struct SocketFleet {
    link: SocketLink,
    children: Vec<Child>,
    cleanup: Vec<PathBuf>,
}

impl SocketFleet {
    /// Binds, spawns, and handshakes a whole fleet (see the module
    /// docs for the Hello/Init/Ready beat structure). Returns once
    /// every worker is Ready — rounds can start immediately.
    pub(crate) fn launch(spec: &FleetSpec, cfg: &SocketConfig) -> io::Result<Self> {
        let shards = spec.shards;
        let addr = cfg.addr.clone().unwrap_or_else(default_unix_addr);
        let (listener, resolved) = Listener::bind(&addr)?;
        let worker = cfg.worker.clone().unwrap_or_else(default_worker_path);
        let coord_str = resolved.to_string();

        let mut cleanup = Vec::new();
        if let TransportAddr::Unix(p) = &resolved {
            cleanup.push(p.clone());
            for s in 0..shards {
                cleanup.push(PathBuf::from(format!("{}.s{s}", p.display())));
            }
        }

        let mut children = Vec::with_capacity(shards);
        for s in 0..shards {
            children.push(spawn_shard_process(&worker, &coord_str, s)?);
        }

        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "worker hung up mid-handshake");

        let mut read_halves: Vec<Option<BufReader<Conn>>> = (0..shards).map(|_| None).collect();
        let mut write_halves: Vec<Option<Conn>> = (0..shards).map(|_| None).collect();
        let mut peer_addrs = vec![String::new(); shards];
        for _ in 0..shards {
            let conn = listener.accept()?;
            let w = conn.try_clone()?;
            let mut r = BufReader::new(conn);
            let frame = read_frame(&mut r)?.ok_or_else(eof)?;
            let hello = decode_hello(&frame).map_err(|_| invalid("bad hello frame"))?;
            if hello.shard >= shards || read_halves[hello.shard].is_some() {
                return Err(invalid("hello names a bad shard"));
            }
            peer_addrs[hello.shard] = hello.peer_addr;
            read_halves[hello.shard] = Some(r);
            write_halves[hello.shard] = Some(w);
        }

        let mut scratch = Vec::new();
        let mut conns = Vec::with_capacity(shards);
        for (s, w) in write_halves.iter_mut().enumerate() {
            let init = WorkerInit {
                n: spec.n,
                shards,
                k_slots: spec.k_slots,
                report_mode: spec.report_mode,
                wire_mode: spec.wire_mode,
                consume_mode: spec.consume_mode,
                repr: spec.repr,
                master_seed: spec.master_seed,
                plan: spec.plan.clone(),
                round_state: spec.round_state,
                rule: spec.rule,
                condensed: spec.condensed,
                body: spec.bodies[s].clone(),
                peer_addrs: peer_addrs.clone(),
                die_at_round: cfg.kill.and_then(|(ks, r)| (ks == s).then_some(r)),
            };
            scratch.clear();
            encode_worker_init(&init, &mut scratch);
            write_frame(w.as_mut().expect("hello filled every slot"), &scratch)?;
        }
        for r in read_halves.iter_mut() {
            let r = r.as_mut().expect("hello filled every slot");
            let frame = read_frame(r)?.ok_or_else(eof)?;
            if frame.kind != FrameKind::Ready {
                return Err(invalid("expected ready frame"));
            }
        }

        let (tx, reports) = mpsc::channel();
        for r in read_halves.into_iter().flatten() {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut r = r;
                loop {
                    match read_frame(&mut r) {
                        Ok(Some(frame)) => {
                            let len = frame.wire_len();
                            match decode_report(&frame) {
                                Ok(rep) => {
                                    if tx.send(Some((rep, len))).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => {
                                    let _ = tx.send(None);
                                    return;
                                }
                            }
                        }
                        Ok(None) | Err(_) => {
                            let _ = tx.send(None);
                            return;
                        }
                    }
                }
            });
        }
        for w in write_halves {
            conns.push(w.expect("hello filled every slot"));
        }

        Ok(Self {
            link: SocketLink { conns, reports, sent: 0, received: 0, scratch },
            children,
            cleanup,
        })
    }

    pub(crate) fn link_mut(&mut self) -> &mut SocketLink {
        &mut self.link
    }

    /// Best-effort Stop to every worker, then reaps the processes
    /// (killed workers reap with their signal status) and removes the
    /// fleet's socket files.
    pub(crate) fn shutdown(mut self) {
        for s in 0..self.link.conns.len() {
            let _ = self.link.send_control(s, Control::Stop);
        }
        drop(self.link);
        for child in &mut self.children {
            let _ = child.wait();
        }
        for path in &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_addr_round_trips_its_string_form() {
        for s in ["unix:/tmp/x.sock", "tcp:127.0.0.1:8080"] {
            let addr = TransportAddr::parse(s).expect("parses");
            assert_eq!(addr.to_string(), s);
        }
        assert_eq!(TransportAddr::parse("udp:nope"), None);
        assert_eq!(TransportAddr::parse("bare"), None);
    }

    #[test]
    fn rule_specs_round_trip_parameters() {
        assert_eq!(LazyVoter::new(0.25).spec(), RuleSpec::LazyVoter(0.25));
        assert_eq!(HMajority::new(5).spec(), RuleSpec::HMajority(5));
        assert_eq!(Voter.spec(), RuleSpec::Voter);
    }
}
