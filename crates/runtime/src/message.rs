//! Wire messages exchanged between shards.
//!
//! All inter-shard traffic is batched per (sender-shard, receiver-shard)
//! pair per phase, so a shard knows it has seen everything for a phase
//! once it has received exactly one batch from every shard (empty batches
//! are sent explicitly). This gives a deterministic, deadlock-free
//! synchronous round without a global barrier primitive.

use symbreak_core::Opinion;

/// A pull request: node `requester` (global id) asks for the opinion of
/// node `target` (global id, owned by the receiving shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Global id of the node whose opinion is requested.
    pub target: u32,
    /// Global id of the requesting node (used only to route the reply and
    /// slot it into the right sample position).
    pub requester: u32,
    /// Which of the requester's `h` sample slots this request fills.
    pub slot: u8,
}

/// A pull reply carrying the opinion of the target at the round start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Global id of the requesting node.
    pub requester: u32,
    /// Sample slot being filled.
    pub slot: u8,
    /// The pulled opinion.
    pub opinion: Opinion,
}

/// Batched shard-to-shard traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMessage {
    /// All requests a shard addresses to the receiving shard this round.
    Requests(Vec<Request>),
    /// All replies a shard returns to the receiving shard this round.
    Replies(Vec<Reply>),
}

/// Coordinator-to-shard control traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Run one more synchronous round.
    Round,
    /// Terminate and report.
    Stop,
}

/// Shard-to-coordinator per-round report: this shard's opinion counts
/// (over `k` slots) plus its undecided count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Per-color support among this shard's nodes.
    pub counts: Vec<u64>,
    /// Undecided nodes in this shard.
    pub undecided: u64,
    /// Point-to-point messages (request or reply batches' individual
    /// entries) this shard sent during the round.
    pub messages_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_shapes() {
        let r = Request { target: 1, requester: 2, slot: 0 };
        assert_eq!(r.target, 1);
        let msg = ShardMessage::Requests(vec![r]);
        match msg {
            ShardMessage::Requests(v) => assert_eq!(v.len(), 1),
            ShardMessage::Replies(_) => panic!("wrong variant"),
        }
    }

    #[test]
    fn reply_carries_opinion() {
        let rep = Reply { requester: 3, slot: 1, opinion: Opinion::new(9) };
        assert_eq!(rep.opinion, Opinion::new(9));
        assert_eq!(rep.slot, 1);
    }
}
