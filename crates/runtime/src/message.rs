//! Wire messages exchanged between shards.
//!
//! All inter-shard traffic is batched per (sender-shard, receiver-shard)
//! pair per phase. The two phases close differently:
//!
//! * **Requests** are counted by *batches*: every shard sends exactly one
//!   request batch to every shard each round, empty or not, so a shard
//!   knows the request phase is over once it has received one batch per
//!   shard.
//! * **Replies** are counted by *entries*: a shard expects exactly
//!   `local_n · h` reply entries per round, so empty reply batches carry
//!   no information and are **not** sent.
//!
//! Together this gives a deterministic, deadlock-free synchronous round
//! without a global barrier primitive.
//!
//! # Sparse report format
//!
//! Per-round shard reports default to the occupancy-aware wire format:
//! `(slot, count)` pairs over the shard's *locally occupied* color
//! slots ([`ReportBody::Sparse`]), built in `O(local_n)` and sized
//! `O(#locally occupied)` — on a `k = n` singleton start this collapses
//! with the surviving-color count instead of staying `O(k)` forever. The
//! dense `k`-slot vector ([`ReportBody::Dense`]) is retained as the
//! benchmark baseline (`crate::ReportMode::Dense`).

use symbreak_core::Opinion;

/// A pull request: node `requester` (global id) asks for the opinion of
/// node `target` (global id, owned by the receiving shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Global id of the node whose opinion is requested.
    pub target: u32,
    /// Global id of the requesting node (used only to route the reply and
    /// slot it into the right sample position).
    pub requester: u32,
    /// Which of the requester's `h` sample slots this request fills.
    pub slot: u8,
}

/// A pull reply carrying the opinion of the target at the round start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Global id of the requesting node.
    pub requester: u32,
    /// Sample slot being filled.
    pub slot: u8,
    /// The pulled opinion.
    pub opinion: Opinion,
}

/// Batched shard-to-shard traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMessage {
    /// All requests a shard addresses to the receiving shard this round.
    Requests(Vec<Request>),
    /// All replies a shard returns to the receiving shard this round.
    Replies(Vec<Reply>),
}

/// Coordinator-to-shard control traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Run one more synchronous round.
    Round,
    /// Terminate and report.
    Stop,
}

/// A shard's per-round opinion counts, in the wire format selected by
/// [`crate::ReportMode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportBody {
    /// `(slot, count)` pairs over the locally occupied slots, in
    /// first-touch order (the merge is additive, so order is
    /// irrelevant); every `count` is non-zero. `O(#locally occupied)`
    /// on the wire.
    Sparse(Vec<(u32, u64)>),
    /// Per-color support over all `k` slots (the pre-sparse format, kept
    /// as the paired-benchmark baseline).
    Dense(Vec<u64>),
}

/// Shard-to-coordinator per-round report: this shard's opinion counts
/// plus its undecided count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Support among this shard's nodes, in the configured wire format.
    pub body: ReportBody,
    /// Undecided nodes in this shard.
    pub undecided: u64,
    /// Point-to-point messages (request or reply batches' individual
    /// entries) this shard sent during the round.
    pub messages_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_shapes() {
        let r = Request { target: 1, requester: 2, slot: 0 };
        assert_eq!(r.target, 1);
        let msg = ShardMessage::Requests(vec![r]);
        match msg {
            ShardMessage::Requests(v) => assert_eq!(v.len(), 1),
            ShardMessage::Replies(_) => panic!("wrong variant"),
        }
    }

    #[test]
    fn reply_carries_opinion() {
        let rep = Reply { requester: 3, slot: 1, opinion: Opinion::new(9) };
        assert_eq!(rep.opinion, Opinion::new(9));
        assert_eq!(rep.slot, 1);
    }

    #[test]
    fn report_bodies_compare_structurally() {
        let sparse = ReportBody::Sparse(vec![(0, 2), (3, 1)]);
        assert_eq!(sparse, ReportBody::Sparse(vec![(0, 2), (3, 1)]));
        assert_ne!(sparse, ReportBody::Dense(vec![2, 0, 0, 1]));
    }
}
