//! The cluster wire protocol: every message type exchanged between
//! shards and with the coordinator, in both wire modes.
//!
//! # Data plane
//!
//! All inter-shard traffic is batched per (sender-shard, receiver-shard)
//! pair per phase. The runtime speaks one of two wire formats, selected
//! by [`crate::WireMode`]:
//!
//! ## Per-entry (`WireMode::PerEntry`)
//!
//! The PR 3 format, kept as the paired-benchmark baseline. Each of a
//! node's `h` pulls travels as its own [`Request`] entry and comes back
//! as its own [`Reply`] entry, so a round moves exactly `2·n·h` entries
//! through the channels. The two phases close differently:
//!
//! * **Requests** are counted by *batches*: every shard sends exactly one
//!   request batch to every shard each round, empty or not, so a shard
//!   knows the request phase is over once it has received one batch per
//!   shard.
//! * **Replies** are counted by *entries*: a shard expects exactly
//!   `local_n · h` reply entries per round, so empty reply batches carry
//!   no information and are **not** sent.
//!
//! ## Batched (`WireMode::Batched`)
//!
//! The aggregate format. Uniform pulls are anonymous and exchangeable,
//! so per-pair traffic collapses to at most two messages per round, in
//! one of two coordinator-arbitrated gears ([`DataFormat`]):
//!
//! **Pull gear** (the diverse regime):
//!
//! * a [`PullBatch`] of [`TargetRun`]s — "draw `count` uniform targets
//!   from this shard-local id range" — in place of the individual
//!   requests (one run covering the peer's whole range suffices for
//!   Uniform Pull, so a batch is `O(1)` entries);
//! * an [`OpinionPalette`] reply, *sampled shard-side* — raw drawn
//!   opinions while they would not compress, a run-length histogram
//!   (distributionally identical to reading `count` uniform snapshot
//!   entries) once they do — at most `count` entries, collapsing to
//!   `O(#distinct opinions)` as the process concentrates.
//!
//! Both phases close by *batch count*: every shard sends every shard
//! exactly one pull batch and exactly one palette per round, empty or
//! not. The receiving shard reconstitutes per-node samples by dealing
//! the palettes through a Fisher–Yates pass — an iid sequence
//! conditioned on its multiset is a uniform arrangement.
//!
//! **Push gear** (the concentrated regime, `occ · shards² ≤ n·h`): no
//! pulls at all. Every shard broadcasts its round-start opinion
//! histogram as one palette per peer, and each shard draws all its
//! `local_n · h` samples locally from the union of the received
//! histograms via one alias table — exactly Uniform Pull (a uniform
//! node is a shard ∝ size, then a uniform node within it, so its
//! opinion is distributed as the global histogram), iid per sample
//! with no reassembly shuffle, at `O(#shards² · #distinct)` wire
//! entries per round regardless of `n`.
//!
//! In both gears the realized process law is *exactly* Uniform Pull
//! (cross-validated against the engines), but the RNG discipline
//! differs from per-entry mode, so the two wire modes realize
//! different (equally lawful) trajectories per seed.
//!
//! The batched wire is **representation-agnostic**: nothing in a
//! [`PullBatch`], [`OpinionPalette`], or report body reveals whether the
//! serving shard materializes its agents ([`crate::ShardRepr::Agents`])
//! or keeps only a local histogram ([`crate::ShardRepr::Histogram`]).
//! Palettes are distributional objects (iid draws from the frozen
//! round-start snapshot), which a histogram serves directly; per-node
//! sample reassembly is a *consumer*-side choice. Only the per-entry
//! format is inherently agent-addressed, which is why it forces the
//! agent-backed representation.
//!
//! # Control plane
//!
//! Per-round shard reports carry one of three [`ReportBody`] formats,
//! commanded round-by-round by the coordinator via [`Control::Round`]
//! (all shards use the same format within a round, which is what keeps
//! the coordinator's single merged configuration mergeable):
//!
//! * [`ReportBody::Sparse`] — absolute `(slot, count)` pairs over the
//!   shard's locally occupied slots; `O(#locally occupied)` on the wire,
//!   merged via `Configuration::merge_sparse`.
//! * [`ReportBody::Delta`] — signed `(slot, Δcount)` pairs over the
//!   slots whose local support *changed* this round; `O(#changed)` on
//!   the wire, merged via `Configuration::apply_deltas`. This is the
//!   high-occupancy-regime format: 2-Choices from `k = n` singletons
//!   keeps `Θ(n)` colors alive over the whole Theorem-5 horizon (so
//!   absolute reports stay `O(local_n)`) while only `O(1)` nodes switch
//!   per round once the process stalls.
//! * [`ReportBody::Dense`] — the full `k`-slot count vector (the
//!   pre-sparse format, kept as the paired-benchmark baseline).
//!
//! The report format never touches the protocol's RNG streams, so all
//! three formats realize the identical trajectory for a given seed and
//! wire mode.
//!
//! # Fault tagging and accounting
//!
//! Every batched data-plane message and every report carries the round
//! it belongs to. In the fault-free cluster the coordinator's report
//! barrier makes the tags redundant (every message a shard receives is
//! for its current round); under an active [`crate::FaultPlan`] they
//! are what keeps the relaxed protocol coherent: receivers park
//! *future*-tagged messages (a peer that made quorum may already be a
//! round ahead), discard *stale*-tagged ones (a delayed duplicate that
//! lost its race), and recognize duplicates by their already-filled
//! per-origin slot.
//!
//! Accounting stays honest under injected faults: a dropped message's
//! entries are still counted by its sender (it was transmitted and
//! lost), a duplicated message's entries are counted **twice** (two
//! transmissions), and a delayed message is one transmission counted
//! once. A dropped *report* would lose its `messages_sent` counter
//! snapshot with it, so shards carry the unreported tally forward into
//! their next report — which is how the documented `2·n·h`-style cost
//! models remain comparable between faulty and fault-free runs.

use symbreak_core::Opinion;

/// A pull request: node `requester` (global id) asks for the opinion of
/// node `target` (global id, owned by the receiving shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Global id of the node whose opinion is requested.
    pub target: u32,
    /// Global id of the requesting node (used only to route the reply and
    /// slot it into the right sample position).
    pub requester: u32,
    /// Which of the requester's `h` sample slots this request fills.
    pub slot: u8,
}

/// A pull reply carrying the opinion of the target at the round start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Global id of the requesting node.
    pub requester: u32,
    /// Sample slot being filled.
    pub slot: u8,
    /// The pulled opinion.
    pub opinion: Opinion,
}

/// One run of an aggregate pull: "draw `count` uniform random targets
/// from the shard-local id range `[start, start + len)`".
///
/// Runs are the unit the batched wire mode counts as a message entry.
/// Uniform Pull needs only one run spanning the peer's whole range, but
/// the format admits subranges so non-uniform pull distributions stay
/// expressible on the same wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetRun {
    /// First shard-local node id of the run.
    pub start: u32,
    /// Number of node ids the run spans.
    pub len: u32,
    /// How many uniform draws to take from the run.
    pub count: u64,
}

/// All pulls a shard addresses to the receiving shard this round, as
/// sorted target runs ([`crate::WireMode::Batched`]).
///
/// Every shard sends every shard exactly one pull batch per round (empty
/// or not) — batches close the pull phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PullBatch {
    /// Shard index of the requester (routes the palette back).
    pub origin: u32,
    /// The synchronous round this batch belongs to (see the module-level
    /// fault-tagging notes).
    pub round: u64,
    /// The aggregate pulls, sorted by `start`, non-overlapping.
    pub target_runs: Vec<TargetRun>,
}

/// The aggregate reply to a [`PullBatch`]: the opinions of the drawn
/// targets, in one of two encodings.
///
/// * **Histogram** (`runs` non-empty): `palette` lists the distinct
///   opinions observed, `runs` pairs each with its count. Built
///   *shard-side* — once opinions concentrate the server samples a
///   multinomial over its round-start opinion histogram instead of
///   materializing individual targets, so building and shipping the
///   palette is `O(#distinct opinions)` rather than `O(count)`.
/// * **Raw** (`runs` empty): `palette` is the drawn opinions verbatim,
///   one entry per draw. Used in the many-color regime, where a
///   histogram would not compress (`#distinct ≈ count`) — still half
///   of per-entry mode's `2·count` entries, with no per-entry routing.
///
/// Every shard sends every shard exactly one palette per round (empty
/// or not) — palettes close the reply phase by batch count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpinionPalette {
    /// Shard index of the server (identifies which batch this answers).
    pub origin: u32,
    /// The synchronous round this palette belongs to (see the
    /// module-level fault-tagging notes).
    pub round: u64,
    /// The distinct opinions observed among the drawn targets
    /// (histogram form), or the drawn opinions verbatim (raw form).
    /// May include [`Opinion::UNDECIDED`].
    pub palette: Vec<Opinion>,
    /// `(palette_idx, count)` pairs: how many of the drawn targets held
    /// each palette opinion; `Σ count` equals the requested draw total.
    /// Empty in the raw encoding.
    pub runs: Vec<(u32, u64)>,
}

/// Batched shard-to-shard traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMessage {
    /// All per-entry requests a shard addresses to the receiving shard
    /// this round ([`crate::WireMode::PerEntry`]).
    Requests(Vec<Request>),
    /// All per-entry replies a shard returns to the receiving shard this
    /// round ([`crate::WireMode::PerEntry`]).
    Replies(Vec<Reply>),
    /// One aggregate pull batch ([`crate::WireMode::Batched`]).
    Pull(PullBatch),
    /// One aggregate reply palette ([`crate::WireMode::Batched`]).
    Palette(OpinionPalette),
}

/// Report wire format for one round, commanded by the coordinator.
///
/// Keeping the format uniform across shards within a round is what
/// makes the coordinator's single merged configuration sufficient
/// state: absolute sparse reports replace the occupied supports, delta
/// reports shift them — mixing the two in one round would require
/// per-shard previous-report state at the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Absolute `(slot, count)` pairs ([`ReportBody::Sparse`]).
    #[default]
    Sparse,
    /// Signed `(slot, Δcount)` pairs ([`ReportBody::Delta`]).
    Delta,
    /// Dense `k`-slot vectors ([`ReportBody::Dense`]).
    Dense,
}

/// Data-plane format for one batched round, commanded by the
/// coordinator (ignored in per-entry wire mode).
///
/// Like [`ReportFormat`], keeping the format uniform across shards
/// within a round is what keeps the protocol simple: in a push round
/// nobody sends pulls, and every received palette is a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataFormat {
    /// Pull/reply: [`PullBatch`]es answered by sampled
    /// [`OpinionPalette`]s.
    #[default]
    Pull,
    /// Histogram push, for the concentrated regime (arbitrated on
    /// `occ · shards² ≤ n·h`): every shard broadcasts its round-start
    /// opinion histogram as an [`OpinionPalette`] — no pulls at all —
    /// and each requester draws all its `local_n · h` samples locally
    /// from the union of the received histograms via one alias table.
    /// Exactly Uniform Pull (a uniform node is a shard ∝ size, then a
    /// uniform node within it, so its opinion is distributed as the
    /// global histogram), iid per sample with no reassembly shuffle,
    /// at `O(#shards · #distinct)` wire entries per server.
    Push,
}

/// Coordinator-to-shard control traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Control {
    /// Run one more synchronous round with the given report and
    /// data-plane formats.
    Round {
        /// The round number (1-based), echoed onto every message the
        /// shard emits this round.
        round: u64,
        /// Report wire format for the round.
        report: ReportFormat,
        /// Data-plane format for the round (batched wire only).
        data: DataFormat,
    },
    /// Revive a crash-stopped shard from the coordinator's snapshot of
    /// its last accepted report: the shard rebuilds its node opinions
    /// from the sparse body (crash-stop lost its own state), verifies
    /// the reconstruction against a dense recount, and resumes with the
    /// next [`Control::Round`].
    Rejoin {
        /// The round the shard rejoins at (its first live round).
        round: u64,
        /// Snapshot `(slot, count)` support, summing with `undecided`
        /// to the shard's node count.
        body: Vec<(u32, u64)>,
        /// Undecided nodes in the snapshot.
        undecided: u64,
    },
    /// Terminate and report.
    Stop,
}

/// A shard's per-round opinion counts, in the wire format selected by
/// [`crate::ReportMode`] and the per-round [`ReportFormat`] command.
///
/// # Example
///
/// The same round, reported three ways — a shard whose 10 nodes sit on
/// slots 3 and 7 of a `k = 8` configuration, after one node moved
/// `7 → 3`:
///
/// ```
/// use symbreak_runtime::ReportBody;
///
/// let sparse = ReportBody::Sparse(vec![(3, 9), (7, 1)]); // absolute
/// let delta = ReportBody::Delta(vec![(3, 1), (7, -1)]);  // what changed
/// let dense = ReportBody::Dense(vec![0, 0, 0, 9, 0, 0, 0, 1]);
/// assert_eq!(sparse.entries(), 2);
/// assert_eq!(delta.entries(), 2);
/// assert_eq!(dense.entries(), 8); // always O(k) on the wire
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportBody {
    /// `(slot, count)` pairs over the locally occupied slots, in
    /// first-touch order (the merge is additive, so order is
    /// irrelevant); every `count` is non-zero. `O(#locally occupied)`
    /// on the wire.
    Sparse(Vec<(u32, u64)>),
    /// Signed `(slot, Δcount)` pairs over the slots whose local support
    /// changed this round; every `Δcount` is non-zero. `O(#changed)` on
    /// the wire — the stalled-regime format.
    Delta(Vec<(u32, i64)>),
    /// Per-color support over all `k` slots (the pre-sparse format, kept
    /// as the paired-benchmark baseline).
    Dense(Vec<u64>),
}

impl ReportBody {
    /// Number of wire entries the body carries (pairs, or dense slots).
    pub fn entries(&self) -> u64 {
        match self {
            ReportBody::Sparse(pairs) => pairs.len() as u64,
            ReportBody::Delta(pairs) => pairs.len() as u64,
            ReportBody::Dense(counts) => counts.len() as u64,
        }
    }
}

/// Shard-to-coordinator per-round report: this shard's opinion counts
/// plus its undecided count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The round this report describes (under an active fault plan a
    /// delayed report arrives one round late; the coordinator folds it
    /// as a straggler re-sync by this tag).
    pub round: u64,
    /// Support among this shard's nodes, in the commanded wire format.
    pub body: ReportBody,
    /// Undecided nodes in this shard.
    pub undecided: u64,
    /// Point-to-point wire entries this shard sent during the round
    /// (request/reply entries in per-entry mode; target runs plus
    /// palette and run entries in batched mode). Under an active fault
    /// plan this includes entries transmitted-and-lost, counts
    /// duplicated transmissions twice, and carries forward the tally of
    /// any previous report that was itself dropped (see the
    /// module-level accounting notes).
    pub messages_sent: u64,
    /// Samples this shard regenerated locally because the palette that
    /// should have carried them was dropped or delayed past its round
    /// (`0` in fault-free runs).
    pub recovered: u64,
    /// How many color slots changed local support this round, when the
    /// shard tracks its previous round ([`crate::ReportMode::Delta`]);
    /// `None` in modes that do not track. The coordinator arbitrates
    /// the sparse↔delta switch on this.
    pub changed_slots: Option<u64>,
    /// Cumulative wire bytes this shard has sent over its
    /// [`crate::transport::Transport`], at [`crate::codec`] frame
    /// sizes, sampled after this round's exchange and before this
    /// report itself is framed (so a report's own bytes land in the
    /// *next* report — a one-round tail the coordinator's final sum
    /// closes by taking the per-shard maximum it ever saw).
    pub bytes_sent: u64,
    /// Cumulative wire bytes received (data plane plus control frames),
    /// sampled at the same point as `bytes_sent`.
    pub bytes_received: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_shapes() {
        let r = Request { target: 1, requester: 2, slot: 0 };
        assert_eq!(r.target, 1);
        let msg = ShardMessage::Requests(vec![r]);
        match msg {
            ShardMessage::Requests(v) => assert_eq!(v.len(), 1),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn reply_carries_opinion() {
        let rep = Reply { requester: 3, slot: 1, opinion: Opinion::new(9) };
        assert_eq!(rep.opinion, Opinion::new(9));
        assert_eq!(rep.slot, 1);
    }

    #[test]
    fn report_bodies_compare_structurally() {
        let sparse = ReportBody::Sparse(vec![(0, 2), (3, 1)]);
        assert_eq!(sparse, ReportBody::Sparse(vec![(0, 2), (3, 1)]));
        assert_ne!(sparse, ReportBody::Dense(vec![2, 0, 0, 1]));
        assert_ne!(ReportBody::Delta(vec![(0, 2)]), ReportBody::Sparse(vec![(0, 2)]));
    }

    #[test]
    fn report_body_entry_counts() {
        assert_eq!(ReportBody::Sparse(vec![(0, 2), (3, 1)]).entries(), 2);
        assert_eq!(ReportBody::Delta(vec![(7, -4)]).entries(), 1);
        assert_eq!(ReportBody::Dense(vec![2, 0, 0, 1]).entries(), 4);
    }

    #[test]
    fn palette_mass_matches_runs() {
        let p = OpinionPalette {
            origin: 0,
            round: 1,
            palette: vec![Opinion::new(3), Opinion::UNDECIDED],
            runs: vec![(0, 5), (1, 2)],
        };
        let total: u64 = p.runs.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 7);
        assert_eq!(p.palette.len(), p.runs.len());
    }
}
