//! The cluster coordinator: spawns shard threads, drives synchronous
//! rounds, aggregates per-round observables, and detects consensus.

use std::sync::mpsc;

use symbreak_core::{Configuration, UpdateRule};
use symbreak_sim::trace::{RoundStats, Trace};

use crate::message::{Control, ShardReport};
use crate::shard::{run_shard, Partition, ShardEndpoints};

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of shard threads (each owns a contiguous node range).
    pub shards: usize,
    /// Master seed; shard streams are derived deterministically from it.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self { shards: 4, seed: 0 }
    }
}

/// Outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Round at which consensus was observed.
    pub consensus_round: u64,
    /// The final aggregated configuration.
    pub final_config: Configuration,
    /// Round-by-round observables.
    pub trace: Trace,
    /// Total point-to-point messages exchanged over the whole run
    /// (requests + replies). The Uniform Pull cost model: `2·n·h` per
    /// round up to coalesced local deliveries.
    pub total_messages: u64,
}

/// A distributed execution of one update rule over sharded node actors.
#[derive(Debug, Clone)]
pub struct Cluster<R> {
    rule: R,
    start: Configuration,
    config: ClusterConfig,
}

impl<R: UpdateRule + Clone + Send> Cluster<R> {
    /// Prepares a cluster over the nodes described by `start`.
    ///
    /// # Panics
    /// Panics if there are fewer nodes than shards, or zero shards.
    pub fn new(rule: R, start: &Configuration, config: ClusterConfig) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(start.n() >= config.shards as u64, "need at least one node per shard");
        Self { rule, start: start.clone(), config }
    }

    /// Runs synchronous rounds until consensus, or `max_rounds`.
    ///
    /// Returns `None` if the cap elapsed first. Consumes the cluster (the
    /// shard threads are joined either way).
    pub fn run_to_consensus(self, max_rounds: u64) -> Option<ClusterOutcome> {
        let n = self.start.n() as u32;
        let k_slots = self.start.num_slots();
        let shards = self.config.shards;
        let partition = Partition::new(n, shards);

        // Wire the topology: one inbox per shard, everyone holds senders
        // to everyone; a control channel per shard; one report channel.
        let mut inboxes = Vec::with_capacity(shards);
        let mut peer_senders = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            peer_senders.push(tx);
            inboxes.push(rx);
        }
        let mut control_txs = Vec::with_capacity(shards);
        let mut control_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            control_txs.push(tx);
            control_rxs.push(rx);
        }
        let (report_tx, report_rx) = mpsc::channel::<ShardReport>();

        let all_opinions = self.start.to_opinions();
        let rule = self.rule;
        let seed = self.config.seed;

        let result = crossbeam::thread::scope(|scope| {
            for (shard_id, (inbox, control)) in inboxes.into_iter().zip(control_rxs).enumerate() {
                let range = partition.range(shard_id);
                let opinions = all_opinions[range.start as usize..range.end as usize].to_vec();
                let endpoints = ShardEndpoints {
                    inbox,
                    peers: peer_senders.clone(),
                    control,
                    report: report_tx.clone(),
                };
                let rule = rule.clone();
                scope.spawn(move |_| {
                    run_shard(shard_id, partition, rule, opinions, k_slots, seed, endpoints);
                });
            }
            // The coordinator's copies are no longer needed; dropping them
            // lets shards observe closed channels at shutdown.
            drop(peer_senders);
            drop(report_tx);

            let mut trace = Trace::new();
            let mut outcome = None;
            let mut total_messages = 0u64;
            for round in 1..=max_rounds {
                for tx in &control_txs {
                    tx.send(Control::Round).expect("shard alive");
                }
                let mut counts = vec![0u64; k_slots];
                let mut undecided = 0u64;
                for _ in 0..shards {
                    let report = report_rx.recv().expect("shard reports");
                    for (total, c) in counts.iter_mut().zip(&report.counts) {
                        *total += c;
                    }
                    undecided += report.undecided;
                    total_messages += report.messages_sent;
                }
                let config = Configuration::from_counts(counts);
                trace.push(RoundStats {
                    round,
                    num_colors: config.num_colors(),
                    max_support: config.max_support(),
                    bias: config.bias(),
                });
                if undecided == 0 && config.is_consensus() {
                    outcome = Some(ClusterOutcome {
                        consensus_round: round,
                        final_config: config,
                        trace: trace.clone(),
                        total_messages,
                    });
                    break;
                }
            }
            // Shut the shards down.
            for tx in &control_txs {
                let _ = tx.send(Control::Stop);
            }
            drop(control_txs);
            outcome
        })
        .expect("shard thread panicked");

        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbreak_core::rules::{ThreeMajority, TwoChoices, UndecidedDynamics, Voter};

    #[test]
    fn cluster_reaches_consensus_three_majority() {
        let start = Configuration::uniform(200, 8);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig { shards: 4, seed: 1 });
        let out = cluster.run_to_consensus(100_000).expect("consensus");
        assert!(out.consensus_round > 0);
        assert_eq!(out.final_config.n(), 200);
        assert!(out.final_config.is_consensus());
        assert_eq!(out.trace.len() as u64, out.consensus_round);
    }

    #[test]
    fn cluster_works_single_shard() {
        let start = Configuration::uniform(64, 4);
        let cluster = Cluster::new(Voter, &start, ClusterConfig { shards: 1, seed: 2 });
        assert!(cluster.run_to_consensus(1_000_000).is_some());
    }

    #[test]
    fn cluster_works_with_many_shards_and_uneven_ranges() {
        let start = Configuration::uniform(50, 5);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig { shards: 7, seed: 3 });
        let out = cluster.run_to_consensus(100_000).expect("consensus");
        assert_eq!(out.final_config.n(), 50);
    }

    #[test]
    fn cluster_respects_round_cap() {
        let start = Configuration::singletons(512);
        let cluster = Cluster::new(TwoChoices, &start, ClusterConfig { shards: 4, seed: 4 });
        assert!(cluster.run_to_consensus(2).is_none(), "2 rounds cannot suffice");
    }

    #[test]
    fn cluster_is_deterministic_per_seed() {
        let start = Configuration::uniform(120, 6);
        let run = |seed| {
            let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig { shards: 3, seed });
            cluster.run_to_consensus(100_000).expect("consensus").consensus_round
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn cluster_handles_undecided_dynamics() {
        let start = Configuration::from_counts(vec![80, 20]);
        let cluster = Cluster::new(UndecidedDynamics, &start, ClusterConfig { shards: 4, seed: 5 });
        let out = cluster.run_to_consensus(1_000_000).expect("consensus");
        assert!(out.final_config.is_consensus());
    }

    #[test]
    fn population_is_conserved_every_round() {
        let start = Configuration::uniform(90, 3);
        let cluster = Cluster::new(Voter, &start, ClusterConfig { shards: 3, seed: 6 });
        let out = cluster.run_to_consensus(1_000_000).expect("consensus");
        // Trace max_support never exceeds n; final mass intact.
        assert!(out.trace.rounds().iter().all(|r| r.max_support <= 90));
        assert_eq!(out.final_config.n(), 90);
    }

    #[test]
    fn message_accounting_matches_protocol_cost() {
        // Each round: every node sends h requests and receives h replies,
        // so total messages = rounds * 2 * n * h exactly.
        let n = 120u64;
        let start = Configuration::uniform(n, 4);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig { shards: 3, seed: 8 });
        let out = cluster.run_to_consensus(100_000).expect("consensus");
        assert_eq!(out.total_messages, out.consensus_round * 2 * n * 3);
    }

    #[test]
    #[should_panic(expected = "one node per shard")]
    fn more_shards_than_nodes_panics() {
        let start = Configuration::uniform(3, 3);
        Cluster::new(Voter, &start, ClusterConfig { shards: 8, seed: 0 });
    }
}
