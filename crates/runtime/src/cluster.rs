//! The cluster coordinator: spawns shard threads, drives synchronous
//! rounds, aggregates per-round observables, and detects consensus.
//!
//! Two orthogonal knobs shape the per-round traffic (see
//! [`crate::message`] for the wire protocol itself):
//!
//! * **[`WireMode`]** selects the data plane: the default
//!   [`WireMode::Batched`] aggregates each shard pair's pulls into one
//!   [`crate::message::PullBatch`] answered by one
//!   [`crate::message::OpinionPalette`], and — once occupancy
//!   concentrates (`occ · shards² ≤ n·h`) — flips the fleet to
//!   histogram *push* ([`crate::message::DataFormat::Push`]): every
//!   shard broadcasts its opinion histogram and samples its own pulls
//!   from the union, `O(#shards² · #distinct)` entries per round
//!   regardless of `n`. [`WireMode::PerEntry`] keeps the PR 3
//!   request/reply format (`2·n·h` entries per round) as the paired
//!   baseline.
//! * **[`ReportMode`]** selects the control plane: sparse absolute
//!   reports folded into **one** persistent merged [`Configuration`]
//!   via [`Configuration::merge_sparse`] (`O(#occupied)` per round), or
//!   — under [`ReportMode::Delta`] — signed per-round deltas merged via
//!   [`Configuration::apply_deltas`] (`O(#changed)` per round) once the
//!   coordinator observes the changed-slot set collapsing. The
//!   coordinator arbitrates the sparse↔delta switch round-by-round
//!   through [`crate::message::Control::Round`], keeping the format
//!   uniform across shards within a round (absolute and delta reports
//!   cannot be mixed against a single merged configuration).
//!   [`ReportMode::Dense`] preserves the pre-sparse path (fresh dense
//!   vectors and a `from_counts` rebuild every round) as the
//!   paired-benchmark baseline.
//!
//! Per-round observables ([`Trace`]) read off the merged
//! configuration's `O(1)` cached observables in every mode.
//!
//! Under an **active [`FaultPlan`]** the coordinator swaps the strict
//! barrier for a quorum-relaxed one: it sizes each round's report
//! collection exactly from the plan's stateless fault hashes (see
//! [`crate::fault`]), proceeds once fresh *valid* attendance reaches
//! the integer-exact `N − F` quorum
//! ([`symbreak_adversary::quorum_threshold`]), folds stale straggler
//! reports as re-syncs, rejects mass-violating (Byzantine) bodies by
//! the same `Σ counts + undecided = local_n` identity the lossless
//! merge paths assert, replays snapshots to rejoining crashed shards
//! ([`crate::message::Control::Rejoin`]), and detects consensus on the
//! *honest* view — the non-Byzantine shards' last accepted bodies,
//! rebuilt revival-tolerantly via [`Configuration::rebuild_sparse`]
//! (stale straggler bodies can re-light colors the merged view had
//! retired). Inert plans ([`FaultPlan::none`]) take the exact lockstep
//! coordinator, byte-identical per seed to the pre-fault runtime.

use std::sync::mpsc;

use symbreak_adversary::quorum_threshold;
use symbreak_core::{Configuration, Opinion, RoundStateMode, SampleAccess, UpdateRule};
use symbreak_sim::trace::{RoundStats, Trace};

use crate::fault::{FaultCounters, FaultKind, FaultPlan, StopReason};
use crate::message::{Control, DataFormat, ReportBody, ReportFormat, ShardReport};
use crate::shard::{run_shard, Partition, ShardInit, ShardSpec};
use crate::transport::{
    ChannelLink, ChannelTransport, CoordinatorLink, FleetSpec, SocketConfig, SocketFleet, WireRule,
};

/// Per-round report wire format exchanged between shards and the
/// coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// `(slot, count)` pairs over each shard's locally occupied slots,
    /// folded into a persistent merged configuration. Per-round cost
    /// `O(local_n)` on the shard and `O(#occupied)` at the coordinator.
    #[default]
    Sparse,
    /// Adaptive signed-delta control plane: absolute sparse reports
    /// until the per-round changed-slot set is small relative to the
    /// occupancy, then `(slot, Δcount)` deltas — `O(#changed)` on the
    /// wire and at the coordinator, which is where the high-occupancy
    /// Theorem-5 regime lives (`Θ(n)` colors alive, `O(1)` switches per
    /// round). The coordinator commands the format per round and may
    /// switch back if churn returns.
    Delta,
    /// Dense `k`-slot count vectors rebuilt from scratch every round (the
    /// pre-sparse protocol), kept as the paired-benchmark baseline.
    Dense,
}

/// Data-plane wire format exchanged between shards.
///
/// The report format never touches the protocol's RNG streams, so for a
/// fixed wire mode every [`ReportMode`] realizes the identical
/// trajectory per seed. The two *wire* modes realize the same process
/// law — batched mode is an exact aggregation of Uniform Pull, not an
/// approximation — but consume randomness differently, so their
/// trajectories are compared distributionally, not pathwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Aggregate traffic: one `PullBatch` + one `OpinionPalette` per
    /// shard pair per round in the diverse regime, and coordinator-
    /// arbitrated histogram push (no pulls at all, `O(#shards² ·
    /// #distinct)` entries) once opinions concentrate.
    #[default]
    Batched,
    /// One `Request` and one `Reply` entry per pull: exactly `2·n·h`
    /// channel entries per round (the PR 3 data plane, kept as the
    /// paired-benchmark baseline).
    PerEntry,
}

/// How shards consume the batched data plane's received aggregates —
/// the runtime end of the sample-consumption taxonomy
/// ([`symbreak_core::SampleAccess`]).
///
/// Under [`ConsumeMode::Native`] (the default) a shard dispatches on
/// the rule's declared access: multiset rules take received
/// [`crate::message::OpinionPalette`]s directly as histogram splits
/// (per-node multivariate-hypergeometric windows — no inside-out
/// Fisher–Yates dealing pass), and single-peer rules skip sample
/// materialization entirely (the dealt multiset *is* the next opinion
/// vector). Both are exactly the Uniform Pull law; they consume
/// randomness differently from the ordered dealing, so the trajectories
/// are compared distributionally (like the wire modes), not pathwise.
/// [`ConsumeMode::Ordered`] forces the ordered-window dealing for every
/// rule — the paired baseline. The per-entry wire always consumes
/// ordered (its replies are already per-draw).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumeMode {
    /// Dispatch on the rule's [`symbreak_core::SampleAccess`].
    #[default]
    Native,
    /// Ordered-window dealing for every rule (the pre-taxonomy
    /// behaviour), kept as the paired baseline.
    Ordered,
}

/// Per-shard state representation.
///
/// Under [`ShardRepr::Histogram`] (the default) a shard keeps only its
/// local opinion histogram — `O(#occupied)` memory instead of
/// `O(local_n)` agents — and steps, serves, consumes, and reports off
/// counts alone. The condensed form engages per rule: batched wire,
/// native consumption, and a rule whose [`SampleAccess`] is multiset
/// or single-peer; ordered-window rules (and the per-entry wire or
/// [`ConsumeMode::Ordered`]) keep the agent vector regardless, because
/// an ordered window is a property of individual draws that a
/// histogram cannot replay. [`ShardRepr::Agents`] forces the agent
/// vector everywhere — the paired crossval baseline, byte-identical
/// per seed to the pre-condensed runtime.
///
/// Both representations realize the same process law (the condensed
/// step is an exact aggregation, not an approximation) but consume
/// randomness differently, so — like the wire modes — their
/// trajectories are compared distributionally, not pathwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardRepr {
    /// Configuration-backed local histogram where the rule's sample
    /// access permits; `O(#occupied · h)` per-round compute in the
    /// push gear.
    #[default]
    Histogram,
    /// Materialized per-agent opinion vector everywhere (the paired
    /// baseline and the forced mode for ordered-window rules).
    Agents,
}

/// Data-plane gear selection (batched wire only — the per-entry wire
/// has no push gear and ignores this knob).
///
/// [`GearMode::Auto`] is the byte-exact default: condensed fleets boot
/// in whatever gear the start configuration arbitrates to and
/// re-arbitrate every round; agent-backed fleets boot pull-first. The
/// force modes pin one gear for the whole run — the instrument the
/// gear benchmarks use to time each data plane across a sweep where
/// auto arbitration would switch mid-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GearMode {
    /// Per-round pull/push arbitration over the merged view.
    #[default]
    Auto,
    /// Every data round pushes whole histograms.
    ForcePush,
    /// Every data round answers pulls.
    ForcePull,
}

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of shard threads (each owns a contiguous node range).
    pub shards: usize,
    /// Master seed; shard streams are derived deterministically from it.
    pub seed: u64,
    /// Report wire format (defaults to [`ReportMode::Sparse`]).
    pub report_mode: ReportMode,
    /// Data-plane wire format (defaults to [`WireMode::Batched`]).
    pub wire_mode: WireMode,
    /// Sample-consumption dispatch (defaults to [`ConsumeMode::Native`]).
    pub consume_mode: ConsumeMode,
    /// Per-shard state representation (defaults to
    /// [`ShardRepr::Histogram`], arbitrated per rule).
    pub shard_repr: ShardRepr,
    /// Data-plane gear selection (defaults to [`GearMode::Auto`],
    /// the byte-exact per-round arbitration).
    pub data_gear: GearMode,
    /// Deterministic fault schedule (defaults to the inert
    /// [`FaultPlan::none`], which keeps the exact fault-free paths).
    pub fault_plan: FaultPlan,
    /// Per-round sampler lifecycle (defaults to
    /// [`RoundStateMode::Rebuild`], the byte-exact baseline).
    /// [`RoundStateMode::Incremental`] lets condensed shards patch
    /// their persistent push-union and serving samplers from
    /// `O(#changed)` histogram deltas instead of rebuilding from
    /// scratch each round — distribution-exact, but a different RNG
    /// discipline, so (like the wire modes) incremental trajectories
    /// are compared distributionally, not pathwise. Shards that are
    /// not condensed, and fleets with an active fault plan, keep the
    /// rebuild path regardless of the knob.
    pub round_state: RoundStateMode,
}

impl ClusterConfig {
    /// Shorthand for the default formats (batched data plane, sparse
    /// reports, native sample consumption, no faults).
    pub fn new(shards: usize, seed: u64) -> Self {
        Self {
            shards,
            seed,
            report_mode: ReportMode::default(),
            wire_mode: WireMode::default(),
            consume_mode: ConsumeMode::default(),
            shard_repr: ShardRepr::default(),
            data_gear: GearMode::default(),
            fault_plan: FaultPlan::none(),
            round_state: RoundStateMode::default(),
        }
    }

    /// Selects the report wire format.
    pub fn with_report_mode(mut self, report_mode: ReportMode) -> Self {
        self.report_mode = report_mode;
        self
    }

    /// Selects the data-plane wire format.
    pub fn with_wire_mode(mut self, wire_mode: WireMode) -> Self {
        self.wire_mode = wire_mode;
        self
    }

    /// Selects the sample-consumption dispatch.
    pub fn with_consume_mode(mut self, consume_mode: ConsumeMode) -> Self {
        self.consume_mode = consume_mode;
        self
    }

    /// Selects the per-shard state representation.
    pub fn with_shard_repr(mut self, shard_repr: ShardRepr) -> Self {
        self.shard_repr = shard_repr;
        self
    }

    /// Selects the data-plane gear (pin push or pull, or keep the
    /// default per-round arbitration). Batched wire only; the
    /// per-entry wire has no push gear and ignores the knob.
    pub fn with_data_gear(mut self, data_gear: GearMode) -> Self {
        self.data_gear = data_gear;
        self
    }

    /// Installs a fault schedule. Active plans require the batched wire
    /// and sparse reports (checked by [`Cluster::new`]): delta chains
    /// cannot be applied relative to states the coordinator never saw,
    /// and dense bodies have no rejection-tolerant merge.
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Selects the per-round sampler lifecycle (persistent
    /// delta-patched round state vs the byte-exact from-scratch
    /// rebuild baseline).
    pub fn with_round_state(mut self, round_state: RoundStateMode) -> Self {
        self.round_state = round_state;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::new(4, 0)
    }
}

/// Outcome of a cluster run that reached consensus.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Round at which consensus was observed.
    pub consensus_round: u64,
    /// The final aggregated configuration.
    pub final_config: Configuration,
    /// Round-by-round observables.
    pub trace: Trace,
    /// Total point-to-point wire entries exchanged over the whole run.
    /// Under [`WireMode::PerEntry`] this is exactly `2·n·h` per round
    /// (every request and its reply counted individually, intra-shard
    /// deliveries included — there is no coalescing); under
    /// [`WireMode::Batched`] it is the target-run, palette, and
    /// palette-run entries — `O(#shard-pairs · #distinct opinions)` per
    /// round. Under an active fault plan, dropped and delayed entries
    /// count once (transmitted) and duplicated entries count twice.
    pub total_messages: u64,
    /// Fault and degradation observables (all zero for inert plans).
    pub faults: FaultCounters,
}

/// Outcome of a fixed-horizon cluster run (consensus not required).
#[derive(Debug, Clone)]
pub struct HorizonOutcome {
    /// Round at which consensus was observed, if within the horizon.
    pub consensus_round: Option<u64>,
    /// Rounds actually executed (the horizon, or less on early consensus).
    pub rounds_run: u64,
    /// The final aggregated configuration.
    pub final_config: Configuration,
    /// Round-by-round observables (e.g. the Theorem-5 support-cap
    /// series).
    pub trace: Trace,
    /// Total point-to-point wire entries, counted as in
    /// [`ClusterOutcome::total_messages`].
    pub total_messages: u64,
    /// Per-round control-plane size: the summed report-body entry
    /// counts across shards (`Σ |report|` — pairs for sparse, changed
    /// slots for delta, `k · shards` for dense; received duplicates and
    /// straggler retransmissions included). This is the series the
    /// delta control plane collapses in the stalled regime.
    pub report_entries: Vec<u64>,
    /// Why the run ended: consensus, horizon exhausted, a round whose
    /// fresh valid attendance fell below the `N − F` quorum (active
    /// fault plans), or a vanished transport endpoint
    /// ([`StopReason::TransportLost`], socket fleets).
    pub stop: StopReason,
    /// Fault and degradation observables. The byte counters
    /// ([`FaultCounters::bytes_sent`] / `bytes_received`) are nonzero
    /// even for inert plans; the fault counters proper are all zero.
    pub faults: FaultCounters,
    /// Total wire bytes sent fleet-wide over the whole run, at
    /// [`crate::codec`] frame sizes (identical to
    /// [`FaultCounters::bytes_sent`], surfaced as a column so the
    /// benches can report measured bytes/round next to the entry
    /// counts). Identical per seed across transport backends under the
    /// strict barrier (the channel backend counts the frames it
    /// *would* have written); under an active fault plan the relaxed
    /// barrier lets next-round messages race the counter sampling, so
    /// the tally may drift by a few bytes per run when an embedded
    /// cumulative crosses a varint length boundary — in either backend.
    pub wire_bytes: u64,
}

/// A distributed execution of one update rule over sharded node actors.
#[derive(Debug, Clone)]
pub struct Cluster<R> {
    rule: R,
    start: Configuration,
    config: ClusterConfig,
}

impl<R: UpdateRule + Clone + Send> Cluster<R> {
    /// Prepares a cluster over the nodes described by `start`.
    ///
    /// # Panics
    /// Panics if there are fewer nodes than shards, or zero shards.
    pub fn new(rule: R, start: &Configuration, config: ClusterConfig) -> Self {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(start.n() >= config.shards as u64, "need at least one node per shard");
        if config.fault_plan.is_active() {
            config.fault_plan.validate(config.shards);
            assert!(
                config.wire_mode == WireMode::Batched && config.report_mode == ReportMode::Sparse,
                "fault plans require the batched wire and sparse reports"
            );
        }
        Self { rule, start: start.clone(), config }
    }

    /// Runs synchronous rounds until consensus, or `max_rounds`.
    ///
    /// Returns the full [`HorizonOutcome`] as the error when consensus
    /// was not reached — its [`HorizonOutcome::stop`] distinguishes an
    /// exhausted horizon from a fault-aborted run
    /// ([`StopReason::TooManyFaults`]). Consumes the cluster (the shard
    /// threads are joined either way).
    // The Err carries the whole diagnostic outcome; a run returns at
    // most once, so the variant size is not worth a Box at call sites.
    #[allow(clippy::result_large_err)]
    pub fn run_to_consensus(self, max_rounds: u64) -> Result<ClusterOutcome, HorizonOutcome> {
        let out = self.run_horizon(max_rounds);
        match out.consensus_round {
            Some(consensus_round) => Ok(ClusterOutcome {
                consensus_round,
                final_config: out.final_config,
                trace: out.trace,
                total_messages: out.total_messages,
                faults: out.faults,
            }),
            None => Err(out),
        }
    }

    /// Runs exactly `rounds` synchronous rounds, stopping early only at
    /// consensus, and reports the trajectory either way. This is the
    /// Theorem-5 entry point: the lower-bound experiments care about the
    /// support-cap series over an `Ω(n / log n)` horizon, not about
    /// reaching consensus.
    pub fn run_horizon(self, rounds: u64) -> HorizonOutcome {
        let n = self.start.n() as u32;
        let k_slots = self.start.num_slots();
        let shards = self.config.shards;
        let report_mode = self.config.report_mode;
        let wire_mode = self.config.wire_mode;
        let consume_mode = self.config.consume_mode;
        let data_gear = self.config.data_gear;
        let round_state = self.config.round_state;
        let plan = self.config.fault_plan;
        let partition = Partition::new(n, shards);

        // Wire the topology: one inbox per shard, everyone holds senders
        // to everyone; a control channel per shard; one report channel.
        let mut inboxes = Vec::with_capacity(shards);
        let mut peer_senders = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            peer_senders.push(tx);
            inboxes.push(rx);
        }
        let mut control_txs = Vec::with_capacity(shards);
        let mut control_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel();
            control_txs.push(tx);
            control_rxs.push(rx);
        }
        let (report_tx, report_rx) = mpsc::channel::<ShardReport>();

        // Per-shard sparse seed bodies (no O(n) opinion expansion); a
        // shard is condensed when the representation, the wire, and the
        // rule's sample access all permit it — the same predicate the
        // worker asserts against its init.
        let bodies = shard_bodies(&self.start, &partition);
        let condensed = self.config.shard_repr == ShardRepr::Histogram
            && wire_mode == WireMode::Batched
            && consume_mode == ConsumeMode::Native
            && self.rule.sample_access() != SampleAccess::OrderedWindow;
        let h = self.rule.sample_count() as u64;
        let rule = self.rule;
        let seed = self.config.seed;
        let shard_repr = self.config.shard_repr;
        // The persistent merged configuration the sparse and delta
        // reports fold into; occupancy only ever shrinks (dead colors
        // stay dead).
        let merged = self.start;

        crossbeam::thread::scope(|scope| {
            for (shard_id, (inbox, control)) in inboxes.into_iter().zip(control_rxs).enumerate() {
                let init = if condensed {
                    ShardInit::Histogram(bodies[shard_id].clone())
                } else {
                    // Expand the shard's body into its agent vector:
                    // colors lie ascending and contiguous (exactly how
                    // `to_opinions` lays agents out), so this equals
                    // slicing the global expansion.
                    let range = partition.range(shard_id);
                    let mut opinions = Vec::with_capacity(range.len());
                    for &(slot, count) in &bodies[shard_id] {
                        opinions.extend(std::iter::repeat_n(Opinion::new(slot), count as usize));
                    }
                    debug_assert_eq!(opinions.len(), range.len());
                    ShardInit::Agents(opinions)
                };
                let transport =
                    ChannelTransport::new(inbox, peer_senders.clone(), control, report_tx.clone());
                let rule = rule.clone();
                let spec = ShardSpec {
                    partition,
                    k_slots,
                    report_mode,
                    wire_mode,
                    consume_mode,
                    repr: shard_repr,
                    master_seed: seed,
                    plan: plan.clone(),
                    round_state,
                };
                scope.spawn(move |_| {
                    run_shard(shard_id, spec, rule, init, transport);
                });
            }
            // The coordinator's copies are no longer needed; dropping them
            // lets shards observe closed channels at shutdown.
            drop(peer_senders);
            drop(report_tx);

            // Condensed fleets boot in whatever gear the start
            // configuration arbitrates to: a forced pull first round
            // would pay per-node window splits — the one cost
            // condensation exists to avoid — before the first report
            // could flip the gear, and the coordinator holds the
            // merged start state before round 1 anyway. Agent-backed
            // fleets keep the pull-first boot: their round 1 is
            // `O(local_n)` in either gear, and holding it fixed
            // preserves the pre-condensation trajectories
            // byte-for-byte (the `fault_properties` goldens pin them).
            // A forced gear overrides both.
            let auto =
                if condensed { arbitrate_gear(&merged, shards, n, h) } else { DataFormat::Pull };
            let initial_data =
                if wire_mode == WireMode::Batched { resolve_gear(data_gear, auto) } else { auto };
            let mut link = ChannelLink::new(control_txs, report_rx);
            let out = if plan.is_active() {
                run_coordinator_faulty(
                    rounds,
                    n,
                    h,
                    k_slots,
                    partition,
                    &bodies,
                    merged,
                    &plan,
                    initial_data,
                    data_gear,
                    &mut link,
                )
            } else {
                run_coordinator_exact(
                    rounds,
                    n,
                    h,
                    k_slots,
                    shards,
                    report_mode,
                    wire_mode,
                    merged,
                    initial_data,
                    data_gear,
                    &mut link,
                )
            };
            // Shut the shards down (crash-stopped shards included: they
            // are blocked on their control channels).
            for s in 0..shards {
                let _ = link.send_control(s, Control::Stop);
            }
            drop(link);
            out
        })
        .expect("shard thread panicked")
    }
}

/// Socket-backed entry points: the same coordinator loops driven over a
/// fleet of shard *processes* (one per shard, spawned from the worker
/// binary) instead of in-process threads. Requires [`WireRule`] so the
/// rule instance can be serialized into each worker's init frame.
impl<R: WireRule> Cluster<R> {
    /// Runs exactly `rounds` rounds over a socket fleet — the process-
    /// per-shard counterpart of [`Cluster::run_horizon`]. Same seed,
    /// same trajectory, same wire bytes as the channel backend: the
    /// protocol logic and the RNG streams live in the shard code, which
    /// is generic over the transport.
    ///
    /// # Panics
    /// Panics if the fleet cannot be launched (bind failure, missing
    /// worker binary — see [`SocketConfig::worker`]). A peer vanishing
    /// *after* launch is not a panic: the run aborts with
    /// [`StopReason::TransportLost`].
    pub fn run_horizon_socket(self, rounds: u64, socket: &SocketConfig) -> HorizonOutcome {
        let n = self.start.n() as u32;
        let k_slots = self.start.num_slots();
        let shards = self.config.shards;
        let report_mode = self.config.report_mode;
        let wire_mode = self.config.wire_mode;
        let consume_mode = self.config.consume_mode;
        let data_gear = self.config.data_gear;
        let plan = self.config.fault_plan;
        let partition = Partition::new(n, shards);
        let bodies = shard_bodies(&self.start, &partition);
        // The same condensation predicate `run_horizon` applies; the
        // workers re-derive and assert it against their init.
        let condensed = self.config.shard_repr == ShardRepr::Histogram
            && wire_mode == WireMode::Batched
            && consume_mode == ConsumeMode::Native
            && self.rule.sample_access() != SampleAccess::OrderedWindow;
        let h = self.rule.sample_count() as u64;
        let merged = self.start;
        let auto = if condensed { arbitrate_gear(&merged, shards, n, h) } else { DataFormat::Pull };
        let initial_data =
            if wire_mode == WireMode::Batched { resolve_gear(data_gear, auto) } else { auto };
        let spec = FleetSpec {
            n,
            shards,
            k_slots,
            report_mode,
            wire_mode,
            consume_mode,
            repr: self.config.shard_repr,
            master_seed: self.config.seed,
            plan: plan.clone(),
            round_state: self.config.round_state,
            rule: self.rule.spec(),
            condensed,
            bodies: bodies.clone(),
        };
        let mut fleet = SocketFleet::launch(&spec, socket).expect("socket fleet launch");
        let out = if plan.is_active() {
            run_coordinator_faulty(
                rounds,
                n,
                h,
                k_slots,
                partition,
                &bodies,
                merged,
                &plan,
                initial_data,
                data_gear,
                fleet.link_mut(),
            )
        } else {
            run_coordinator_exact(
                rounds,
                n,
                h,
                k_slots,
                shards,
                report_mode,
                wire_mode,
                merged,
                initial_data,
                data_gear,
                fleet.link_mut(),
            )
        };
        fleet.shutdown();
        out
    }

    /// Runs a socket fleet until consensus, or `max_rounds` — the
    /// process-per-shard counterpart of [`Cluster::run_to_consensus`].
    // Same Err shape and rationale as `run_to_consensus`.
    #[allow(clippy::result_large_err)]
    pub fn run_to_consensus_socket(
        self,
        max_rounds: u64,
        socket: &SocketConfig,
    ) -> Result<ClusterOutcome, HorizonOutcome> {
        let out = self.run_horizon_socket(max_rounds, socket);
        match out.consensus_round {
            Some(consensus_round) => Ok(ClusterOutcome {
                consensus_round,
                final_config: out.final_config,
                trace: out.trace,
                total_messages: out.total_messages,
                faults: out.faults,
            }),
            None => Err(out),
        }
    }
}

/// Splits the start configuration into per-shard sparse seed bodies by
/// prefix sum: color `i`'s nodes occupy one contiguous global interval
/// (exactly how [`Configuration::to_opinions`] lays agents out), so
/// each shard's body is the ascending intersection of those intervals
/// with its node range — `O(#occupied + #shards)` total, no `O(n)`
/// opinion expansion.
fn shard_bodies(start: &Configuration, partition: &Partition) -> Vec<Vec<(u32, u64)>> {
    let mut bodies: Vec<Vec<(u32, u64)>> = vec![Vec::new(); partition.shards];
    let mut pos = 0u64;
    for (&slot, count) in start.occupied().iter().zip(start.occupied_counts()) {
        let mut remaining = count;
        while remaining > 0 {
            let shard = partition.owner(pos as u32);
            let end = u64::from(partition.range(shard).end);
            let take = remaining.min(end - pos);
            bodies[shard].push((slot, take));
            pos += take;
            remaining -= take;
        }
    }
    debug_assert_eq!(pos, start.n(), "bodies must cover every node");
    bodies
}

/// Pull/push data-plane arbitration over a merged view: push whole
/// histograms once broadcasting every shard's histogram (and
/// alias-sampling their union) is clearly cheaper than answering pulls.
/// The union carries ~occ entries per server, so `S² · occ` must sit
/// under the `n·h` draws it replaces.
fn arbitrate_gear(merged: &Configuration, shards: usize, n: u32, h: u64) -> DataFormat {
    let occ = merged.num_colors() as u64 + 1;
    let pairs = (shards * shards) as u64;
    if occ * pairs <= u64::from(n) * h {
        DataFormat::Push
    } else {
        DataFormat::Pull
    }
}

/// Applies the configured [`GearMode`] over an auto-arbitrated choice.
fn resolve_gear(gear: GearMode, auto: DataFormat) -> DataFormat {
    match gear {
        GearMode::Auto => auto,
        GearMode::ForcePush => DataFormat::Push,
        GearMode::ForcePull => DataFormat::Pull,
    }
}

/// The strict-barrier coordinator (inert fault plans): every shard
/// reports every round, the formats are arbitrated round-by-round, and
/// the merged configuration folds lossless reports. This is the
/// pre-fault lockstep loop, byte-identical per seed.
#[allow(clippy::too_many_arguments)]
fn run_coordinator_exact(
    rounds: u64,
    n: u32,
    h: u64,
    k_slots: usize,
    shards: usize,
    report_mode: ReportMode,
    wire_mode: WireMode,
    mut merged: Configuration,
    initial_data: DataFormat,
    data_gear: GearMode,
    link: &mut dyn CoordinatorLink,
) -> HorizonOutcome {
    let mut trace = Trace::new();
    let mut consensus_round = None;
    let mut rounds_run = 0u64;
    let mut total_messages = 0u64;
    let mut report_entries = Vec::new();
    let mut reports: Vec<ShardReport> = Vec::with_capacity(shards);
    let mut stop = StopReason::HorizonExhausted;
    // Per-shard high-water marks of the cumulative wire-byte counters
    // the reports carry. Each report samples its shard's transport
    // *before* its own framing, so the last report read is one round
    // stale on the report-frame bytes; the max over all accepted
    // reports closes everything but that tail.
    let mut shard_sent = vec![0u64; shards];
    let mut shard_received = vec![0u64; shards];
    // The per-round report format: fixed in Sparse/Dense modes,
    // arbitrated on the reported changed-slot counts in Delta
    // mode (start absolute; switch once the changed set is
    // small, switch back if churn returns).
    let mut format = match report_mode {
        ReportMode::Sparse | ReportMode::Delta => ReportFormat::Sparse,
        ReportMode::Dense => ReportFormat::Dense,
    };
    // The data-plane format (batched wire only): pull/reply
    // until the occupancy concentrates enough that pushing
    // whole histograms is cheaper than answering pulls
    // (`occ · shards² ≤ n·h`), then histogram push — and back,
    // should occupancy ever rise (it cannot for the paper's
    // processes, but the protocol does not rely on that).
    // Round 1's gear is the caller's: start-arbitrated for
    // condensed fleets, pull-first for agent-backed ones.
    let mut data = initial_data;
    'rounds: for round in 1..=rounds {
        for s in 0..shards {
            if link.send_control(s, Control::Round { round, report: format, data }).is_err() {
                stop = StopReason::TransportLost;
                break 'rounds;
            }
        }
        reports.clear();
        let mut undecided = 0u64;
        let mut entries = 0u64;
        for _ in 0..shards {
            let Ok(report) = link.recv_report() else {
                stop = StopReason::TransportLost;
                break 'rounds;
            };
            undecided += report.undecided;
            total_messages += report.messages_sent;
            entries += report.body.entries();
            shard_sent[report.shard] = shard_sent[report.shard].max(report.bytes_sent);
            shard_received[report.shard] = shard_received[report.shard].max(report.bytes_received);
            reports.push(report);
        }
        rounds_run = round;
        report_entries.push(entries);
        match format {
            ReportFormat::Sparse => {
                merged.merge_sparse(reports.iter().map(|r| match &r.body {
                    ReportBody::Sparse(pairs) => pairs.as_slice(),
                    _ => unreachable!("sparse round, non-sparse report"),
                }));
            }
            ReportFormat::Delta => {
                merged.apply_deltas(reports.iter().map(|r| match &r.body {
                    ReportBody::Delta(pairs) => pairs.as_slice(),
                    _ => unreachable!("delta round, non-delta report"),
                }));
            }
            ReportFormat::Dense => {
                // The preserved pre-sparse path: a fresh dense
                // aggregate and configuration rebuild per round.
                let mut counts = vec![0u64; k_slots];
                for r in &reports {
                    let ReportBody::Dense(shard_counts) = &r.body else {
                        unreachable!("dense round, non-dense report")
                    };
                    for (total, c) in counts.iter_mut().zip(shard_counts) {
                        *total += c;
                    }
                }
                merged = Configuration::from_counts(counts);
            }
        }
        if report_mode == ReportMode::Delta {
            let changed: u64 = reports.iter().map(|r| r.changed_slots.unwrap_or(0)).sum();
            format = if changed * 2 <= merged.num_colors() as u64 {
                ReportFormat::Delta
            } else {
                ReportFormat::Sparse
            };
        }
        if wire_mode == WireMode::Batched {
            data = resolve_gear(data_gear, arbitrate_gear(&merged, shards, n, h));
        }
        trace.push(RoundStats {
            round,
            num_colors: merged.num_colors(),
            max_support: merged.max_support(),
            bias: merged.bias(),
        });
        if undecided == 0 && merged.is_consensus() {
            consensus_round = Some(round);
            stop = StopReason::Consensus;
            break;
        }
    }
    let faults = FaultCounters {
        bytes_sent: shard_sent.iter().sum::<u64>() + link.bytes_sent(),
        bytes_received: shard_received.iter().sum::<u64>() + link.bytes_received(),
        ..FaultCounters::default()
    };
    HorizonOutcome {
        stop,
        consensus_round,
        rounds_run,
        final_config: merged,
        trace,
        total_messages,
        report_entries,
        wire_bytes: faults.bytes_sent,
        faults,
    }
}

/// Validates a sparse report body against the shard's node budget: in-
/// range slots and the same mass identity (`Σ counts + undecided =
/// local_n`) the lossless merge paths assert, applied as a rejection
/// filter so Byzantine mass inflation cannot poison the merged view.
fn accept_body(rep: &ShardReport, k_slots: usize, local_n: u64) -> Option<&[(u32, u64)]> {
    let ReportBody::Sparse(pairs) = &rep.body else { return None };
    if pairs.iter().any(|&(slot, _)| slot as usize >= k_slots) {
        return None;
    }
    let mass: u128 =
        pairs.iter().map(|&(_, c)| u128::from(c)).sum::<u128>() + u128::from(rep.undecided);
    (mass == u128::from(local_n)).then_some(pairs.as_slice())
}

/// The quorum-relaxed coordinator for active fault plans.
///
/// Each round it commands the live shards (replaying a snapshot to any
/// shard whose rejoin is due), sizes the report collection *exactly*
/// from the plan's stateless hashes — fresh copies per fault kind plus
/// last round's delayed stragglers, so the blocking receive needs no
/// timeout — and keeps a per-shard last-accepted body. Fresh valid
/// attendance must reach the `N − F` quorum or the run aborts with
/// [`StopReason::TooManyFaults`]. The merged (all shards) and honest
/// (non-Byzantine shards) views are rebuilt from the last-accepted
/// bodies each round; consensus is detected on the honest view, which
/// makes the coordinator a sound measurement harness under up to `F`
/// plausible liars — the lie lands in the *trace*, never in the
/// consensus verdict.
#[allow(clippy::too_many_arguments)]
fn run_coordinator_faulty(
    rounds: u64,
    n: u32,
    h: u64,
    k_slots: usize,
    partition: Partition,
    seed_bodies: &[Vec<(u32, u64)>],
    mut merged: Configuration,
    plan: &FaultPlan,
    initial_data: DataFormat,
    data_gear: GearMode,
    link: &mut dyn CoordinatorLink,
) -> HorizonOutcome {
    let shards = partition.shards;
    let quorum =
        quorum_threshold(shards as u64, (shards - plan.max_faulty) as f64 / shards as f64) as usize;

    // Per-shard last accepted report state, seeded from the start
    // configuration's per-shard bodies (already ascending, identical to
    // the old dense tally) so a crash in round 1 still has a snapshot
    // to rejoin from.
    let mut last_body: Vec<Vec<(u32, u64)>> = seed_bodies.to_vec();
    let mut last_undecided = vec![0u64; shards];
    let mut last_round = vec![0u64; shards];
    let mut honest = merged.clone();

    let mut trace = Trace::new();
    let mut consensus_round = None;
    let mut rounds_run = 0u64;
    let mut total_messages = 0u64;
    let mut report_entries = Vec::new();
    let mut faults = FaultCounters::default();
    let mut stop = StopReason::HorizonExhausted;
    let mut seen = vec![false; shards];
    // High-water marks of the cumulative wire-byte counters (sampled
    // pre-framing by every report, including duplicates and
    // stragglers — the max absorbs them all).
    let mut shard_sent = vec![0u64; shards];
    let mut shard_received = vec![0u64; shards];
    let mut data = initial_data;
    'rounds: for round in 1..=rounds {
        // Command the round. A shard whose rejoin is due gets the
        // snapshot replay first, then the round command; crashed shards
        // get nothing at all.
        for s in 0..shards {
            if plan.is_crashed(s, round) {
                faults.crash_rounds += 1;
                continue;
            }
            if plan.crashes.iter().any(|c| c.shard == s && c.rejoin_round == Some(round)) {
                faults.rejoins += 1;
                if link
                    .send_control(
                        s,
                        Control::Rejoin {
                            round,
                            body: last_body[s].clone(),
                            undecided: last_undecided[s],
                        },
                    )
                    .is_err()
                {
                    stop = StopReason::TransportLost;
                    break 'rounds;
                }
            }
            if link
                .send_control(s, Control::Round { round, report: ReportFormat::Sparse, data })
                .is_err()
            {
                stop = StopReason::TransportLost;
                break 'rounds;
            }
        }

        // Tally the round's planned palette faults (the shards decide
        // identically from the same stateless hashes; counting here
        // keeps the counters off the wire).
        for from in 0..shards {
            if plan.is_crashed(from, round) {
                continue;
            }
            for to in 0..shards {
                if to == from || plan.is_crashed(to, round) {
                    continue;
                }
                match plan.palette_fault(round, from, to) {
                    Some(FaultKind::Drop) => faults.palettes_dropped += 1,
                    Some(FaultKind::Duplicate) => faults.palettes_duplicated += 1,
                    Some(FaultKind::Delay) => faults.palettes_delayed += 1,
                    None => {}
                }
            }
        }

        // Size the relaxed barrier: exactly how many report messages
        // arrive this round — fresh copies by fault kind, plus last
        // round's delayed reports flushed by their shards' round-
        // command (a shard that crashed since voids its stash).
        let mut expected = 0usize;
        for s in 0..shards {
            if plan.is_crashed(s, round) {
                continue;
            }
            expected += match plan.report_fault(round, s) {
                None => 1,
                Some(FaultKind::Duplicate) => {
                    faults.reports_duplicated += 1;
                    2
                }
                Some(FaultKind::Drop) => {
                    faults.reports_dropped += 1;
                    0
                }
                Some(FaultKind::Delay) => {
                    faults.reports_delayed += 1;
                    0
                }
            };
            if round > 1
                && !plan.is_crashed(s, round - 1)
                && plan.report_fault(round - 1, s) == Some(FaultKind::Delay)
            {
                expected += 1;
            }
        }

        seen.iter_mut().for_each(|b| *b = false);
        let mut attendance = 0usize;
        let mut entries = 0u64;
        for _ in 0..expected {
            let Ok(rep) = link.recv_report() else {
                stop = StopReason::TransportLost;
                break 'rounds;
            };
            let s = rep.shard;
            assert!(rep.round <= round, "report from the future");
            entries += rep.body.entries();
            shard_sent[s] = shard_sent[s].max(rep.bytes_sent);
            shard_received[s] = shard_received[s].max(rep.bytes_received);
            if plan.byzantine_spec(s).is_some() {
                faults.byzantine_reports += 1;
            }
            if rep.round < round {
                // A straggler's delayed report: fold it as a re-sync if
                // it is newer than the shard's last accepted state (its
                // fresh successor may already have landed).
                faults.straggler_resyncs += 1;
                total_messages += rep.messages_sent;
                faults.recovered_samples += rep.recovered;
                if rep.round > last_round[s] {
                    match accept_body(&rep, k_slots, partition.range(s).len() as u64) {
                        Some(pairs) => {
                            last_body[s] = pairs.to_vec();
                            last_undecided[s] = rep.undecided;
                            last_round[s] = rep.round;
                        }
                        None => faults.rejected_reports += 1,
                    }
                }
                continue;
            }
            if seen[s] {
                // The duplicate copy: its body entries were counted
                // (that wire cost is real), but its `messages_sent` is
                // the same data-plane tally the first copy already
                // folded — adding it again would fabricate traffic.
                continue;
            }
            seen[s] = true;
            total_messages += rep.messages_sent;
            faults.recovered_samples += rep.recovered;
            match accept_body(&rep, k_slots, partition.range(s).len() as u64) {
                Some(pairs) => {
                    attendance += 1;
                    last_body[s] = pairs.to_vec();
                    last_undecided[s] = rep.undecided;
                    last_round[s] = round;
                }
                None => faults.rejected_reports += 1,
            }
        }
        rounds_run = round;
        report_entries.push(entries);

        // Rebuild the merged (all shards) and honest (non-Byzantine)
        // views from the last accepted bodies. Stale straggler bodies
        // can re-light colors the merged view had retired, hence the
        // revival-tolerant rebuild.
        merged.rebuild_sparse(last_body.iter().map(|b| b.as_slice()));
        honest.rebuild_sparse(
            last_body
                .iter()
                .enumerate()
                .filter(|&(s, _)| plan.byzantine_spec(s).is_none())
                .map(|(_, b)| b.as_slice()),
        );
        let honest_undecided: u64 = (0..shards)
            .filter(|&s| plan.byzantine_spec(s).is_none())
            .map(|s| last_undecided[s])
            .sum();

        if attendance < quorum {
            // The round degraded past the plan's tolerance: record the
            // round and abort rather than fold a minority view.
            stop = StopReason::TooManyFaults;
            trace.push(RoundStats {
                round,
                num_colors: merged.num_colors(),
                max_support: merged.max_support(),
                bias: merged.bias(),
            });
            break;
        }
        if attendance < shards {
            faults.quorum_rounds += 1;
        }
        // Pull/push arbitration over the merged view, exactly as on
        // the strict path (fault plans mandate the batched wire).
        data = resolve_gear(data_gear, arbitrate_gear(&merged, shards, n, h));
        trace.push(RoundStats {
            round,
            num_colors: merged.num_colors(),
            max_support: merged.max_support(),
            bias: merged.bias(),
        });
        if honest_undecided == 0 && honest.is_consensus() {
            consensus_round = Some(round);
            stop = StopReason::Consensus;
            break;
        }
    }
    faults.bytes_sent = shard_sent.iter().sum::<u64>() + link.bytes_sent();
    faults.bytes_received = shard_received.iter().sum::<u64>() + link.bytes_received();
    HorizonOutcome {
        consensus_round,
        rounds_run,
        final_config: merged,
        trace,
        total_messages,
        report_entries,
        stop,
        wire_bytes: faults.bytes_sent,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbreak_core::rules::{ThreeMajority, TwoChoices, UndecidedDynamics, Voter};

    #[test]
    fn cluster_reaches_consensus_three_majority() {
        let start = Configuration::uniform(200, 8);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 1));
        let out = cluster.run_to_consensus(100_000).expect("consensus");
        assert!(out.consensus_round > 0);
        assert_eq!(out.final_config.n(), 200);
        assert!(out.final_config.is_consensus());
        assert_eq!(out.trace.len() as u64, out.consensus_round);
    }

    #[test]
    fn cluster_works_single_shard() {
        let start = Configuration::uniform(64, 4);
        let cluster = Cluster::new(Voter, &start, ClusterConfig::new(1, 2));
        assert!(cluster.run_to_consensus(1_000_000).is_ok());
    }

    #[test]
    fn cluster_works_with_many_shards_and_uneven_ranges() {
        let start = Configuration::uniform(50, 5);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(7, 3));
        let out = cluster.run_to_consensus(100_000).expect("consensus");
        assert_eq!(out.final_config.n(), 50);
    }

    #[test]
    fn cluster_respects_round_cap() {
        let start = Configuration::singletons(512);
        let cluster = Cluster::new(TwoChoices, &start, ClusterConfig::new(4, 4));
        let err = cluster.run_to_consensus(2).expect_err("2 rounds cannot suffice");
        assert_eq!(err.stop, StopReason::HorizonExhausted);
    }

    #[test]
    fn cluster_is_deterministic_per_seed_in_both_wire_modes() {
        let start = Configuration::uniform(120, 6);
        for wire in [WireMode::Batched, WireMode::PerEntry] {
            let run = |seed| {
                let cfg = ClusterConfig::new(3, seed).with_wire_mode(wire);
                let cluster = Cluster::new(ThreeMajority, &start, cfg);
                cluster.run_to_consensus(100_000).expect("consensus").consensus_round
            };
            assert_eq!(run(42), run(42), "{wire:?} must be deterministic per seed");
        }
    }

    #[test]
    fn cluster_handles_undecided_dynamics() {
        let start = Configuration::from_counts(vec![80, 20]);
        let cluster = Cluster::new(UndecidedDynamics, &start, ClusterConfig::new(4, 5));
        let out = cluster.run_to_consensus(1_000_000).expect("consensus");
        assert!(out.final_config.is_consensus());
    }

    #[test]
    fn cluster_handles_undecided_dynamics_per_entry_and_delta() {
        let start = Configuration::from_counts(vec![80, 20]);
        for (wire, report) in
            [(WireMode::PerEntry, ReportMode::Sparse), (WireMode::Batched, ReportMode::Delta)]
        {
            let cfg = ClusterConfig::new(4, 5).with_wire_mode(wire).with_report_mode(report);
            let cluster = Cluster::new(UndecidedDynamics, &start, cfg);
            let out = cluster.run_to_consensus(1_000_000).expect("consensus");
            assert!(out.final_config.is_consensus(), "{wire:?}/{report:?}");
        }
    }

    #[test]
    fn population_is_conserved_every_round() {
        let start = Configuration::uniform(90, 3);
        let cluster = Cluster::new(Voter, &start, ClusterConfig::new(3, 6));
        let out = cluster.run_to_consensus(1_000_000).expect("consensus");
        // Trace max_support never exceeds n; final mass intact.
        assert!(out.trace.rounds().iter().all(|r| r.max_support <= 90));
        assert_eq!(out.final_config.n(), 90);
    }

    #[test]
    fn per_entry_message_accounting_matches_protocol_cost() {
        // Each round: every node sends h requests and receives h replies,
        // so total messages = rounds * 2 * n * h exactly — intra-shard
        // deliveries included, no coalescing.
        let n = 120u64;
        let start = Configuration::uniform(n, 4);
        let cfg = ClusterConfig::new(3, 8).with_wire_mode(WireMode::PerEntry);
        let cluster = Cluster::new(ThreeMajority, &start, cfg);
        let out = cluster.run_to_consensus(100_000).expect("consensus");
        assert_eq!(out.total_messages, out.consensus_round * 2 * n * 3);
    }

    #[test]
    fn batched_wire_moves_fewer_entries_than_per_entry() {
        // The aggregate data plane is bounded by the per-entry cost
        // model (a palette never carries more entries than the pulls it
        // answers) and collapses far below it once the per-pair draw
        // count dwarfs the distinct-opinion count, where the serving
        // side switches from raw palettes to run-length histograms.
        let n = 4096u64;
        let start = Configuration::uniform(n, 8);
        let run = |wire| {
            let cfg = ClusterConfig::new(4, 9).with_wire_mode(wire);
            Cluster::new(ThreeMajority, &start, cfg).run_horizon(40)
        };
        let batched = run(WireMode::Batched);
        let per_entry = run(WireMode::PerEntry);
        assert_eq!(per_entry.total_messages, per_entry.rounds_run * 2 * n * 3);
        let batched_per_round = batched.total_messages / batched.rounds_run;
        assert!(
            batched_per_round < per_entry.total_messages / per_entry.rounds_run / 4,
            "batched wire should collapse the per-round entry count \
             (batched {batched_per_round}/round vs per-entry {}/round)",
            2 * n * 3
        );
    }

    #[test]
    fn report_modes_run_the_same_trajectory_batched() {
        // The report wire format never touches the protocol RNG streams,
        // so same seed + same wire mode ⇒ identical realized process.
        for (counts, shards, seed) in [
            (Configuration::uniform(200, 8).counts().to_vec(), 3usize, 11u64),
            (vec![1; 64], 4, 12), // k = n singleton start
        ] {
            let start = Configuration::from_counts(counts);
            let run = |mode| {
                Cluster::new(
                    ThreeMajority,
                    &start,
                    ClusterConfig::new(shards, seed).with_report_mode(mode),
                )
                .run_to_consensus(1_000_000)
                .expect("consensus")
            };
            let sparse = run(ReportMode::Sparse);
            let dense = run(ReportMode::Dense);
            let delta = run(ReportMode::Delta);
            assert_eq!(sparse.consensus_round, dense.consensus_round);
            assert_eq!(sparse.trace, dense.trace);
            assert_eq!(sparse.final_config, dense.final_config);
            assert_eq!(sparse.total_messages, dense.total_messages);
            assert_eq!(sparse.consensus_round, delta.consensus_round);
            assert_eq!(sparse.trace, delta.trace);
            assert_eq!(sparse.final_config, delta.final_config);
            assert_eq!(sparse.total_messages, delta.total_messages);
        }
    }

    #[test]
    fn report_modes_run_the_same_trajectory_per_entry() {
        let start = Configuration::from_counts(vec![1; 64]);
        let run = |mode| {
            let cfg =
                ClusterConfig::new(4, 12).with_report_mode(mode).with_wire_mode(WireMode::PerEntry);
            Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus")
        };
        let sparse = run(ReportMode::Sparse);
        let dense = run(ReportMode::Dense);
        let delta = run(ReportMode::Delta);
        assert_eq!(sparse.consensus_round, dense.consensus_round);
        assert_eq!(sparse.trace, dense.trace);
        assert_eq!(sparse.final_config, dense.final_config);
        assert_eq!(sparse.consensus_round, delta.consensus_round);
        assert_eq!(sparse.trace, delta.trace);
        assert_eq!(sparse.final_config, delta.final_config);
    }

    #[test]
    fn dense_and_sparse_agree_under_undecided_dynamics() {
        // Mass-changing reports (shards holding back undecided nodes)
        // exercise merge_sparse's and apply_deltas' population
        // re-derivation.
        let start = Configuration::from_counts(vec![60, 40]);
        let run = |mode| {
            Cluster::new(
                UndecidedDynamics,
                &start,
                ClusterConfig::new(4, 13).with_report_mode(mode),
            )
            .run_to_consensus(1_000_000)
            .expect("consensus")
        };
        let sparse = run(ReportMode::Sparse);
        let dense = run(ReportMode::Dense);
        let delta = run(ReportMode::Delta);
        assert_eq!(sparse.consensus_round, dense.consensus_round);
        assert_eq!(sparse.trace, dense.trace);
        assert_eq!(sparse.final_config, dense.final_config);
        assert_eq!(sparse.trace, delta.trace);
        assert_eq!(sparse.final_config, delta.final_config);
    }

    #[test]
    fn delta_reports_collapse_to_changed_set_in_stalled_regime() {
        // 2-Choices from the k = n singleton start is the Theorem-5
        // stalled regime: Θ(n) colors stay alive (absolute sparse
        // reports stay O(local_n)) while only O(1) nodes switch opinion
        // per round (P[both samples agree] ≈ Σ xⱼ² ≈ 1/n per node). The
        // delta control plane must collapse per-round report entries to
        // O(#changed) there, on the *identical* realized trajectory.
        let n = 4096u64;
        let start = Configuration::singletons(n);
        let run = |mode| {
            let cfg = ClusterConfig::new(8, 2024).with_report_mode(mode);
            Cluster::new(TwoChoices, &start, cfg).run_horizon(40)
        };
        let sparse = run(ReportMode::Sparse);
        let delta = run(ReportMode::Delta);
        assert_eq!(sparse.trace, delta.trace, "report format must not change the process");
        assert_eq!(sparse.final_config, delta.final_config);

        // Skip the first rounds (the arbitrator starts absolute); after
        // that, delta rounds carry O(#changed) entries while sparse
        // rounds stay O(#occupied) ≈ n.
        let tail_mean = |v: &[u64]| {
            let tail = &v[5..];
            tail.iter().sum::<u64>() as f64 / tail.len() as f64
        };
        let sparse_mean = tail_mean(&sparse.report_entries);
        let delta_mean = tail_mean(&delta.report_entries);
        assert!(
            sparse_mean > n as f64 / 2.0,
            "sparse reports should stay O(#occupied) ≈ n (got {sparse_mean}/round)"
        );
        assert!(
            delta_mean * 10.0 < sparse_mean,
            "delta reports should collapse to O(#changed): \
             {delta_mean}/round vs sparse {sparse_mean}/round"
        );
    }

    #[test]
    fn consume_modes_are_deterministic_and_reach_consensus() {
        // Both consumption modes on the batched wire, for a multiset
        // rule (3-Majority), a single-peer rule (Voter), and the
        // own-state-reading 2-Median.
        use symbreak_core::rules::TwoMedian;
        let start = Configuration::uniform(120, 6);
        for consume in [ConsumeMode::Native, ConsumeMode::Ordered] {
            let run = |seed| {
                let cfg = ClusterConfig::new(3, seed).with_consume_mode(consume);
                let cluster = Cluster::new(ThreeMajority, &start, cfg);
                cluster.run_to_consensus(100_000).expect("consensus").consensus_round
            };
            assert_eq!(run(42), run(42), "{consume:?} must be deterministic per seed");
        }
        for consume in [ConsumeMode::Native, ConsumeMode::Ordered] {
            let cfg = ClusterConfig::new(4, 7).with_consume_mode(consume);
            let out = Cluster::new(Voter, &Configuration::uniform(64, 4), cfg)
                .run_to_consensus(1_000_000)
                .expect("consensus");
            assert!(out.final_config.is_consensus(), "Voter/{consume:?}");
            let cfg = ClusterConfig::new(4, 8).with_consume_mode(consume);
            let out = Cluster::new(TwoMedian, &Configuration::uniform(64, 5), cfg)
                .run_to_consensus(1_000_000)
                .expect("consensus");
            assert!(out.final_config.is_consensus(), "2-Median/{consume:?}");
        }
    }

    #[test]
    fn native_report_modes_run_the_same_trajectory() {
        // The report format still never touches the data-plane RNG
        // streams under native consumption.
        let start = Configuration::from_counts(vec![1; 64]);
        let run = |mode| {
            Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 12).with_report_mode(mode))
                .run_to_consensus(1_000_000)
                .expect("consensus")
        };
        let sparse = run(ReportMode::Sparse);
        let delta = run(ReportMode::Delta);
        assert_eq!(sparse.trace, delta.trace);
        assert_eq!(sparse.final_config, delta.final_config);
    }

    #[test]
    fn run_horizon_reports_capped_trajectories() {
        let start = Configuration::singletons(128);
        let cfg = ClusterConfig::new(4, 9).with_wire_mode(WireMode::PerEntry);
        let cluster = Cluster::new(Voter, &start, cfg);
        let out = cluster.run_horizon(5);
        assert_eq!(out.rounds_run, 5);
        assert_eq!(out.consensus_round, None, "128 singletons cannot converge in 5 rounds");
        assert_eq!(out.trace.len(), 5);
        assert_eq!(out.final_config.n(), 128);
        assert_eq!(out.total_messages, 5 * 2 * 128);
        assert_eq!(out.report_entries.len(), 5);
        // Occupancy only shrinks along the trajectory.
        let colors: Vec<usize> = out.trace.rounds().iter().map(|r| r.num_colors).collect();
        assert!(colors.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn run_horizon_stops_early_at_consensus() {
        let start = Configuration::uniform(60, 3);
        let out =
            Cluster::new(ThreeMajority, &start, ClusterConfig::new(3, 10)).run_horizon(100_000);
        let round = out.consensus_round.expect("consensus well before the cap");
        assert_eq!(out.rounds_run, round);
        assert_eq!(out.trace.len() as u64, round);
        assert!(out.final_config.is_consensus());
    }

    #[test]
    fn rounds_without_cross_shard_replies_terminate() {
        // With n = 2 nodes on 2 shards and h = 1, both nodes sample their
        // own shard with probability 1/4 per round, so runs repeatedly
        // hit rounds where *zero* reply batches cross shard boundaries —
        // exactly the case the per-entry protocol must survive without
        // the (skipped) empty reply batches. Replies are counted by
        // entry, not by batch, so every one of these runs must still
        // terminate.
        for seed in 0..40 {
            let start = Configuration::uniform(2, 2);
            let cfg = ClusterConfig::new(2, seed).with_wire_mode(WireMode::PerEntry);
            let cluster = Cluster::new(Voter, &start, cfg);
            let out = cluster.run_to_consensus(100_000).expect("consensus despite empty replies");
            assert!(out.final_config.is_consensus());
        }
    }

    #[test]
    fn batched_tiny_clusters_terminate() {
        // The batched analogue: n = 2 on 2 shards hits rounds where a
        // peer's pull batch is empty (zero draws land on it) — survived
        // via the always-sent (possibly empty) batches that close both
        // phases by count.
        for seed in 0..40 {
            let start = Configuration::uniform(2, 2);
            let cluster = Cluster::new(Voter, &start, ClusterConfig::new(2, seed));
            let out = cluster.run_to_consensus(100_000).expect("consensus");
            assert!(out.final_config.is_consensus());
        }
    }

    #[test]
    #[should_panic(expected = "one node per shard")]
    fn more_shards_than_nodes_panics() {
        let start = Configuration::uniform(3, 3);
        Cluster::new(Voter, &start, ClusterConfig::new(8, 0));
    }
}
