//! Compact, versioned byte encoding for the cluster wire protocol.
//!
//! Every message the runtime moves — shard↔shard data-plane traffic
//! ([`ShardMessage`]), coordinator control ([`Control`]), and shard
//! reports ([`ShardReport`]) — has exactly one frame encoding, used
//! verbatim by the socket transport and used *by length only* by the
//! channel transport (which keeps moving Rust enums in-process but
//! accounts each message at its encoded size, so the two backends
//! report identical byte counts for identical trajectories).
//!
//! # Frame layout
//!
//! Little-endian throughout. Multi-byte integers are LEB128 varints
//! unless stated otherwise; `i64` values are zigzag-mapped first;
//! `f64` values travel as their fixed 8-byte IEEE-754 bit patterns
//! (fault rates must survive the wire bit-exactly — the stateless
//! fault hashes key off them indirectly through the plan seed, and an
//! approximate rate would desynchronize sender and receiver).
//!
//! ```text
//! +-------+---------+------+---------------+---------------+---------+
//! | magic | version | kind | round varint  | len varint    | payload |
//! | 2 B   | 1 B     | 1 B  | 1–10 B        | 1–10 B        | len B   |
//! +-------+---------+------+---------------+---------------+---------+
//! ```
//!
//! * `magic` — `0x53 0x42` (`"SB"`); anything else is
//!   [`WireError::BadMagic`].
//! * `version` — [`WIRE_VERSION`]; mismatches are rejected, not
//!   negotiated (both ends of a fleet come from one build).
//! * `kind` — the [`FrameKind`] discriminant.
//! * `round` — the synchronous round the message belongs to. This is
//!   the tag the fault layer's stateless hash decisions and the
//!   round-parking receive loops key off, so it lives in the header,
//!   not the payload; frames without round semantics (per-entry
//!   batches, handshake frames, `Stop`) carry `0`.
//! * `len` — payload byte length, so a reader can frame a stream
//!   without understanding every kind.
//!
//! [`Opinion`]s are varints under the map `UNDECIDED → 0`,
//! `color i → i + 1`: small color indices (the common case after
//! concentration) cost one byte, and the undecided sentinel needs no
//! out-of-band flag. Per-variant payload layouts are documented in
//! `docs/ARCHITECTURE.md` and pinned by the round-trip proptests.

use std::io::{self, Read, Write};

use symbreak_core::{Opinion, RoundStateMode};

use crate::cluster::{ConsumeMode, ReportMode, ShardRepr, WireMode};
use crate::fault::{ByzantineSpec, CorruptionKind, CrashSpec, FaultPlan};
use crate::message::{
    Control, DataFormat, OpinionPalette, PullBatch, Reply, ReportBody, ReportFormat, Request,
    ShardMessage, ShardReport, TargetRun,
};

/// The two magic bytes opening every frame (`"SB"`).
pub const WIRE_MAGIC: [u8; 2] = [0x53, 0x42];
/// The encoding version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Frame type discriminant (the `kind` header byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// [`ShardMessage::Requests`].
    Requests = 1,
    /// [`ShardMessage::Replies`].
    Replies = 2,
    /// [`ShardMessage::Pull`].
    Pull = 3,
    /// [`ShardMessage::Palette`].
    Palette = 4,
    /// [`ShardReport`].
    Report = 5,
    /// [`Control::Round`].
    Round = 6,
    /// [`Control::Rejoin`].
    Rejoin = 7,
    /// [`Control::Stop`].
    Stop = 8,
    /// Socket bootstrap: worker → coordinator identification.
    Hello = 9,
    /// Socket bootstrap: coordinator → worker spec + seed state.
    Init = 10,
    /// Socket bootstrap: worker → coordinator mesh-complete.
    Ready = 11,
    /// Socket bootstrap: worker → worker mesh identification.
    PeerHello = 12,
}

impl FrameKind {
    fn from_u8(b: u8) -> Result<Self, WireError> {
        Ok(match b {
            1 => FrameKind::Requests,
            2 => FrameKind::Replies,
            3 => FrameKind::Pull,
            4 => FrameKind::Palette,
            5 => FrameKind::Report,
            6 => FrameKind::Round,
            7 => FrameKind::Rejoin,
            8 => FrameKind::Stop,
            9 => FrameKind::Hello,
            10 => FrameKind::Init,
            11 => FrameKind::Ready,
            12 => FrameKind::PeerHello,
            other => return Err(WireError::UnknownKind(other)),
        })
    }
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`WIRE_MAGIC`].
    BadMagic,
    /// The version byte did not match [`WIRE_VERSION`].
    BadVersion(u8),
    /// The kind byte named no known [`FrameKind`].
    UnknownKind(u8),
    /// The buffer ended before the encoding did.
    Truncated,
    /// The bytes framed correctly but violated a payload invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One decoded frame: the header fields plus the raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// The round tag from the header (`0` for untagged kinds).
    pub round: u64,
    /// The payload bytes (layout per [`Frame::kind`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// The number of bytes this frame occupied on the wire (header +
    /// varints + payload) — what a receiver adds to its byte counters
    /// after [`read_frame`], which hands back only the decoded fields.
    pub fn wire_len(&self) -> u64 {
        frame_len(self.round, self.payload.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// Primitive writers: LEB128 varints, zigzag, opinions.
// ---------------------------------------------------------------------------

/// Appends `v` as a LEB128 varint (7 bits per byte, high bit = more).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The encoded size of `v` as a varint (1–10 bytes).
pub fn varint_len(v: u64) -> u64 {
    // bits / 7, rounded up, with 0 costing one byte.
    (64 - v.max(1).leading_zeros() as u64).div_ceil(7).max(1)
}

/// Zigzag map `i64 → u64` (small magnitudes stay small).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The wire integer for an opinion: `UNDECIDED → 0`, `color i → i + 1`.
fn opinion_code(o: Opinion) -> u64 {
    if o.is_undecided() {
        0
    } else {
        o.index() as u64 + 1
    }
}

fn opinion_from_code(code: u64) -> Result<Opinion, WireError> {
    if code == 0 {
        Ok(Opinion::UNDECIDED)
    } else {
        let idx = code - 1;
        if idx >= u64::from(u32::MAX) {
            return Err(WireError::Malformed("opinion index out of range"));
        }
        Ok(Opinion::new(idx as u32))
    }
}

// ---------------------------------------------------------------------------
// Slice reader.
// ---------------------------------------------------------------------------

/// A cursor over a payload slice; every read is bounds-checked into
/// [`WireError::Truncated`].
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(WireError::Malformed("varint overflows u64"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Malformed("varint overflows u64"));
            }
        }
    }

    fn f64_bits(&mut self) -> Result<f64, WireError> {
        if self.buf.len() - self.pos < 8 {
            return Err(WireError::Truncated);
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn opinion(&mut self) -> Result<Opinion, WireError> {
        opinion_from_code(self.varint()?)
    }

    /// A decoded count that will drive an allocation: bounded against
    /// the remaining payload so a corrupt length cannot OOM the reader
    /// (every counted item costs at least one byte).
    fn bounded_count(&mut self) -> Result<usize, WireError> {
        let c = self.varint()?;
        if c > (self.buf.len() - self.pos) as u64 {
            return Err(WireError::Truncated);
        }
        Ok(c as usize)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing payload bytes"))
        }
    }
}

// ---------------------------------------------------------------------------
// Frame assembly and stream I/O.
// ---------------------------------------------------------------------------

/// Header size up to and including the kind byte.
const FIXED_HEADER: u64 = 4;

/// The full frame size for a payload of `payload_len` bytes tagged with
/// `round`.
pub fn frame_len(round: u64, payload_len: u64) -> u64 {
    FIXED_HEADER + varint_len(round) + varint_len(payload_len) + payload_len
}

/// Appends a whole frame: header + the payload bytes produced by `body`.
fn put_frame(out: &mut Vec<u8>, kind: FrameKind, round: u64, body: impl FnOnce(&mut Vec<u8>)) {
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind as u8);
    put_varint(out, round);
    // Payload length is a varint, so the payload is built in a scratch
    // tail and the length spliced in front of it.
    let mark = out.len();
    body(out);
    let payload_len = (out.len() - mark) as u64;
    let mut len_prefix = [0u8; 10];
    let mut tmp = Vec::with_capacity(10);
    put_varint(&mut tmp, payload_len);
    len_prefix[..tmp.len()].copy_from_slice(&tmp);
    out.splice(mark..mark, len_prefix[..tmp.len()].iter().copied());
}

/// Splits one frame off the front of `buf`: returns the frame and the
/// number of bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    if buf[..2] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut r = Reader::new(buf);
    r.pos = 2;
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(r.u8()?)?;
    let round = r.varint()?;
    let len = r.varint()?;
    if len > (buf.len() - r.pos) as u64 {
        return Err(WireError::Truncated);
    }
    let start = r.pos;
    let end = start + len as usize;
    Ok((Frame { kind, round, payload: buf[start..end].to_vec() }, end))
}

/// Reads one frame from a blocking stream. `Ok(None)` is a clean EOF at
/// a frame boundary; corruption and mid-frame EOFs are `Err`.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut head = [0u8; 4];
    // Distinguish boundary EOF (peer closed between frames) from a
    // truncated header.
    let mut got = 0usize;
    while got < head.len() {
        match stream.read(&mut head[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated header")),
            n => got += n,
        }
    }
    if head[..2] != WIRE_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, WireError::BadMagic));
    }
    if head[2] != WIRE_VERSION {
        return Err(io::Error::new(io::ErrorKind::InvalidData, WireError::BadVersion(head[2])));
    }
    let kind =
        FrameKind::from_u8(head[3]).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let round = read_varint(stream)?;
    let len = read_varint(stream)?;
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(Frame { kind, round, payload }))
}

fn read_varint(stream: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        stream.read_exact(&mut b)?;
        if shift == 63 && b[0] > 1 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
        v |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflows u64"));
        }
    }
}

/// Writes pre-encoded frame bytes to a blocking stream.
pub fn write_frame(stream: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}

// ---------------------------------------------------------------------------
// ShardMessage.
// ---------------------------------------------------------------------------

/// Encodes a [`ShardMessage`] as one complete frame appended to `out`.
pub fn encode_shard_message(msg: &ShardMessage, out: &mut Vec<u8>) {
    match msg {
        ShardMessage::Requests(batch) => put_frame(out, FrameKind::Requests, 0, |b| {
            put_varint(b, batch.len() as u64);
            for req in batch {
                put_varint(b, u64::from(req.target));
                put_varint(b, u64::from(req.requester));
                b.push(req.slot);
            }
        }),
        ShardMessage::Replies(batch) => put_frame(out, FrameKind::Replies, 0, |b| {
            put_varint(b, batch.len() as u64);
            for rep in batch {
                put_varint(b, u64::from(rep.requester));
                b.push(rep.slot);
                put_varint(b, opinion_code(rep.opinion));
            }
        }),
        ShardMessage::Pull(batch) => put_frame(out, FrameKind::Pull, batch.round, |b| {
            put_varint(b, u64::from(batch.origin));
            put_varint(b, batch.target_runs.len() as u64);
            for run in &batch.target_runs {
                put_varint(b, u64::from(run.start));
                put_varint(b, u64::from(run.len));
                put_varint(b, run.count);
            }
        }),
        ShardMessage::Palette(p) => put_frame(out, FrameKind::Palette, p.round, |b| {
            put_varint(b, u64::from(p.origin));
            put_varint(b, p.palette.len() as u64);
            for &o in &p.palette {
                put_varint(b, opinion_code(o));
            }
            put_varint(b, p.runs.len() as u64);
            for &(pi, c) in &p.runs {
                put_varint(b, u64::from(pi));
                put_varint(b, c);
            }
        }),
    }
}

/// The exact byte length [`encode_shard_message`] would produce,
/// without encoding — the channel transport's accounting primitive
/// (pinned equal to the encoder by proptest).
pub fn shard_message_len(msg: &ShardMessage) -> u64 {
    let (round, payload) = match msg {
        ShardMessage::Requests(batch) => {
            let mut p = varint_len(batch.len() as u64);
            for req in batch {
                p += varint_len(u64::from(req.target)) + varint_len(u64::from(req.requester)) + 1;
            }
            (0, p)
        }
        ShardMessage::Replies(batch) => {
            let mut p = varint_len(batch.len() as u64);
            for rep in batch {
                p += varint_len(u64::from(rep.requester))
                    + 1
                    + varint_len(opinion_code(rep.opinion));
            }
            (0, p)
        }
        ShardMessage::Pull(batch) => {
            let mut p =
                varint_len(u64::from(batch.origin)) + varint_len(batch.target_runs.len() as u64);
            for run in &batch.target_runs {
                p += varint_len(u64::from(run.start))
                    + varint_len(u64::from(run.len))
                    + varint_len(run.count);
            }
            (batch.round, p)
        }
        ShardMessage::Palette(pal) => {
            let mut p = varint_len(u64::from(pal.origin)) + varint_len(pal.palette.len() as u64);
            for &o in &pal.palette {
                p += varint_len(opinion_code(o));
            }
            p += varint_len(pal.runs.len() as u64);
            for &(pi, c) in &pal.runs {
                p += varint_len(u64::from(pi)) + varint_len(c);
            }
            (pal.round, p)
        }
    };
    frame_len(round, payload)
}

/// Decodes a [`ShardMessage`] frame.
pub fn decode_shard_message(frame: &Frame) -> Result<ShardMessage, WireError> {
    let mut r = Reader::new(&frame.payload);
    let msg = match frame.kind {
        FrameKind::Requests => {
            let count = r.bounded_count()?;
            let mut batch = Vec::with_capacity(count);
            for _ in 0..count {
                let target = r.varint()?;
                let requester = r.varint()?;
                let slot = r.u8()?;
                if target > u64::from(u32::MAX) || requester > u64::from(u32::MAX) {
                    return Err(WireError::Malformed("node id out of range"));
                }
                batch.push(Request { target: target as u32, requester: requester as u32, slot });
            }
            ShardMessage::Requests(batch)
        }
        FrameKind::Replies => {
            let count = r.bounded_count()?;
            let mut batch = Vec::with_capacity(count);
            for _ in 0..count {
                let requester = r.varint()?;
                let slot = r.u8()?;
                let opinion = r.opinion()?;
                if requester > u64::from(u32::MAX) {
                    return Err(WireError::Malformed("node id out of range"));
                }
                batch.push(Reply { requester: requester as u32, slot, opinion });
            }
            ShardMessage::Replies(batch)
        }
        FrameKind::Pull => {
            let origin = r.varint()?;
            let count = r.bounded_count()?;
            let mut target_runs = Vec::with_capacity(count);
            for _ in 0..count {
                let start = r.varint()?;
                let len = r.varint()?;
                let c = r.varint()?;
                if start > u64::from(u32::MAX) || len > u64::from(u32::MAX) {
                    return Err(WireError::Malformed("target run out of range"));
                }
                target_runs.push(TargetRun { start: start as u32, len: len as u32, count: c });
            }
            if origin > u64::from(u32::MAX) {
                return Err(WireError::Malformed("origin out of range"));
            }
            ShardMessage::Pull(PullBatch { origin: origin as u32, round: frame.round, target_runs })
        }
        FrameKind::Palette => {
            let origin = r.varint()?;
            let pcount = r.bounded_count()?;
            let mut palette = Vec::with_capacity(pcount);
            for _ in 0..pcount {
                palette.push(r.opinion()?);
            }
            let rcount = r.bounded_count()?;
            let mut runs = Vec::with_capacity(rcount);
            for _ in 0..rcount {
                let pi = r.varint()?;
                let c = r.varint()?;
                if pi >= palette.len() as u64 {
                    return Err(WireError::Malformed("palette run index out of range"));
                }
                runs.push((pi as u32, c));
            }
            if origin > u64::from(u32::MAX) {
                return Err(WireError::Malformed("origin out of range"));
            }
            ShardMessage::Palette(OpinionPalette {
                origin: origin as u32,
                round: frame.round,
                palette,
                runs,
            })
        }
        _ => return Err(WireError::Malformed("not a data-plane frame")),
    };
    r.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Control.
// ---------------------------------------------------------------------------

fn report_format_code(f: ReportFormat) -> u8 {
    match f {
        ReportFormat::Sparse => 0,
        ReportFormat::Delta => 1,
        ReportFormat::Dense => 2,
    }
}

fn data_format_code(d: DataFormat) -> u8 {
    match d {
        DataFormat::Pull => 0,
        DataFormat::Push => 1,
    }
}

/// Encodes a [`Control`] message as one complete frame appended to `out`.
pub fn encode_control(ctrl: &Control, out: &mut Vec<u8>) {
    match ctrl {
        Control::Round { round, report, data } => put_frame(out, FrameKind::Round, *round, |b| {
            b.push(report_format_code(*report));
            b.push(data_format_code(*data));
        }),
        Control::Rejoin { round, body, undecided } => {
            put_frame(out, FrameKind::Rejoin, *round, |b| {
                put_varint(b, body.len() as u64);
                for &(slot, count) in body {
                    put_varint(b, u64::from(slot));
                    put_varint(b, count);
                }
                put_varint(b, *undecided);
            })
        }
        Control::Stop => put_frame(out, FrameKind::Stop, 0, |_| {}),
    }
}

/// The exact byte length [`encode_control`] would produce.
pub fn control_len(ctrl: &Control) -> u64 {
    match ctrl {
        Control::Round { round, .. } => frame_len(*round, 2),
        Control::Rejoin { round, body, undecided } => {
            let mut p = varint_len(body.len() as u64);
            for &(slot, count) in body {
                p += varint_len(u64::from(slot)) + varint_len(count);
            }
            p += varint_len(*undecided);
            frame_len(*round, p)
        }
        Control::Stop => frame_len(0, 0),
    }
}

/// Decodes a [`Control`] frame.
pub fn decode_control(frame: &Frame) -> Result<Control, WireError> {
    let mut r = Reader::new(&frame.payload);
    let ctrl = match frame.kind {
        FrameKind::Round => {
            let report = match r.u8()? {
                0 => ReportFormat::Sparse,
                1 => ReportFormat::Delta,
                2 => ReportFormat::Dense,
                _ => return Err(WireError::Malformed("unknown report format")),
            };
            let data = match r.u8()? {
                0 => DataFormat::Pull,
                1 => DataFormat::Push,
                _ => return Err(WireError::Malformed("unknown data format")),
            };
            Control::Round { round: frame.round, report, data }
        }
        FrameKind::Rejoin => {
            let count = r.bounded_count()?;
            let mut body = Vec::with_capacity(count);
            for _ in 0..count {
                let slot = r.varint()?;
                let c = r.varint()?;
                if slot > u64::from(u32::MAX) {
                    return Err(WireError::Malformed("slot out of range"));
                }
                body.push((slot as u32, c));
            }
            let undecided = r.varint()?;
            Control::Rejoin { round: frame.round, body, undecided }
        }
        FrameKind::Stop => Control::Stop,
        _ => return Err(WireError::Malformed("not a control frame")),
    };
    r.finish()?;
    Ok(ctrl)
}

// ---------------------------------------------------------------------------
// ShardReport.
// ---------------------------------------------------------------------------

/// Encodes a [`ShardReport`] as one complete frame appended to `out`.
pub fn encode_report(rep: &ShardReport, out: &mut Vec<u8>) {
    put_frame(out, FrameKind::Report, rep.round, |b| {
        put_varint(b, rep.shard as u64);
        match &rep.body {
            ReportBody::Sparse(pairs) => {
                b.push(0);
                put_varint(b, pairs.len() as u64);
                for &(slot, count) in pairs {
                    put_varint(b, u64::from(slot));
                    put_varint(b, count);
                }
            }
            ReportBody::Delta(pairs) => {
                b.push(1);
                put_varint(b, pairs.len() as u64);
                for &(slot, delta) in pairs {
                    put_varint(b, u64::from(slot));
                    put_varint(b, zigzag(delta));
                }
            }
            ReportBody::Dense(counts) => {
                b.push(2);
                put_varint(b, counts.len() as u64);
                for &c in counts {
                    put_varint(b, c);
                }
            }
        }
        put_varint(b, rep.undecided);
        put_varint(b, rep.messages_sent);
        put_varint(b, rep.recovered);
        match rep.changed_slots {
            None => b.push(0),
            Some(c) => {
                b.push(1);
                put_varint(b, c);
            }
        }
        put_varint(b, rep.bytes_sent);
        put_varint(b, rep.bytes_received);
    });
}

/// The exact byte length [`encode_report`] would produce.
pub fn report_len(rep: &ShardReport) -> u64 {
    let mut p = varint_len(rep.shard as u64) + 1;
    match &rep.body {
        ReportBody::Sparse(pairs) => {
            p += varint_len(pairs.len() as u64);
            for &(slot, count) in pairs {
                p += varint_len(u64::from(slot)) + varint_len(count);
            }
        }
        ReportBody::Delta(pairs) => {
            p += varint_len(pairs.len() as u64);
            for &(slot, delta) in pairs {
                p += varint_len(u64::from(slot)) + varint_len(zigzag(delta));
            }
        }
        ReportBody::Dense(counts) => {
            p += varint_len(counts.len() as u64);
            for &c in counts {
                p += varint_len(c);
            }
        }
    }
    p += varint_len(rep.undecided) + varint_len(rep.messages_sent) + varint_len(rep.recovered);
    p += match rep.changed_slots {
        None => 1,
        Some(c) => 1 + varint_len(c),
    };
    p += varint_len(rep.bytes_sent) + varint_len(rep.bytes_received);
    frame_len(rep.round, p)
}

/// Decodes a [`ShardReport`] frame.
pub fn decode_report(frame: &Frame) -> Result<ShardReport, WireError> {
    if frame.kind != FrameKind::Report {
        return Err(WireError::Malformed("not a report frame"));
    }
    let mut r = Reader::new(&frame.payload);
    let shard = r.varint()?;
    let body = match r.u8()? {
        0 => {
            let count = r.bounded_count()?;
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let slot = r.varint()?;
                let c = r.varint()?;
                if slot > u64::from(u32::MAX) {
                    return Err(WireError::Malformed("slot out of range"));
                }
                pairs.push((slot as u32, c));
            }
            ReportBody::Sparse(pairs)
        }
        1 => {
            let count = r.bounded_count()?;
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let slot = r.varint()?;
                let d = r.varint()?;
                if slot > u64::from(u32::MAX) {
                    return Err(WireError::Malformed("slot out of range"));
                }
                pairs.push((slot as u32, unzigzag(d)));
            }
            ReportBody::Delta(pairs)
        }
        2 => {
            let count = r.bounded_count()?;
            let mut counts = Vec::with_capacity(count);
            for _ in 0..count {
                counts.push(r.varint()?);
            }
            ReportBody::Dense(counts)
        }
        _ => return Err(WireError::Malformed("unknown report body kind")),
    };
    let undecided = r.varint()?;
    let messages_sent = r.varint()?;
    let recovered = r.varint()?;
    let changed_slots = match r.u8()? {
        0 => None,
        1 => Some(r.varint()?),
        _ => return Err(WireError::Malformed("bad option tag")),
    };
    let bytes_sent = r.varint()?;
    let bytes_received = r.varint()?;
    r.finish()?;
    Ok(ShardReport {
        shard: shard as usize,
        round: frame.round,
        body,
        undecided,
        messages_sent,
        recovered,
        changed_slots,
        bytes_sent,
        bytes_received,
    })
}

// ---------------------------------------------------------------------------
// Socket bootstrap frames (Hello / Init / Ready / PeerHello).
// ---------------------------------------------------------------------------

/// The worker → coordinator identification frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hello {
    pub shard: usize,
    /// The worker's own listener address, in `unix:`/`tcp:` string form.
    pub peer_addr: String,
}

pub(crate) fn encode_hello(h: &Hello, out: &mut Vec<u8>) {
    put_frame(out, FrameKind::Hello, 0, |b| {
        put_varint(b, h.shard as u64);
        put_varint(b, h.peer_addr.len() as u64);
        b.extend_from_slice(h.peer_addr.as_bytes());
    });
}

pub(crate) fn decode_hello(frame: &Frame) -> Result<Hello, WireError> {
    if frame.kind != FrameKind::Hello {
        return Err(WireError::Malformed("not a hello frame"));
    }
    let mut r = Reader::new(&frame.payload);
    let shard = r.varint()? as usize;
    let len = r.bounded_count()?;
    let bytes = frame.payload[r.pos..r.pos + len].to_vec();
    r.pos += len;
    let peer_addr =
        String::from_utf8(bytes).map_err(|_| WireError::Malformed("non-utf8 address"))?;
    r.finish()?;
    Ok(Hello { shard, peer_addr })
}

pub(crate) fn encode_peer_hello(shard: usize, out: &mut Vec<u8>) {
    put_frame(out, FrameKind::PeerHello, 0, |b| put_varint(b, shard as u64));
}

pub(crate) fn decode_peer_hello(frame: &Frame) -> Result<usize, WireError> {
    if frame.kind != FrameKind::PeerHello {
        return Err(WireError::Malformed("not a peer-hello frame"));
    }
    let mut r = Reader::new(&frame.payload);
    let shard = r.varint()? as usize;
    r.finish()?;
    Ok(shard)
}

pub(crate) fn encode_ready(out: &mut Vec<u8>) {
    put_frame(out, FrameKind::Ready, 0, |_| {});
}

/// Everything a worker process needs to run its shard: the static spec,
/// the serialized rule, the seed body, the mesh addresses, and the
/// optional deterministic kill switch (test harness for the
/// [`crate::StopReason::TransportLost`] path).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WorkerInit {
    pub n: u32,
    pub shards: usize,
    pub k_slots: usize,
    pub report_mode: ReportMode,
    pub wire_mode: WireMode,
    pub consume_mode: ConsumeMode,
    pub repr: ShardRepr,
    pub master_seed: u64,
    pub plan: FaultPlan,
    pub round_state: RoundStateMode,
    pub rule: crate::transport::RuleSpec,
    pub condensed: bool,
    pub body: Vec<(u32, u64)>,
    pub peer_addrs: Vec<String>,
    pub die_at_round: Option<u64>,
}

fn mode_codes(init: &WorkerInit) -> [u8; 5] {
    [
        match init.report_mode {
            ReportMode::Sparse => 0,
            ReportMode::Delta => 1,
            ReportMode::Dense => 2,
        },
        match init.wire_mode {
            WireMode::Batched => 0,
            WireMode::PerEntry => 1,
        },
        match init.consume_mode {
            ConsumeMode::Native => 0,
            ConsumeMode::Ordered => 1,
        },
        match init.repr {
            ShardRepr::Histogram => 0,
            ShardRepr::Agents => 1,
        },
        match init.round_state {
            RoundStateMode::Rebuild => 0,
            RoundStateMode::Incremental => 1,
        },
    ]
}

pub(crate) fn encode_worker_init(init: &WorkerInit, out: &mut Vec<u8>) {
    use crate::transport::RuleSpec;
    put_frame(out, FrameKind::Init, 0, |b| {
        put_varint(b, u64::from(init.n));
        put_varint(b, init.shards as u64);
        put_varint(b, init.k_slots as u64);
        b.extend_from_slice(&mode_codes(init));
        put_varint(b, init.master_seed);
        // Fault plan: seed, six rates (fixed f64 bits), crashes,
        // byzantine specs, max_faulty.
        let plan = &init.plan;
        put_varint(b, plan.seed);
        for rate in [
            plan.palette_drop,
            plan.palette_duplicate,
            plan.palette_delay,
            plan.report_drop,
            plan.report_duplicate,
            plan.report_delay,
        ] {
            b.extend_from_slice(&rate.to_bits().to_le_bytes());
        }
        put_varint(b, plan.crashes.len() as u64);
        for c in &plan.crashes {
            put_varint(b, c.shard as u64);
            put_varint(b, c.crash_round);
            match c.rejoin_round {
                None => b.push(0),
                Some(r) => {
                    b.push(1);
                    put_varint(b, r);
                }
            }
        }
        put_varint(b, plan.byzantine.len() as u64);
        for z in &plan.byzantine {
            put_varint(b, z.shard as u64);
            put_varint(b, z.budget);
            b.push(match z.kind {
                CorruptionKind::Plausible => 0,
                CorruptionKind::Inflate => 1,
            });
        }
        put_varint(b, plan.max_faulty as u64);
        // Rule spec.
        match init.rule {
            RuleSpec::Voter => b.push(0),
            RuleSpec::ThreeMajority => b.push(1),
            RuleSpec::ThreeMajorityAlt => b.push(2),
            RuleSpec::TwoChoices => b.push(3),
            RuleSpec::TwoMedian => b.push(4),
            RuleSpec::UndecidedDynamics => b.push(5),
            RuleSpec::LazyVoter(p) => {
                b.push(6);
                b.extend_from_slice(&p.to_bits().to_le_bytes());
            }
            RuleSpec::HMajority(h) => {
                b.push(7);
                put_varint(b, u64::from(h));
            }
        }
        b.push(u8::from(init.condensed));
        put_varint(b, init.body.len() as u64);
        for &(slot, count) in &init.body {
            put_varint(b, u64::from(slot));
            put_varint(b, count);
        }
        put_varint(b, init.peer_addrs.len() as u64);
        for addr in &init.peer_addrs {
            put_varint(b, addr.len() as u64);
            b.extend_from_slice(addr.as_bytes());
        }
        match init.die_at_round {
            None => b.push(0),
            Some(r) => {
                b.push(1);
                put_varint(b, r);
            }
        }
    });
}

pub(crate) fn decode_worker_init(frame: &Frame) -> Result<WorkerInit, WireError> {
    use crate::transport::RuleSpec;
    if frame.kind != FrameKind::Init {
        return Err(WireError::Malformed("not an init frame"));
    }
    let mut r = Reader::new(&frame.payload);
    let n = r.varint()?;
    let shards = r.varint()? as usize;
    let k_slots = r.varint()? as usize;
    let report_mode = match r.u8()? {
        0 => ReportMode::Sparse,
        1 => ReportMode::Delta,
        2 => ReportMode::Dense,
        _ => return Err(WireError::Malformed("unknown report mode")),
    };
    let wire_mode = match r.u8()? {
        0 => WireMode::Batched,
        1 => WireMode::PerEntry,
        _ => return Err(WireError::Malformed("unknown wire mode")),
    };
    let consume_mode = match r.u8()? {
        0 => ConsumeMode::Native,
        1 => ConsumeMode::Ordered,
        _ => return Err(WireError::Malformed("unknown consume mode")),
    };
    let repr = match r.u8()? {
        0 => ShardRepr::Histogram,
        1 => ShardRepr::Agents,
        _ => return Err(WireError::Malformed("unknown shard repr")),
    };
    let round_state = match r.u8()? {
        0 => RoundStateMode::Rebuild,
        1 => RoundStateMode::Incremental,
        _ => return Err(WireError::Malformed("unknown round-state mode")),
    };
    let master_seed = r.varint()?;
    let plan_seed = r.varint()?;
    let mut rates = [0.0f64; 6];
    for rate in &mut rates {
        *rate = r.f64_bits()?;
    }
    let crash_count = r.bounded_count()?;
    let mut crashes = Vec::with_capacity(crash_count);
    for _ in 0..crash_count {
        let shard = r.varint()? as usize;
        let crash_round = r.varint()?;
        let rejoin_round = match r.u8()? {
            0 => None,
            1 => Some(r.varint()?),
            _ => return Err(WireError::Malformed("bad option tag")),
        };
        crashes.push(CrashSpec { shard, crash_round, rejoin_round });
    }
    let byz_count = r.bounded_count()?;
    let mut byzantine = Vec::with_capacity(byz_count);
    for _ in 0..byz_count {
        let shard = r.varint()? as usize;
        let budget = r.varint()?;
        let kind = match r.u8()? {
            0 => CorruptionKind::Plausible,
            1 => CorruptionKind::Inflate,
            _ => return Err(WireError::Malformed("unknown corruption kind")),
        };
        byzantine.push(ByzantineSpec { shard, budget, kind });
    }
    let max_faulty = r.varint()? as usize;
    let plan = FaultPlan {
        seed: plan_seed,
        palette_drop: rates[0],
        palette_duplicate: rates[1],
        palette_delay: rates[2],
        report_drop: rates[3],
        report_duplicate: rates[4],
        report_delay: rates[5],
        crashes,
        byzantine,
        max_faulty,
    };
    let rule = match r.u8()? {
        0 => RuleSpec::Voter,
        1 => RuleSpec::ThreeMajority,
        2 => RuleSpec::ThreeMajorityAlt,
        3 => RuleSpec::TwoChoices,
        4 => RuleSpec::TwoMedian,
        5 => RuleSpec::UndecidedDynamics,
        6 => RuleSpec::LazyVoter(r.f64_bits()?),
        7 => {
            let h = r.varint()?;
            if h == 0 || h > u64::from(u32::MAX) {
                return Err(WireError::Malformed("h out of range"));
            }
            RuleSpec::HMajority(h as u32)
        }
        _ => return Err(WireError::Malformed("unknown rule spec")),
    };
    let condensed = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("bad bool")),
    };
    let body_count = r.bounded_count()?;
    let mut body = Vec::with_capacity(body_count);
    for _ in 0..body_count {
        let slot = r.varint()?;
        let c = r.varint()?;
        if slot > u64::from(u32::MAX) {
            return Err(WireError::Malformed("slot out of range"));
        }
        body.push((slot as u32, c));
    }
    let addr_count = r.bounded_count()?;
    let mut peer_addrs = Vec::with_capacity(addr_count);
    for _ in 0..addr_count {
        let len = r.bounded_count()?;
        let bytes = frame.payload[r.pos..r.pos + len].to_vec();
        r.pos += len;
        peer_addrs
            .push(String::from_utf8(bytes).map_err(|_| WireError::Malformed("non-utf8 address"))?);
    }
    let die_at_round = match r.u8()? {
        0 => None,
        1 => Some(r.varint()?),
        _ => return Err(WireError::Malformed("bad option tag")),
    };
    if n > u64::from(u32::MAX) {
        return Err(WireError::Malformed("n out of range"));
    }
    r.finish()?;
    Ok(WorkerInit {
        n: n as u32,
        shards,
        k_slots,
        report_mode,
        wire_mode,
        consume_mode,
        repr,
        master_seed,
        plan,
        round_state,
        rule,
        condensed,
        body,
        peer_addrs,
        die_at_round,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_lengths_match_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len() as u64, varint_len(v), "varint_len({v})");
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 63, -64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small on the wire.
        assert!(varint_len(zigzag(-3)) == 1);
    }

    #[test]
    fn frame_round_trips_through_a_stream() {
        let msg = ShardMessage::Pull(PullBatch {
            origin: 3,
            round: 97,
            target_runs: vec![TargetRun { start: 0, len: 1000, count: 4242 }],
        });
        let mut bytes = Vec::new();
        encode_shard_message(&msg, &mut bytes);
        assert_eq!(bytes.len() as u64, shard_message_len(&msg));

        let mut cursor = std::io::Cursor::new(bytes.clone());
        let frame = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(frame.round, 97);
        assert_eq!(decode_shard_message(&frame).unwrap(), msg);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after the frame");

        let (frame2, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame2, frame);
    }

    #[test]
    fn worker_init_round_trips() {
        let init = WorkerInit {
            n: 1000,
            shards: 4,
            k_slots: 64,
            report_mode: ReportMode::Delta,
            wire_mode: WireMode::Batched,
            consume_mode: ConsumeMode::Native,
            repr: ShardRepr::Histogram,
            master_seed: u64::MAX,
            plan: FaultPlan::none()
                .with_seed(9)
                .with_palette_rates(0.1, 0.05, 0.025)
                .with_crash(CrashSpec { shard: 1, crash_round: 3, rejoin_round: Some(5) })
                .with_byzantine(ByzantineSpec {
                    shard: 2,
                    budget: 7,
                    kind: CorruptionKind::Plausible,
                })
                .with_max_faulty(2),
            round_state: RoundStateMode::Incremental,
            rule: crate::transport::RuleSpec::LazyVoter(0.5),
            condensed: true,
            body: vec![(0, 10), (63, 990)],
            peer_addrs: vec!["unix:/tmp/a".into(), "tcp:127.0.0.1:9".into()],
            die_at_round: Some(12),
        };
        let mut bytes = Vec::new();
        encode_worker_init(&init, &mut bytes);
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decode_worker_init(&frame).unwrap(), init);
    }
}
