#![warn(missing_docs)]
//! Message-passing distributed runtime for the paper's protocols.
//!
//! The engines in `symbreak-core` sample the process *law*; this crate
//! executes the protocol the way the paper's system model describes it —
//! anonymous nodes that, each synchronous round, **pull** the opinions of
//! uniformly random peers via messages and apply their update rule
//! locally. Nodes are partitioned into shard threads that exchange
//! batched [`message`]s over channels; a coordinator drives the
//! synchronous rounds (the barrier) and collects per-round observables.
//!
//! The runtime makes three properties of the model concrete:
//!
//! * **Anonymity** — pulls carry no requester identity beyond an opaque
//!   reply route; update rules see only opinions.
//! * **Uniform Pull** — each node draws `h` uniform random node ids per
//!   round; the owning shard answers with opinions *frozen at the round
//!   start* (synchrony).
//! * **O(log k) state** — a node's state is its opinion; shards hold no
//!   global view.
//!
//! Traffic is aggregate end-to-end (see [`message`] for the wire
//! protocol, and `docs/ARCHITECTURE.md` for the message-cost model):
//!
//! * **Data plane** ([`WireMode`]) — by default each shard pair
//!   exchanges one `PullBatch` of target runs and one `OpinionPalette`
//!   sampled shard-side per round, and once occupancy concentrates the
//!   coordinator flips the fleet to histogram *push*
//!   ([`DataFormat::Push`]): every shard broadcasts its opinion
//!   histogram and draws its own pulls from the union via one alias
//!   table — `O(#shards² · #distinct)` channel entries per round
//!   instead of the per-entry `2·n·h`. The per-entry request/reply
//!   format survives as [`WireMode::PerEntry`] for paired
//!   benchmarking; every format realizes exactly the Uniform Pull law.
//! * **Control plane** ([`ReportMode`]) — shards report sparse
//!   `(slot, count)` pairs over their locally occupied colors, folded
//!   into one persistent merged [`Configuration`] via
//!   `Configuration::merge_sparse`; under [`ReportMode::Delta`] the
//!   coordinator switches the fleet to signed `(slot, Δcount)` reports
//!   (merged via `Configuration::apply_deltas`) once the per-round
//!   changed-slot set collapses — `O(#changed)` per round exactly where
//!   the high-occupancy Theorem-5 regime lives.
//! * **Shard representation** ([`ShardRepr`]) — by default shards whose
//!   rule consumes multisets or single peers on the batched wire are
//!   *condensed*: their whole state is a local histogram, stepped by
//!   closed-form aggregate draws — `O(#occupied)` memory and, in the
//!   push gear, `O(#occupied · h)` per-round compute, independent of
//!   `local_n` — which is what makes `n ≥ 10⁸` Theorem-5 sweeps
//!   tractable. [`ShardRepr::Agents`] forces the materialized per-agent
//!   vector everywhere as the paired baseline.
//! * **Fault layer** ([`FaultPlan`]) — a seeded, deterministic fault
//!   schedule interposes on the wire path: dropped / duplicated /
//!   delayed palettes and reports, crash-stop shards that rejoin from
//!   coordinator snapshots, and Byzantine shards whose corrupted report
//!   bodies are rejected (mass-violating) or tolerated by quorum
//!   (plausible). The coordinator relaxes its barrier to `N − F`
//!   attendance and the outcome carries a typed [`StopReason`] plus
//!   [`FaultCounters`]. Every fault decision is a stateless hash shared
//!   by sender, receiver, and coordinator, so degraded runs stay
//!   deterministic and deadlock-free (see [`fault`]).
//! * **Transport layer** ([`transport`]) — every shard↔shard and
//!   shard↔coordinator message crosses a [`transport::Transport`] /
//!   coordinator-link abstraction with a compact versioned byte
//!   [`codec`] (little-endian, varint counts, round-tagged frame
//!   headers). Two backends: in-process channels (the default — counts
//!   frame bytes without serializing, byte-identical per seed to the
//!   pre-codec runtime) and Unix-domain/TCP sockets
//!   ([`Cluster::run_horizon_socket`]), where the fleet runs as one OS
//!   process per shard spawned from a worker binary
//!   ([`transport::shard_process_main`]). A vanished peer aborts the
//!   run with [`StopReason::TransportLost`] instead of deadlocking.
//!
//! [`Configuration`]: symbreak_core::Configuration
//!
//! The test-suite cross-validates the runtime against the single-threaded
//! engines: same process law, same consensus behaviour.
//!
//! # Examples
//!
//! Run to consensus on the default (batched, sparse-report) formats:
//!
//! ```
//! use symbreak_runtime::{Cluster, ClusterConfig};
//! use symbreak_core::rules::ThreeMajority;
//! use symbreak_core::Configuration;
//!
//! let start = Configuration::uniform(256, 8);
//! let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 7));
//! let outcome = cluster.run_to_consensus(10_000).expect("consensus");
//! assert_eq!(outcome.final_config.num_colors(), 1);
//! ```
//!
//! Fixed-horizon runs (the Theorem-5 entry point) report the trajectory
//! whether or not consensus is reached, plus the per-round control-plane
//! size the delta reports collapse:
//!
//! ```
//! use symbreak_runtime::{Cluster, ClusterConfig, ReportMode};
//! use symbreak_core::rules::TwoChoices;
//! use symbreak_core::Configuration;
//!
//! let start = Configuration::singletons(256);
//! let config = ClusterConfig::new(4, 7).with_report_mode(ReportMode::Delta);
//! let out = Cluster::new(TwoChoices, &start, config).run_horizon(10);
//! assert_eq!(out.rounds_run, 10);
//! assert_eq!(out.consensus_round, None); // 2-Choices stalls from singletons
//! assert_eq!(out.report_entries.len(), 10);
//! assert!(out.trace.rounds().iter().all(|r| r.max_support < 256));
//! ```

pub mod cluster;
pub mod codec;
pub mod fault;
pub mod message;
pub mod shard;
pub mod transport;

pub use cluster::{
    Cluster, ClusterConfig, ClusterOutcome, ConsumeMode, GearMode, HorizonOutcome, ReportMode,
    ShardRepr, WireMode,
};
pub use fault::{
    ByzantineSpec, CorruptionKind, CrashSpec, FaultCounters, FaultKind, FaultPlan, StopReason,
};
pub use message::{
    DataFormat, OpinionPalette, PullBatch, ReportBody, ReportFormat, Request, ShardMessage,
    TargetRun,
};
pub use symbreak_core::RoundStateMode;
pub use transport::{
    shard_process_main, spawn_shard_process, RuleSpec, SocketConfig, Transport, TransportAddr,
    TransportLost, WireRule,
};
