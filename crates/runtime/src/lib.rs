#![warn(missing_docs)]
//! Message-passing distributed runtime for the paper's protocols.
//!
//! The engines in `symbreak-core` sample the process *law*; this crate
//! executes the protocol the way the paper's system model describes it —
//! anonymous nodes that, each synchronous round, **pull** the opinions of
//! uniformly random peers via request/reply messages and apply their
//! update rule locally. Nodes are partitioned into shard threads that
//! exchange batched [`message`]s over channels; a coordinator drives the
//! synchronous rounds (the barrier) and collects per-round observables.
//!
//! The runtime makes three properties of the model concrete:
//!
//! * **Anonymity** — requests carry no requester identity beyond an opaque
//!   reply route; update rules see only opinions.
//! * **Uniform Pull** — each node addresses `h` uniform random node ids
//!   per round; the owning shard answers with the opinion *frozen at the
//!   round start* (synchrony).
//! * **O(log k) state** — a node's state is its opinion; shards hold no
//!   global view.
//!
//! The control plane is occupancy-aware end-to-end: shards report sparse
//! `(slot, count)` pairs over their locally occupied colors (built in
//! `O(local_n)` from a reusable touched-slot scratch), and the
//! coordinator folds them into one persistent merged [`Configuration`]
//! via `Configuration::merge_sparse` — so a `k = n` singleton start
//! costs `O(#surviving colors)` per round on the control plane instead
//! of `O(k)`. The pre-sparse dense wire format survives as
//! [`ReportMode::Dense`] for paired benchmarking, and both formats run
//! the *identical* trajectory for a given seed.
//!
//! [`Configuration`]: symbreak_core::Configuration
//!
//! The test-suite cross-validates the runtime against the single-threaded
//! engines: same process law, same consensus behaviour.
//!
//! # Example
//!
//! ```
//! use symbreak_runtime::{Cluster, ClusterConfig};
//! use symbreak_core::rules::ThreeMajority;
//! use symbreak_core::Configuration;
//!
//! let start = Configuration::uniform(256, 8);
//! let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 7));
//! let outcome = cluster.run_to_consensus(10_000).expect("consensus");
//! assert_eq!(outcome.final_config.num_colors(), 1);
//! ```

pub mod cluster;
pub mod message;
pub mod shard;

pub use cluster::{Cluster, ClusterConfig, ClusterOutcome, HorizonOutcome, ReportMode};
pub use message::{ReportBody, Request, ShardMessage};
