#![warn(missing_docs)]
//! Message-passing distributed runtime for the paper's protocols.
//!
//! The engines in `symbreak-core` sample the process *law*; this crate
//! executes the protocol the way the paper's system model describes it —
//! anonymous nodes that, each synchronous round, **pull** the opinions of
//! uniformly random peers via request/reply messages and apply their
//! update rule locally. Nodes are partitioned into shard threads that
//! exchange batched [`message`]s over channels; a coordinator drives the
//! synchronous rounds (the barrier) and collects per-round observables.
//!
//! The runtime makes three properties of the model concrete:
//!
//! * **Anonymity** — requests carry no requester identity beyond an opaque
//!   reply route; update rules see only opinions.
//! * **Uniform Pull** — each node addresses `h` uniform random node ids
//!   per round; the owning shard answers with the opinion *frozen at the
//!   round start* (synchrony).
//! * **O(log k) state** — a node's state is its opinion; shards hold no
//!   global view.
//!
//! The test-suite cross-validates the runtime against the single-threaded
//! engines: same process law, same consensus behaviour.
//!
//! # Example
//!
//! ```
//! use symbreak_runtime::{Cluster, ClusterConfig};
//! use symbreak_core::rules::ThreeMajority;
//! use symbreak_core::Configuration;
//!
//! let start = Configuration::uniform(256, 8);
//! let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig { shards: 4, seed: 7 });
//! let outcome = cluster.run_to_consensus(10_000).expect("consensus");
//! assert_eq!(outcome.final_config.num_colors(), 1);
//! ```

pub mod cluster;
pub mod message;
pub mod shard;

pub use cluster::{Cluster, ClusterConfig, ClusterOutcome};
pub use message::{Request, ShardMessage};
