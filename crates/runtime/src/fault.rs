//! Deterministic fault injection for the cluster runtime.
//!
//! A [`FaultPlan`] turns the lockstep cluster into a degradable
//! service: it interposes on the shard wire path and injects dropped,
//! duplicated, and delayed-by-one-round [`crate::message::OpinionPalette`]
//! and [`crate::message::ShardReport`] messages, crash-stops shards over
//! scheduled round windows (they rejoin from a coordinator snapshot),
//! and turns chosen shards Byzantine (their report bodies are corrupted
//! before sending — mass-preserving lies are tolerated by quorum,
//! mass-violating ones are rejected by the coordinator's validation).
//!
//! # Why the plan is a *shared pure function*, not a wire interceptor
//!
//! The runtime has no timeouts: every receive loop blocks until its
//! expected message count is met. Faults therefore cannot be decided by
//! one party alone — a silently dropped palette would deadlock its
//! receiver. Instead every fault decision is a **stateless hash** of
//! `(plan seed, round, sender, receiver)`: the sender uses it to decide
//! whether to transmit, the receiver uses the *same* hash to know the
//! message will never come (and to regenerate the lost samples
//! locally), and the coordinator uses it to size its per-round report
//! barrier. The three parties agree by construction, so the degraded
//! protocol stays deterministic per `(seed, plan)` and deadlock-free —
//! the same design that makes the fault-free cluster reproducible.
//!
//! Intra-shard traffic (`from == to`) is exempt: a shard's channel to
//! itself models function calls, not a network.
//!
//! A plan with every rate zero and no crash/Byzantine entries
//! ([`FaultPlan::none`], the default) is **inert**: the cluster takes
//! the exact fault-free code paths and realizes the identical
//! trajectory, trace, and message counts per seed (pinned by the
//! seed-exactness tests).
//!
//! The layer is **representation-agnostic**: fault decisions hash wire
//! coordinates, never shard internals, so condensed (histogram-backed)
//! shards degrade under the same law as agent-backed ones. The two
//! compensation paths that used to walk per-agent state are
//! histogram-native when the shard is condensed — lost-palette recovery
//! re-samples the missing mass as one sparse multinomial over the
//! round-start snapshot, and [`crate::message::Control::Rejoin`]
//! installs the snapshot by copying counts with a sparse mass check
//! instead of a dense `O(local_n)` recount.

/// What happens to one faulted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transmitted and lost: the sender counts the entries, the receiver
    /// compensates (palettes: local sample recovery; reports: the
    /// coordinator reuses the shard's last accepted body).
    Drop,
    /// Transmitted twice: both transmissions count, the receiver
    /// discards the second copy.
    Duplicate,
    /// Delivered past its round's usefulness window. A delayed *report*
    /// is physically held by the shard and flushed at its next round
    /// command, reaching the coordinator one barrier late — folded as a
    /// straggler re-sync. A delayed *palette* still crosses the wire
    /// in-round but deterministically misses the round's consumption
    /// window: the receiver absorbs and discards it, having already
    /// regenerated the lost samples locally. (Physically holding a
    /// palette would deadlock the barrier cycle: the coordinator waits
    /// on the receiver's report, the receiver on the sender's flush,
    /// the sender on the coordinator's next round command.)
    Delay,
}

/// One scheduled crash-stop window.
///
/// The shard is dead for rounds `crash_round ..= rejoin_round - 1`
/// inclusive: it receives no round commands, sends and receives
/// nothing, and its nodes are frozen at the coordinator's last accepted
/// snapshot. At `rejoin_round` the coordinator replays that snapshot to
/// it ([`crate::message::Control::Rejoin`]) and it resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Which shard crashes.
    pub shard: usize,
    /// First round the shard is dead for (1-based).
    pub crash_round: u64,
    /// First round the shard is live again; `None` means it never
    /// rejoins (the run must tolerate it via `max_faulty` for good).
    pub rejoin_round: Option<u64>,
}

/// How a Byzantine shard corrupts its report bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Mass-preserving lies: the sparse body is corrupted through the
    /// adversary crate's `RandomFlipper` (up to `budget` phantom node
    /// moves per round, possibly reviving dead colors). The body stays
    /// *plausible* — it passes the coordinator's mass validation — so
    /// the lie lands in the merged view and must be tolerated by the
    /// quorum-relaxed consensus detection.
    Plausible,
    /// Mass-inflating lies: `budget` phantom nodes are added to the
    /// body's first slot, violating `Σ counts + undecided = local_n`.
    /// The coordinator rejects the body by the same mass-identity
    /// invariant `merge_sparse`/`apply_deltas` assert on the lossless
    /// path, and the shard counts against the `max_faulty` budget that
    /// round.
    Inflate,
}

/// One permanently Byzantine shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzantineSpec {
    /// Which shard lies.
    pub shard: usize,
    /// Per-round corruption budget (phantom node moves, or phantom mass).
    pub budget: u64,
    /// The corruption applied to every report body it sends.
    pub kind: CorruptionKind,
}

/// A seeded, deterministic fault schedule for one cluster run.
///
/// Rates are per-message Bernoulli probabilities decided by the
/// stateless hash described in the module docs; the three rates of a
/// message class must sum to at most 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault hash (independent of the cluster seed: the same
    /// protocol trajectory can be re-run under different fault draws).
    pub seed: u64,
    /// P\[an inter-shard palette is dropped\].
    pub palette_drop: f64,
    /// P\[an inter-shard palette is transmitted twice\].
    pub palette_duplicate: f64,
    /// P\[an inter-shard palette is delayed by one round\].
    pub palette_delay: f64,
    /// P\[a shard report is dropped\].
    pub report_drop: f64,
    /// P\[a shard report is transmitted twice\].
    pub report_duplicate: f64,
    /// P\[a shard report is delayed by one round\].
    pub report_delay: f64,
    /// Scheduled crash-stop windows (at most one per shard).
    pub crashes: Vec<CrashSpec>,
    /// Permanently Byzantine shards.
    pub byzantine: Vec<ByzantineSpec>,
    /// `F`: how many shards may fail to deliver a fresh valid report in
    /// one round before the coordinator aborts. The barrier proceeds on
    /// `N − F` attendance (the exact quorum via
    /// [`symbreak_adversary::quorum_threshold`]); fewer is
    /// [`StopReason::TooManyFaults`].
    pub max_faulty: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Splits the top 53 bits of a hash into a uniform in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64-style stateless mix over a fault-decision tuple.
fn mix(seed: u64, salt: u64, round: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        ^ salt
        ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ a.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ b.wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a uniform draw through a drop/duplicate/delay rate triple.
fn classify(u: f64, drop: f64, duplicate: f64, delay: f64) -> Option<FaultKind> {
    if u < drop {
        Some(FaultKind::Drop)
    } else if u < drop + duplicate {
        Some(FaultKind::Duplicate)
    } else if u < drop + duplicate + delay {
        Some(FaultKind::Delay)
    } else {
        None
    }
}

const PALETTE_SALT: u64 = 0xA5A5_5A5A_0F0F_F0F0;
const REPORT_SALT: u64 = 0x3C3C_C3C3_69AA_5596;
/// Salt of the Byzantine corruption RNG streams (one per shard),
/// disjoint from the shard round and serving streams by construction.
pub(crate) const BYZANTINE_SALT: u64 = 0x517C_C1B7_2722_0A95;

impl FaultPlan {
    /// The inert plan: no faults, exact fault-free code paths.
    pub fn none() -> Self {
        Self {
            seed: 0,
            palette_drop: 0.0,
            palette_duplicate: 0.0,
            palette_delay: 0.0,
            report_drop: 0.0,
            report_duplicate: 0.0,
            report_delay: 0.0,
            crashes: Vec::new(),
            byzantine: Vec::new(),
            max_faulty: 0,
        }
    }

    /// Builder: sets the fault hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the palette drop/duplicate/delay rates.
    pub fn with_palette_rates(mut self, drop: f64, duplicate: f64, delay: f64) -> Self {
        self.palette_drop = drop;
        self.palette_duplicate = duplicate;
        self.palette_delay = delay;
        self
    }

    /// Builder: sets the report drop/duplicate/delay rates.
    pub fn with_report_rates(mut self, drop: f64, duplicate: f64, delay: f64) -> Self {
        self.report_drop = drop;
        self.report_duplicate = duplicate;
        self.report_delay = delay;
        self
    }

    /// Builder: schedules a crash-stop window.
    pub fn with_crash(mut self, spec: CrashSpec) -> Self {
        self.crashes.push(spec);
        self
    }

    /// Builder: marks a shard Byzantine.
    pub fn with_byzantine(mut self, spec: ByzantineSpec) -> Self {
        self.byzantine.push(spec);
        self
    }

    /// Builder: sets the per-round faulty-shard tolerance `F`.
    pub fn with_max_faulty(mut self, max_faulty: usize) -> Self {
        self.max_faulty = max_faulty;
        self
    }

    /// Whether the plan injects anything at all. Inert plans take the
    /// exact fault-free cluster code paths.
    pub fn is_active(&self) -> bool {
        self.palette_drop > 0.0
            || self.palette_duplicate > 0.0
            || self.palette_delay > 0.0
            || self.report_drop > 0.0
            || self.report_duplicate > 0.0
            || self.report_delay > 0.0
            || !self.crashes.is_empty()
            || !self.byzantine.is_empty()
    }

    /// Checks the plan against a fleet size; called by
    /// [`crate::Cluster::new`].
    ///
    /// # Panics
    /// Panics on out-of-range rates or shard indices, overlapping crash
    /// specs, Byzantine crash targets, or `max_faulty >= shards`.
    pub fn validate(&self, shards: usize) {
        let triple_ok =
            |a: f64, b: f64, c: f64| a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0;
        assert!(
            triple_ok(self.palette_drop, self.palette_duplicate, self.palette_delay),
            "palette fault rates must be non-negative and sum to at most 1"
        );
        assert!(
            triple_ok(self.report_drop, self.report_duplicate, self.report_delay),
            "report fault rates must be non-negative and sum to at most 1"
        );
        assert!(self.max_faulty < shards, "max_faulty must leave a non-empty quorum");
        for (i, c) in self.crashes.iter().enumerate() {
            assert!(c.shard < shards, "crash spec names shard {} of {shards}", c.shard);
            assert!(c.crash_round >= 1, "rounds are 1-based");
            if let Some(rejoin) = c.rejoin_round {
                assert!(rejoin > c.crash_round, "rejoin must follow the crash");
            }
            assert!(
                self.crashes[..i].iter().all(|prev| prev.shard != c.shard),
                "at most one crash window per shard"
            );
        }
        for b in &self.byzantine {
            assert!(b.shard < shards, "byzantine spec names shard {} of {shards}", b.shard);
            assert!(
                self.crashes.iter().all(|c| c.shard != b.shard),
                "a shard cannot be both Byzantine and crash-scheduled"
            );
        }
    }

    /// Whether `shard` is crash-stopped during `round`.
    pub fn is_crashed(&self, shard: usize, round: u64) -> bool {
        self.crashes.iter().any(|c| {
            c.shard == shard && round >= c.crash_round && c.rejoin_round.is_none_or(|r| round < r)
        })
    }

    /// The Byzantine spec covering `shard`, if any.
    pub fn byzantine_spec(&self, shard: usize) -> Option<&ByzantineSpec> {
        self.byzantine.iter().find(|b| b.shard == shard)
    }

    /// The fault, if any, injected on the palette `from → to` in
    /// `round`. Intra-shard palettes (`from == to`) are never faulted.
    pub fn palette_fault(&self, round: u64, from: usize, to: usize) -> Option<FaultKind> {
        if from == to {
            return None;
        }
        let u = unit(mix(self.seed, PALETTE_SALT, round, from as u64, to as u64));
        classify(u, self.palette_drop, self.palette_duplicate, self.palette_delay)
    }

    /// The fault, if any, injected on `shard`'s report for `round`.
    pub fn report_fault(&self, round: u64, shard: usize) -> Option<FaultKind> {
        let u = unit(mix(self.seed, REPORT_SALT, round, shard as u64, 0));
        classify(u, self.report_drop, self.report_duplicate, self.report_delay)
    }
}

/// Why a cluster run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The merged (honest-view, under faults) configuration reached
    /// consensus.
    Consensus,
    /// The round horizon elapsed without consensus.
    HorizonExhausted,
    /// A round's fresh valid report attendance fell below the `N − F`
    /// quorum: the run degraded past the plan's tolerance and aborted.
    TooManyFaults,
    /// A transport endpoint vanished mid-run (a worker process died,
    /// a socket closed): the coordinator aborted like
    /// [`StopReason::TooManyFaults`] and sent Stop to the live shards.
    /// Distinct from injected faults, which are shared decisions and
    /// never sever a connection.
    TransportLost,
}

/// Per-run fault and degradation observables, so degraded operation is
/// measurable rather than silent. All zero for inert plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Inter-shard palettes transmitted and lost.
    pub palettes_dropped: u64,
    /// Inter-shard palettes transmitted twice.
    pub palettes_duplicated: u64,
    /// Inter-shard palettes delivered one round late (and discarded).
    pub palettes_delayed: u64,
    /// Reports transmitted and lost.
    pub reports_dropped: u64,
    /// Reports transmitted twice.
    pub reports_duplicated: u64,
    /// Reports delivered one barrier late (straggler re-syncs).
    pub reports_delayed: u64,
    /// Shard-rounds spent crash-stopped.
    pub crash_rounds: u64,
    /// Snapshot rejoins performed.
    pub rejoins: u64,
    /// Reports received from Byzantine shards.
    pub byzantine_reports: u64,
    /// Reports rejected by the coordinator's mass validation.
    pub rejected_reports: u64,
    /// Stale reports folded as straggler re-syncs.
    pub straggler_resyncs: u64,
    /// Samples shards regenerated locally for lost palettes.
    pub recovered_samples: u64,
    /// Rounds the barrier closed below full attendance (quorum-relaxed
    /// rounds).
    pub quorum_rounds: u64,
    /// Total wire bytes sent fleet-wide, at [`crate::codec`] frame
    /// sizes: every shard's data-plane and report frames (including
    /// frames the fault plan transmitted-and-lost) plus the
    /// coordinator's control frames. Nonzero even for inert plans —
    /// this pair measures the wire, not the faults.
    pub bytes_sent: u64,
    /// Total wire bytes received fleet-wide. Differs from `bytes_sent`
    /// by exactly the frames that were sent but never delivered
    /// (injected drops/delays, reports cut off by an abort).
    pub bytes_received: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_inactive_and_decides_no_faults() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for round in 1..50 {
            for s in 0..4usize {
                assert_eq!(plan.report_fault(round, s), None);
                for o in 0..4usize {
                    assert_eq!(plan.palette_fault(round, s, o), None);
                }
            }
        }
        plan.validate(4);
    }

    #[test]
    fn decisions_are_deterministic_and_self_exempt() {
        let plan = FaultPlan::none().with_seed(7).with_palette_rates(0.3, 0.3, 0.3);
        for round in 1..100 {
            for s in 0..6usize {
                assert_eq!(plan.palette_fault(round, s, s), None, "self-pairs exempt");
                for o in 0..6usize {
                    assert_eq!(
                        plan.palette_fault(round, s, o),
                        plan.palette_fault(round, s, o),
                        "stateless decisions must agree across parties"
                    );
                }
            }
        }
    }

    #[test]
    fn rates_produce_roughly_proportional_kinds() {
        let plan = FaultPlan::none().with_seed(11).with_palette_rates(0.2, 0.1, 0.05);
        let (mut drop, mut dup, mut delay, mut none) = (0u32, 0u32, 0u32, 0u32);
        for round in 1..=2000 {
            match plan.palette_fault(round, 0, 1) {
                Some(FaultKind::Drop) => drop += 1,
                Some(FaultKind::Duplicate) => dup += 1,
                Some(FaultKind::Delay) => delay += 1,
                None => none += 1,
            }
        }
        // Loose 3-sigma-ish bands: the hash should behave like a fair
        // Bernoulli source at these rates.
        assert!((300..=500).contains(&drop), "drop draws: {drop}");
        assert!((130..=270).contains(&dup), "duplicate draws: {dup}");
        assert!((55..=145).contains(&delay), "delay draws: {delay}");
        assert!(none > 1100, "none draws: {none}");
    }

    #[test]
    fn crash_windows_are_half_open() {
        let plan = FaultPlan::none()
            .with_crash(CrashSpec { shard: 2, crash_round: 5, rejoin_round: Some(8) })
            .with_max_faulty(1);
        assert!(!plan.is_crashed(2, 4));
        assert!(plan.is_crashed(2, 5));
        assert!(plan.is_crashed(2, 7));
        assert!(!plan.is_crashed(2, 8));
        assert!(!plan.is_crashed(1, 6));
        plan.validate(4);
    }

    #[test]
    fn permanent_crash_never_rejoins() {
        let plan = FaultPlan::none()
            .with_crash(CrashSpec { shard: 0, crash_round: 3, rejoin_round: None })
            .with_max_faulty(1);
        assert!(plan.is_crashed(0, 1_000_000));
        plan.validate(3);
    }

    #[test]
    #[should_panic(expected = "at most one crash window per shard")]
    fn overlapping_crash_specs_panic() {
        FaultPlan::none()
            .with_crash(CrashSpec { shard: 1, crash_round: 2, rejoin_round: Some(4) })
            .with_crash(CrashSpec { shard: 1, crash_round: 6, rejoin_round: Some(8) })
            .with_max_faulty(1)
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_rate_triple_panics() {
        FaultPlan::none().with_palette_rates(0.5, 0.4, 0.2).validate(4);
    }

    #[test]
    #[should_panic(expected = "non-empty quorum")]
    fn max_faulty_must_leave_a_quorum() {
        FaultPlan::none().with_max_faulty(4).validate(4);
    }

    #[test]
    #[should_panic(expected = "Byzantine and crash-scheduled")]
    fn byzantine_crash_overlap_panics() {
        FaultPlan::none()
            .with_crash(CrashSpec { shard: 1, crash_round: 2, rejoin_round: Some(4) })
            .with_byzantine(ByzantineSpec { shard: 1, budget: 2, kind: CorruptionKind::Plausible })
            .with_max_faulty(2)
            .validate(4);
    }
}
