//! Shard worker process for socket-backed fleets.
//!
//! Spawned once per shard by `SocketFleet::launch` (or directly via
//! `spawn_shard_process`) with `<coordinator-addr> <shard-id>` on the
//! command line; everything else — sizes, modes, seed, fault plan, rule,
//! seed body, peer addresses — arrives over the socket in the `Init`
//! frame. See `symbreak_runtime::transport` for the handshake.

fn main() {
    symbreak_runtime::transport::shard_process_main();
}
