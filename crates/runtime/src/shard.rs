//! Shard workers: each thread owns a contiguous range of nodes and speaks
//! the wire protocol of [`crate::message`] in the configured
//! [`WireMode`].
//!
//! **Per-entry mode** recycles its batch buffers: outgoing request and
//! reply batches are drawn from per-type buffer pools that are
//! replenished by the batches *received* from peers (each round a shard
//! sends and receives the same number of batches of each type, so the
//! pools reach equilibrium after the first round).
//!
//! **Batched mode** aggregates, in two coordinator-arbitrated gears.
//! In the *pull* gear each peer gets one [`PullBatch`] (a single
//! [`TargetRun`] covering the peer's whole range), answered by one
//! [`OpinionPalette`] sampled shard-side from the server's round-start
//! opinions. Pull batches are served the moment they arrive
//! (pipelined, no intra-round barrier); each (server, origin) pair
//! draws from its own dedicated RNG stream, so the realized trajectory
//! is deterministic per seed even though channel arrival order is not.
//! In the *push* gear (concentrated regime) there are no pulls: every
//! shard broadcasts its opinion histogram and the union of the
//! received histograms is the global round-start distribution — see
//! [`DataFormat::Push`]. The coordinator's report barrier keeps the
//! fleet in round lockstep, so every message a shard receives belongs
//! to its current round (asserted, not assumed).
//!
//! How the received aggregates become node updates is dispatched on
//! the rule's [`SampleAccess`] (under [`ConsumeMode::Native`], batched
//! wire only):
//!
//! * **ordered window** (and [`ConsumeMode::Ordered`]) — pull palettes
//!   are dealt into the sample buffer in origin order through an
//!   inside-out Fisher–Yates (an iid sequence conditioned on its
//!   multiset is a uniform arrangement, so per-node samples are
//!   exactly Uniform Pull); push rounds draw every sample iid from the
//!   union alias table; then one `update` call per node.
//! * **multiset** — the palettes are consumed directly as one pooled
//!   histogram, dealt to nodes as per-node window count vectors by a
//!   multivariate-hypergeometric `WindowSplitter` (pull) or iid
//!   `WindowMultinomial` windows (push) — no Fisher–Yates pass, no
//!   sample materialization, one `update_from_counts` call per node.
//!   Falls back to the ordered dealing while the pool is too diverse
//!   for the per-node conditional walks to pay.
//! * **single peer** — the dealt multiset *is* the next opinion
//!   vector: palettes (pull) or union draws (push) land straight in
//!   `opinions`, with no sample buffer and no rule calls.
//!
//! Reports are counted through a reusable touched-slot scratch in
//! `O(local_n)` instead of a fresh dense `vec![0; k]`; under
//! [`ReportMode::Delta`] the shard additionally keeps the previous
//! round's counts so it can emit signed `(slot, Δcount)` bodies of size
//! `O(#changed)` when the coordinator commands [`ReportFormat::Delta`].
//!
//! Under [`crate::cluster::ShardRepr::Histogram`] (batched wire, native
//! consumption, multiset or single-peer rule) the worker is
//! **condensed**: it never materializes a per-agent opinion vector at
//! all. Its only state is a [`Configuration`]-backed local histogram
//! plus the undecided count. The round-start snapshot mirrors the
//! histogram (ascending slot order), pull palettes are served from a
//! per-round cached alias table over it, received palettes and push
//! unions are consumed as mass moved between histograms — grouped
//! hypergeometric blocks in the pull gear (one
//! [`symbreak_core::MultisetRule`] `condensed_window_step` call per
//! occupied opinion group, or a single mega-block call for
//! own-insensitive rules, with a flat Fisher–Yates dealing fallback in
//! the diverse regime), and one `condensed_push_step` call per round
//! in the push gear — so in both gears the per-round compute drops
//! from `O(local_n · h)` to `O(#occupied · h)` — and reports mirror
//! the histogram straight into the touched-slot scratch. Rejoin copies the snapshot counts and
//! verifies them in `O(#occupied)` with no dense recount. The
//! agent-backed paths are untouched (byte-identical per seed).
//!
//! Under an **active [`FaultPlan`]** (batched wire only) the worker
//! runs fault-aware exchange variants: fault decisions are stateless
//! hashes shared with every peer and the coordinator (see
//! [`crate::fault`]), so senders intercept their own transmissions
//! (drop / duplicate / delay-by-one-round), receivers compute exactly
//! which messages will arrive — round tags park messages from peers
//! that ran ahead of the relaxed barrier until their round starts —
//! and lost or late pull palettes are compensated by
//! re-sampling the requested draws from the shard's own round-start
//! snapshot (counted as `recovered`). Crash-stopped shards simply
//! receive no round commands; on [`Control::Rejoin`] the worker
//! rebuilds its opinions from the coordinator snapshot and verifies
//! the reconstruction with a dense recount. Byzantine shards corrupt
//! their report bodies through the adversary crate's strategies on a
//! dedicated RNG stream. The fault-free paths are byte-identical to
//! the inert-plan cluster.

use rand::{Rng, SeedableRng};

use symbreak_core::{Opinion, RoundStateMode, SampleAccess, UpdateRule};
use symbreak_sim::dist::{
    expected_window_visits, expected_window_visits_counts, sample_multinomial_into,
    sample_multinomial_sparse_into, Binomial, Categorical, DynamicCategorical, GroupSplitter,
    WindowMultinomial, WindowSplitter, WALK_CANDIDATE_CAP,
};
use symbreak_sim::rng::{trial_seed, Pcg64};

use symbreak_adversary::{Adversary, RandomFlipper};
use symbreak_core::Configuration;

use crate::cluster::{ConsumeMode, ReportMode, ShardRepr, WireMode};
use crate::codec::{unzigzag, zigzag};
use crate::fault::{CorruptionKind, FaultKind, FaultPlan, BYZANTINE_SALT};
use crate::message::{
    Control, DataFormat, OpinionPalette, PullBatch, Reply, ReportBody, ReportFormat, Request,
    ShardMessage, ShardReport, TargetRun,
};
use crate::transport::{Transport, TransportLost};

/// Node-ownership partition: shard `i` owns global ids
/// `[i·chunk, min((i+1)·chunk, n))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Partition {
    pub n: u32,
    pub chunk: u32,
    pub shards: usize,
}

impl Partition {
    pub fn new(n: u32, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(n as usize >= shards, "need at least one node per shard");
        let chunk = n.div_ceil(shards as u32);
        Self { n, chunk, shards }
    }

    pub fn owner(&self, gid: u32) -> usize {
        debug_assert!(gid < self.n);
        ((gid / self.chunk) as usize).min(self.shards - 1)
    }

    pub fn range(&self, shard: usize) -> std::ops::Range<u32> {
        // Both ends clamp to n: with chunk = ceil(n/shards), trailing
        // shards can be empty (e.g. n = 10, shards = 8).
        let lo = ((shard as u32) * self.chunk).min(self.n);
        let hi = ((shard as u32 + 1) * self.chunk).min(self.n);
        lo..hi
    }
}

/// Static per-run parameters shared by every shard.
///
/// `k_slots` is the number of color slots reported back to the
/// coordinator (opinion indices must stay below it).
#[derive(Debug, Clone)]
pub(crate) struct ShardSpec {
    pub partition: Partition,
    pub k_slots: usize,
    pub report_mode: ReportMode,
    pub wire_mode: WireMode,
    pub consume_mode: ConsumeMode,
    pub repr: ShardRepr,
    pub master_seed: u64,
    pub plan: FaultPlan,
    pub round_state: RoundStateMode,
}

/// A shard's seed state, matching its representation: the coordinator
/// sends a sparse histogram body to condensed shards and a materialized
/// opinion vector otherwise (the worker asserts the variant against the
/// spec's representation and the rule's effective sample access).
pub(crate) enum ShardInit {
    Agents(Vec<Opinion>),
    Histogram(Vec<(u32, u64)>),
}

/// Runs one shard to completion over any [`Transport`]. A lost
/// endpoint — a dead peer process, a vanished coordinator — aborts the
/// current round and exits the worker cleanly (the loss cascades to
/// the rest of the fleet through their own transports; see
/// [`crate::transport`]).
pub(crate) fn run_shard<R: UpdateRule, T: Transport>(
    shard_id: usize,
    spec: ShardSpec,
    rule: R,
    init: ShardInit,
    transport: T,
) {
    let mut worker = Worker::new(shard_id, spec, rule, init, transport);
    loop {
        match worker.transport.recv_control() {
            Ok(Control::Round { round, report, data }) => {
                if worker.round(round, report, data).is_err() {
                    break;
                }
            }
            Ok(Control::Rejoin { round, body, undecided }) => {
                worker.rejoin(round, &body, undecided)
            }
            Ok(Control::Stop) | Err(_) => break,
        }
    }
}

/// A pooled palette allocation: the distinct-opinion list plus its
/// `(palette_idx, count)` runs.
type PaletteBuffers = (Vec<Opinion>, Vec<(u32, u64)>);

/// Applies a signed delta to an unsigned count (counts are bounded by
/// `n ≤ u32::MAX`, so the i64 arithmetic cannot overflow).
fn add_signed(base: u64, d: i64) -> u64 {
    let out = base as i64 + d;
    debug_assert!(out >= 0, "delta drove a count negative");
    out as u64
}

/// Two-pass 16-bit LSD radix sort for the flat condensed tally: ~4
/// sequential passes over the data plus two bucket scatters, where a
/// comparison sort pays `n log n` branchy compares. `tmp` and `counts`
/// are caller-owned scratch so the per-round cost is zeroing the 2^16
/// counters twice. Falls back to `sort_unstable` for short inputs
/// (counter zeroing would dominate) or inputs too long for the u32
/// bucket offsets.
fn radix_sort_u32(data: &mut [u32], tmp: &mut Vec<u32>, counts: &mut Vec<u32>) {
    let n = data.len();
    if n < 4096 || n > u32::MAX as usize {
        data.sort_unstable();
        return;
    }
    tmp.resize(n, 0);
    counts.resize(1 << 16, 0);
    radix_pass(data, tmp, counts, 0);
    radix_pass(tmp, data, counts, 16);
}

/// One stable counting-sort pass of [`radix_sort_u32`] on the 16-bit
/// digit at `shift`.
fn radix_pass(src: &[u32], dst: &mut [u32], counts: &mut [u32], shift: u32) {
    counts.fill(0);
    for &x in src {
        counts[((x >> shift) & 0xFFFF) as usize] += 1;
    }
    let mut sum = 0u32;
    for c in counts.iter_mut() {
        let t = *c;
        *c = sum;
        sum += t;
    }
    for &x in src {
        let b = ((x >> shift) & 0xFFFF) as usize;
        dst[counts[b] as usize] = x;
        counts[b] += 1;
    }
}

/// Crossover between the aggregate condensed-pull paths (mega-block /
/// grouped) and flat per-ball dealing: the aggregate paths pay one
/// hypergeometric draw plus `O(log d)` Fenwick traffic per pool
/// category, which costs roughly this many per-ball dealing steps.
/// Aggregates engage only while `d · FACTOR ≤ local_n · h`; in the
/// diverse regime (singleton starts, `d ≈ local_n · h`) they would be
/// an order of magnitude slower than touching every ball once.
const MEGA_DISPATCH_FACTOR: u64 = 16;

/// Tallies `opinions` into the dense `counts` scratch (assumed zero
/// outside `touched`), recording first-touched slots, and returns the
/// undecided count. The one histogram loop behind the delta baseline,
/// both batched data planes, and the report builder.
fn count_opinions(opinions: &[Opinion], counts: &mut [u64], touched: &mut Vec<u32>) -> u64 {
    let mut undecided = 0u64;
    for &o in opinions {
        if o.is_undecided() {
            undecided += 1;
            continue;
        }
        let i = o.index();
        if counts[i] == 0 {
            touched.push(i as u32);
        }
        counts[i] += 1;
    }
    undecided
}

/// Which dense scratch a condensed worker mirrors its histogram into.
enum Mirror {
    /// Round-start snapshot (`snap_counts` / `snap_touched`).
    Snapshot,
    /// Report tally (`count_scratch` / `touched`).
    Report,
    /// Delta baseline (`prev_counts` / `prev_touched`).
    Prev,
}

/// One shard's mutable round state: the owned opinions plus every
/// reusable buffer of both wire modes and the report formats.
struct Worker<R, T> {
    shard_id: usize,
    partition: Partition,
    k_slots: usize,
    report_mode: ReportMode,
    wire_mode: WireMode,
    /// The effective sample access this worker dispatches on:
    /// the rule's declared access under [`ConsumeMode::Native`] on the
    /// batched wire, [`SampleAccess::OrderedWindow`] otherwise (the
    /// per-entry wire is per-draw by construction).
    access: SampleAccess,
    rule: R,
    /// The materialized agent vector — empty on a condensed shard,
    /// which holds its whole state in `hist` + `hist_undecided`.
    opinions: Vec<Opinion>,
    transport: T,
    rng: Pcg64,
    h: usize,
    lo: u32,
    /// One sample slot per (local node, pull): `samples[local·h + s]`.
    samples: Vec<Opinion>,

    // Condensed (histogram) representation state.
    /// Whether this worker is condensed (see the module docs): decided
    /// once at construction from the spec's [`ShardRepr`] and the
    /// effective sample access, never per round.
    condensed: bool,
    /// The shard's node count — `opinions.len()` on agent-backed
    /// shards, the seed-body mass on condensed ones.
    local_n: usize,
    /// Condensed local state: the decided counts as sorted
    /// `(slot, count)` pairs — ascending slots, positive counts,
    /// `O(#occupied)` memory. Kept sparse on purpose: rebuilding a
    /// dense [`Configuration`] every round costs three extra
    /// scatter/gather passes over the `k_slots` array, which is
    /// exactly the `O(local_n)`-class work condensation exists to
    /// avoid when `#occupied ≈ local_n`.
    hist_pairs: Vec<(u32, u64)>,
    /// Decided mass of `hist_pairs` (`Σ count`).
    hist_n: u64,
    /// Condensed local state: undecided node count.
    hist_undecided: u64,
    /// Whether `count_scratch` / `touched` still hold the post-step
    /// tally `hist` was just rebuilt from — [`Self::build_report`] then
    /// reports straight off them instead of re-mirroring the histogram
    /// (one fewer `O(#occupied)` scatter pass per condensed round).
    report_fresh: bool,
    /// Whether `hist_pairs` was just installed straight from the flat
    /// per-draw tally ([`Self::install_condensed_from_flat`]) — the
    /// dense scratch was never written, so a sparse untracked report is
    /// a clone of the pairs and every other report shape mirrors first.
    report_pairs_fresh: bool,
    /// Flat per-draw tally for condensed paths that decide one node at
    /// a time (single-peer pulls, flat dealing): raw slot indices with
    /// `u32::MAX` standing for UNDECIDED, sorted and run-length-encoded
    /// into `hist_pairs` at install. One sequential sort beats
    /// `local_n` random scatters into the `k_slots`-wide scratch plus
    /// the gather pass needed to undo them.
    consumed_flat: Vec<u32>,
    /// Scratch for [`radix_sort_u32`] over `consumed_flat`.
    radix_tmp: Vec<u32>,
    radix_counts: Vec<u32>,
    /// Per-round flat opinion mirror for condensed raw pull serving —
    /// the round-start histogram expanded to one entry per node
    /// (undecided tail included), built lazily on the first raw batch
    /// of a round and shared by the rest. A uniform index read is a
    /// draw from the round-start distribution at exactly the
    /// agent-backed serve cost (one `gen_range` and one array read per
    /// draw); the `O(local_n)` sequential run-fill amortizes against
    /// the ~`local_n·h` draws the raw regime serves per round.
    serve_flat: Vec<Opinion>,
    serve_flat_fresh: bool,
    /// Condensed own-opinion groups `(opinion, count)`, ascending with
    /// undecided last — the `condensed_push_step` contract order.
    groups: Vec<(Opinion, u64)>,
    /// Condensed push-step output scratch (entries may repeat).
    step_out: Vec<(Opinion, u64)>,

    // Per-entry wire state.
    snapshot: Vec<Opinion>,
    outgoing: Vec<Vec<Request>>,
    reply_out: Vec<Vec<Reply>>,
    request_pool: Vec<Vec<Request>>,
    reply_pool: Vec<Vec<Reply>>,

    // Batched wire state.
    dest_theta: Vec<f64>,
    dest_counts: Vec<u64>,
    /// One serving RNG stream per requesting shard: palettes for origin
    /// `o` always draw from `serve_rngs[o]`, so batches can be served
    /// the moment they arrive (pipelined, like per-entry mode) while
    /// keeping the realized trajectory independent of channel arrival
    /// order.
    serve_rngs: Vec<Pcg64>,
    run_pool: Vec<Vec<TargetRun>>,
    palette_pool: Vec<PaletteBuffers>,
    /// Round-start local opinion histogram (dense, zero outside
    /// `snap_touched`) the palettes are sampled from.
    snap_counts: Vec<u64>,
    snap_touched: Vec<u32>,
    snap_undecided: u64,
    /// Per-origin draw aggregation buffer (zero between serves).
    serve_counts: Vec<u64>,
    theta_scratch: Vec<f64>,
    /// This round's received palettes, slotted by server shard so the
    /// sample expansion order is arrival-order independent.
    recv_palettes: Vec<Option<PaletteBuffers>>,
    /// Union-histogram scratch for push rounds: parallel alias-table
    /// weights and the opinions they stand for.
    alias_weights: Vec<f64>,
    alias_values: Vec<Opinion>,

    // Incremental (delta-patched) round state. Engages only when the
    // spec asks for [`RoundStateMode::Incremental`] on a condensed,
    // batched, fault-free worker — decided once at construction; every
    // other combination keeps the rebuild paths bit-for-bit.
    inc: bool,
    /// Last round this shard broadcast a push histogram. Deltas are
    /// only lawful between *consecutive* push rounds; sender and every
    /// receiver derive the same full-vs-delta decision from the shared
    /// coordinator gear sequence, so the wire needs no new frame kind.
    push_sent_round: Option<u64>,
    /// The histogram as of the last push broadcast (the sender-side
    /// delta baseline) and its undecided mass.
    push_sent_prev: Vec<(u32, u64)>,
    push_sent_undecided: u64,
    /// Persistent push-union state: dense counts over `k_slots`, the
    /// ascending occupied-slot list, and the undecided mass. On delta
    /// rounds it is patched from `O(#changed)` wire entries instead of
    /// re-deduplicating `shards · #occupied` raw entries through the
    /// snapshot scratch.
    union_counts: Vec<u64>,
    union_occ: Vec<u32>,
    union_undecided: u64,
    /// Round the persistent union reflects.
    union_round: Option<u64>,
    /// Slots whose union membership (zero ↔ positive) flipped while
    /// folding this round's palettes, plus the merge scratch: the
    /// occupied list is rebuilt by one sorted merge per round instead
    /// of per-transition `Vec::insert` / `Vec::remove` (which is
    /// quadratic when a round flips many slots — the condensed
    /// closed-form step resamples every occupied slot).
    union_trans: Vec<u32>,
    union_occ_scratch: Vec<u32>,
    /// Persistent push-consume alias table (incremental rounds only):
    /// rebuilt from `alias_weights` only when the union actually
    /// changed. A stalled round with no global switches reuses last
    /// round's table outright — `Categorical::new` is deterministic in
    /// its weights, so the reuse is byte-invisible, not just lawful.
    push_cat: Option<Categorical>,
    push_cat_stale: bool,
    /// Persistent serving sampler over `k_slots + 1` weights (the
    /// trailing slot carries the undecided mass): patched from the
    /// histogram diff at each round-start snapshot, then drawn from in
    /// `O(log k)` per pull — small raw batches skip the `O(local_n)`
    /// flat-mirror fill entirely.
    serve_fen: DynamicCategorical,
    /// The `hist_pairs` state `serve_fen` currently reflects.
    serve_fen_prev: Vec<(u32, u64)>,
    /// Pooled sparse report bodies, recycled by the transport after
    /// framing — the last per-round allocation in the worker loop.
    report_pool: Vec<Vec<(u32, u64)>>,

    // Multiset-native consumption scratch.
    /// One node's window histogram (≤ h entries).
    window: Vec<(Opinion, u32)>,
    /// Pooled received-sample histogram (parallel to `pool_ops`):
    /// decreasing count order on the agent-backed path (the walk's
    /// early exit bites first), ascending opinion order — the
    /// condensed-step `values` contract — on the condensed path.
    pool_counts: Vec<u64>,
    pool_ops: Vec<Opinion>,
    /// Slots touched while tallying the pool into `serve_counts`
    /// (reused as the dense tally scratch — it is zero outside serves).
    pool_touched: Vec<u32>,
    /// One opinion-group's dealt share of the pooled histogram
    /// (condensed pull, grouped path; aligned with `pool_ops`).
    group_block: Vec<u64>,
    /// Flattened pool for the diverse-regime Fisher–Yates fallback of
    /// the condensed pull consume (`O(1)` per dealt ball).
    flat_pool: Vec<Opinion>,

    // Report state.
    count_scratch: Vec<u64>,
    touched: Vec<u32>,
    /// Previous round's counts, kept only under [`ReportMode::Delta`].
    prev_counts: Vec<u64>,
    prev_touched: Vec<u32>,

    // Fault-injection state (inert unless `plan.is_active()`).
    plan: FaultPlan,
    /// The round currently being executed (from the last round command).
    round_no: u64,
    /// Future-tagged messages parked until their round starts: under a
    /// relaxed barrier a peer that made quorum may run one (or more)
    /// rounds ahead of a straggler.
    pending: Vec<ShardMessage>,
    /// A report held for one barrier (`FaultKind::Delay`).
    delayed_report: Option<ShardReport>,
    /// `messages_sent` of reports that were dropped in transit, carried
    /// forward into the next report so the cost model stays honest.
    carry_messages: u64,
    /// Samples regenerated locally this round for lost palettes.
    recovered: u64,
    /// Dedicated corruption stream of a Byzantine shard.
    byz_rng: Option<Pcg64>,
}

impl<R: UpdateRule, T: Transport> Worker<R, T> {
    fn new(shard_id: usize, spec: ShardSpec, rule: R, init: ShardInit, transport: T) -> Self {
        let ShardSpec {
            partition,
            k_slots,
            report_mode,
            wire_mode,
            consume_mode,
            repr,
            master_seed,
            plan,
            round_state,
        } = spec;
        let rng = Pcg64::seed_from_u64(trial_seed(master_seed, shard_id as u64 + 1));
        let h = rule.sample_count();
        let shards = partition.shards;
        let per_entry = wire_mode == WireMode::PerEntry;
        let batched = !per_entry;
        let tracking = report_mode == ReportMode::Delta;
        // The per-entry wire is per-draw by construction, so native
        // consumption only applies on the batched data plane.
        let access = if batched && consume_mode == ConsumeMode::Native {
            let access = rule.sample_access();
            assert!(
                access != SampleAccess::Multiset || rule.as_multiset().is_some(),
                "Multiset access requires a MultisetRule impl"
            );
            debug_assert!(access != SampleAccess::SinglePeer || h == 1);
            access
        } else {
            SampleAccess::OrderedWindow
        };
        // Condensed iff the representation asks for it and the rule's
        // effective access can consume histograms — and the init
        // variant must agree (the coordinator applies this predicate).
        let condensed = repr == ShardRepr::Histogram && access != SampleAccess::OrderedWindow;
        assert_eq!(
            condensed,
            matches!(init, ShardInit::Histogram(_)),
            "shard init variant must match the condensed predicate"
        );
        // Incremental round state applies on the batched data plane,
        // where the per-round sampler and union rebuilds live: the
        // push gear's delta broadcasts (agent-backed and condensed
        // alike) and the condensed serving sampler. Per-entry workers
        // have no per-round rebuild to amortize, and active fault
        // plans re-derive state across drop/rejoin windows that a
        // delta chain cannot span — both keep the rebuild path
        // regardless of the knob.
        let inc = round_state == RoundStateMode::Incremental && batched && !plan.is_active();
        let (opinions, hist_pairs, local_n) = match init {
            ShardInit::Agents(opinions) => {
                let local_n = opinions.len();
                (opinions, Vec::new(), local_n)
            }
            ShardInit::Histogram(mut body) => {
                // Canonicalize the seed body into the sorted-pairs
                // invariant (ascending slots, positive counts, no
                // duplicates — repeated slots accumulate).
                body.sort_unstable();
                let mut pairs: Vec<(u32, u64)> = Vec::with_capacity(body.len());
                for (slot, count) in body {
                    assert!((slot as usize) < k_slots, "seed body: slot {slot} out of range");
                    if count == 0 {
                        continue;
                    }
                    match pairs.last_mut() {
                        Some(last) if last.0 == slot => last.1 += count,
                        _ => pairs.push((slot, count)),
                    }
                }
                let local_n = pairs.iter().map(|&(_, c)| c).sum::<u64>() as usize;
                (Vec::new(), pairs, local_n)
            }
        };

        let mut worker = Self {
            shard_id,
            partition,
            k_slots,
            report_mode,
            wire_mode,
            access,
            rule,
            rng,
            h,
            lo: partition.range(shard_id).start,
            // Single-peer-native workers never materialize samples — both
            // gears write the dealt multiset straight into `opinions` and
            // there is no ordered fallback on that path. Condensed
            // workers never materialize anything per-agent at all.
            samples: if access == SampleAccess::SinglePeer || condensed {
                Vec::new()
            } else {
                vec![Opinion::new(0); local_n * h]
            },
            condensed,
            local_n,
            hist_n: local_n as u64,
            hist_undecided: 0,
            hist_pairs,
            report_fresh: false,
            report_pairs_fresh: false,
            consumed_flat: Vec::new(),
            radix_tmp: Vec::new(),
            radix_counts: Vec::new(),
            serve_flat: Vec::new(),
            serve_flat_fresh: false,
            groups: Vec::new(),
            step_out: Vec::new(),
            snapshot: if per_entry { opinions.clone() } else { Vec::new() },
            outgoing: if per_entry {
                (0..shards).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            reply_out: if per_entry {
                (0..shards).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            request_pool: Vec::new(),
            reply_pool: Vec::new(),
            dest_theta: if batched {
                (0..shards).map(|d| partition.range(d).len() as f64).collect()
            } else {
                Vec::new()
            },
            dest_counts: if batched { vec![0; shards] } else { Vec::new() },
            serve_rngs: if batched {
                // A distinct stream per (server, origin) pair, salted so
                // it never collides with the shard round streams.
                (0..shards)
                    .map(|origin| {
                        let pair = (shard_id * shards + origin) as u64;
                        Pcg64::seed_from_u64(trial_seed(
                            master_seed ^ 0x9E37_79B9_7F4A_7C15,
                            pair + 1,
                        ))
                    })
                    .collect()
            } else {
                Vec::new()
            },
            run_pool: Vec::new(),
            palette_pool: Vec::new(),
            snap_counts: if batched { vec![0; k_slots] } else { Vec::new() },
            snap_touched: Vec::new(),
            snap_undecided: 0,
            serve_counts: if batched { vec![0; k_slots] } else { Vec::new() },
            theta_scratch: Vec::new(),
            recv_palettes: if batched { (0..shards).map(|_| None).collect() } else { Vec::new() },
            alias_weights: Vec::new(),
            alias_values: Vec::new(),
            inc,
            push_sent_round: None,
            push_sent_prev: Vec::new(),
            push_sent_undecided: 0,
            union_counts: if inc { vec![0; k_slots] } else { Vec::new() },
            union_occ: Vec::new(),
            union_undecided: 0,
            union_round: None,
            union_trans: Vec::new(),
            union_occ_scratch: Vec::new(),
            push_cat: None,
            push_cat_stale: true,
            serve_fen: if inc && condensed {
                DynamicCategorical::with_slots(k_slots + 1)
            } else {
                DynamicCategorical::with_slots(0)
            },
            serve_fen_prev: Vec::new(),
            report_pool: Vec::new(),
            window: Vec::new(),
            pool_counts: Vec::new(),
            pool_ops: Vec::new(),
            pool_touched: Vec::new(),
            group_block: Vec::new(),
            flat_pool: Vec::new(),
            count_scratch: vec![0; k_slots],
            touched: Vec::new(),
            prev_counts: if tracking { vec![0; k_slots] } else { Vec::new() },
            prev_touched: Vec::new(),
            round_no: 0,
            pending: Vec::new(),
            delayed_report: None,
            carry_messages: 0,
            recovered: 0,
            byz_rng: if plan.byzantine_spec(shard_id).is_some() {
                Some(Pcg64::seed_from_u64(trial_seed(
                    plan.seed ^ BYZANTINE_SALT,
                    shard_id as u64 + 1,
                )))
            } else {
                None
            },
            plan,
            opinions,
            transport,
        };
        if tracking {
            // The round-0 baseline the first delta report is relative to.
            if worker.condensed {
                worker.mirror_hist(Mirror::Prev);
            } else {
                count_opinions(&worker.opinions, &mut worker.prev_counts, &mut worker.prev_touched);
            }
        }
        worker
    }

    /// Copies the condensed histogram into one of the dense scratches
    /// (assumed zero with an empty touched list) in ascending slot
    /// order — the condensed stand-in for [`count_opinions`], `O(#occupied)`.
    fn mirror_hist(&mut self, target: Mirror) {
        debug_assert!(self.condensed);
        let (counts, touched) = match target {
            Mirror::Snapshot => (&mut self.snap_counts, &mut self.snap_touched),
            Mirror::Report => (&mut self.count_scratch, &mut self.touched),
            Mirror::Prev => (&mut self.prev_counts, &mut self.prev_touched),
        };
        debug_assert!(touched.is_empty());
        for &(i, c) in &self.hist_pairs {
            counts[i as usize] = c;
            touched.push(i);
        }
    }

    /// Freezes the round-start local histogram into the snapshot
    /// scratch. Agent-backed shards tally their opinions (first-touch
    /// order, byte-identical to the pre-condensed runtime); condensed
    /// shards mirror `hist` (ascending slot order — a lawful wire-order
    /// difference) and invalidate the per-round serving alias.
    fn snapshot_round_start(&mut self) {
        self.snap_touched.clear();
        if self.condensed {
            self.mirror_hist(Mirror::Snapshot);
            self.snap_undecided = self.hist_undecided;
            self.serve_flat_fresh = false;
            if self.inc {
                self.patch_serve_fen();
            }
        } else {
            self.snap_undecided =
                count_opinions(&self.opinions, &mut self.snap_counts, &mut self.snap_touched);
        }
    }

    /// Patches the persistent serving sampler to the current
    /// histogram: a two-pointer walk over the (both ascending) current
    /// and previously-reflected pair lists — `O(#occupied)` sequential
    /// compares, but tree traffic only for the `O(#changed)` slots
    /// whose count actually moved (`set` is a no-op on equal counts).
    /// The trailing weight slot carries the undecided mass.
    fn patch_serve_fen(&mut self) {
        debug_assert!(self.inc);
        let fen = &mut self.serve_fen;
        let cur = &self.hist_pairs;
        let prev = &self.serve_fen_prev;
        let (mut i, mut j) = (0usize, 0usize);
        while i < cur.len() || j < prev.len() {
            if j == prev.len() || (i < cur.len() && cur[i].0 < prev[j].0) {
                fen.set(cur[i].0 as usize, cur[i].1);
                i += 1;
            } else if i == cur.len() || prev[j].0 < cur[i].0 {
                fen.set(prev[j].0 as usize, 0);
                j += 1;
            } else {
                fen.set(cur[i].0 as usize, cur[i].1);
                i += 1;
                j += 1;
            }
        }
        fen.set(self.k_slots, self.hist_undecided);
        self.serve_fen_prev.clone_from(&self.hist_pairs);
        debug_assert_eq!(
            self.serve_fen.total(),
            self.local_n as u64,
            "serving sampler must carry exactly the shard's mass"
        );
    }

    /// Rebuilds the condensed own-opinion groups from the histogram:
    /// `(opinion, count)` ascending (occupied slots are sorted), with
    /// the undecided group last ([`Opinion::UNDECIDED`] orders above
    /// every color) — the order `condensed_push_step` requires.
    fn condensed_groups(&mut self) {
        debug_assert!(self.condensed);
        self.groups.clear();
        for &(i, c) in &self.hist_pairs {
            self.groups.push((Opinion::new(i), c));
        }
        if self.hist_undecided > 0 {
            self.groups.push((Opinion::UNDECIDED, self.hist_undecided));
        }
    }

    /// Installs a condensed round's post-step tally — accumulated in
    /// `count_scratch` / `touched` — as the new histogram: one sort of
    /// the touched slots plus one gather pass, `O(#occupied ·
    /// log #occupied)` with no dense traffic. The scratch is
    /// deliberately left holding the tally and flagged fresh: the
    /// round's report reads it directly ([`Self::build_report`] zeroes
    /// it behind the report, as it always has).
    fn install_condensed(&mut self, undecided: u64) {
        debug_assert!(self.condensed);
        // The sorted-pairs invariant; also canonicalizes the report
        // body order downstream of the first-touch tally.
        self.touched.sort_unstable();
        self.hist_pairs.clear();
        let mut mass = 0u64;
        for &i in &self.touched {
            let c = self.count_scratch[i as usize];
            debug_assert!(c > 0, "tallies only ever touch slots they increment");
            mass += c;
            self.hist_pairs.push((i, c));
        }
        self.hist_n = mass;
        self.hist_undecided = undecided;
        self.report_fresh = true;
        debug_assert_eq!(
            mass + undecided,
            self.local_n as u64,
            "condensed step must conserve the shard's mass"
        );
    }

    /// Installs the post-step histogram from the flat per-draw tally
    /// (`consumed_flat`): sort the raw slot indices, then run-length
    /// encode the runs straight into the sorted `hist_pairs`. The
    /// sentinel `u32::MAX` entries (UNDECIDED) sort to the tail and
    /// become the undecided mass. The dense scratch is never touched,
    /// so the report is flagged `report_pairs_fresh` instead of
    /// `report_fresh`.
    fn install_condensed_from_flat(&mut self) {
        debug_assert!(self.condensed);
        radix_sort_u32(&mut self.consumed_flat, &mut self.radix_tmp, &mut self.radix_counts);
        let dec_end = self.consumed_flat.partition_point(|&s| s != u32::MAX);
        let undecided = (self.consumed_flat.len() - dec_end) as u64;
        self.hist_pairs.clear();
        let mut i = 0;
        while i < dec_end {
            let s = self.consumed_flat[i];
            let mut j = i + 1;
            while j < dec_end && self.consumed_flat[j] == s {
                j += 1;
            }
            self.hist_pairs.push((s, (j - i) as u64));
            i = j;
        }
        self.consumed_flat.clear();
        self.hist_n = dec_end as u64;
        self.hist_undecided = undecided;
        self.report_pairs_fresh = true;
        debug_assert_eq!(
            self.hist_n + undecided,
            self.local_n as u64,
            "condensed step must conserve the shard's mass"
        );
    }

    fn round(
        &mut self,
        round: u64,
        format: ReportFormat,
        data: DataFormat,
    ) -> Result<(), TransportLost> {
        self.round_no = round;
        let faulty = self.plan.is_active();
        let mut messages_sent = std::mem::take(&mut self.carry_messages);
        if faulty {
            self.flush_delayed();
        }
        match (self.wire_mode, data, self.access) {
            (WireMode::PerEntry, _, _) => {
                debug_assert!(!faulty, "fault plans require the batched wire");
                self.pull_per_entry(&mut messages_sent)?;
                self.apply_ordered_windows();
            }
            (WireMode::Batched, DataFormat::Pull, access) => {
                if faulty {
                    self.pull_exchange_faulty(&mut messages_sent)?;
                } else {
                    self.pull_exchange(&mut messages_sent)?;
                }
                match (self.condensed, access) {
                    (false, SampleAccess::OrderedWindow) => {
                        self.deal_palettes_ordered();
                        self.apply_ordered_windows();
                    }
                    (false, SampleAccess::SinglePeer) => self.deal_palettes_single_peer(),
                    (false, SampleAccess::Multiset) => self.consume_palettes_multiset(),
                    (true, SampleAccess::SinglePeer) => self.consume_pull_condensed_single_peer(),
                    (true, SampleAccess::Multiset) => self.consume_pull_condensed_multiset(),
                    (true, SampleAccess::OrderedWindow) => {
                        unreachable!("ordered-window rules are never condensed")
                    }
                }
            }
            (WireMode::Batched, DataFormat::Push, access) => {
                if faulty {
                    self.push_exchange_faulty(&mut messages_sent)?;
                } else {
                    self.push_exchange(&mut messages_sent)?;
                }
                match (self.condensed, access) {
                    (false, SampleAccess::OrderedWindow) => {
                        self.sample_push_ordered();
                        self.apply_ordered_windows();
                    }
                    (false, SampleAccess::SinglePeer) => self.sample_push_single_peer(),
                    (false, SampleAccess::Multiset) => self.sample_push_multiset(),
                    (true, SampleAccess::SinglePeer) => self.consume_push_condensed_single_peer(),
                    (true, SampleAccess::Multiset) => self.consume_push_condensed_multiset(),
                    (true, SampleAccess::OrderedWindow) => {
                        unreachable!("ordered-window rules are never condensed")
                    }
                }
            }
        }
        if self.condensed {
            // The condensed contract: no per-agent state, ever — a
            // round that materialized opinions or samples has silently
            // fallen off the O(#occupied) path.
            debug_assert!(
                self.opinions.is_empty() && self.samples.is_empty() && self.snapshot.is_empty(),
                "condensed shard materialized per-agent state"
            );
        }

        // Sample the wire counters after the exchange and before the
        // report itself is framed: a report's own bytes land in the
        // next round's report (the coordinator's per-shard maximum
        // closes the one-round tail at shutdown).
        let wire_sent = self.transport.bytes_sent();
        let wire_received = self.transport.bytes_received();
        let (mut body, undecided, changed_slots) = self.build_report(format);
        if faulty {
            self.corrupt_report_if_byzantine(&mut body);
        }
        let report = ShardReport {
            shard: self.shard_id,
            round,
            body,
            undecided,
            messages_sent,
            recovered: std::mem::take(&mut self.recovered),
            changed_slots,
            bytes_sent: wire_sent,
            bytes_received: wire_received,
        };
        if !faulty {
            self.send_report_pooled(report);
            return Ok(());
        }
        match self.plan.report_fault(round, self.shard_id) {
            None => self.send_report_pooled(report),
            Some(FaultKind::Drop) => {
                // Transmitted and lost: carry the wire tally forward so
                // the next report accounts for this round's traffic,
                // and count the lost frame's bytes as sent.
                self.transport.count_lost_report(&report);
                self.carry_messages += report.messages_sent;
            }
            Some(FaultKind::Duplicate) => {
                self.send_report_pooled(report.clone());
                self.send_report_pooled(report);
            }
            Some(FaultKind::Delay) => {
                debug_assert!(self.delayed_report.is_none(), "one delayed report at a time");
                self.delayed_report = Some(report);
            }
        }
        Ok(())
    }

    /// Sends a report and recycles whatever body buffer the transport
    /// hands back (serializing backends are done with a sparse body
    /// once framed) into the report pool — closing the last per-round
    /// allocation in the worker loop.
    fn send_report_pooled(&mut self, report: ShardReport) {
        if let Some(buf) = self.transport.send_report(report) {
            self.report_pool.push(buf);
        }
    }

    /// Sends the report the fault plan held back last round: the
    /// coordinator's relaxed barrier did not wait for it then, and
    /// folds it as a straggler re-sync now. Crash-stop voids the
    /// stash: the worker clears it on rejoin, not here.
    fn flush_delayed(&mut self) {
        if let Some(report) = self.delayed_report.take() {
            self.send_report_pooled(report);
        }
    }

    /// Rebuilds this shard's state from the coordinator's snapshot
    /// after a crash-stop window, and verifies the reconstruction: a
    /// dense recount of the rematerialized opinions on agent-backed
    /// shards (the snapshot is the shard's own last accepted report, so
    /// the tally must round-trip exactly), an `O(#occupied)` body check
    /// — slot range, positive counts, mass identity, and duplicate
    /// detection through the rebuilt occupancy — on condensed shards,
    /// which copy the counts and never materialize an opinion.
    fn rejoin(&mut self, round: u64, body: &[(u32, u64)], undecided: u64) {
        self.round_no = round;
        // Crash-stop lost all in-flight state.
        self.pending.clear();
        self.delayed_report = None;
        self.carry_messages = 0;
        self.recovered = 0;
        // The scratch was zeroed by the last completed round's report;
        // the snapshot histogram owes it nothing.
        self.report_fresh = false;
        self.report_pairs_fresh = false;
        self.consumed_flat.clear();
        if self.condensed {
            let mut mass = u128::from(undecided);
            for &(slot, count) in body {
                assert!((slot as usize) < self.k_slots, "rejoin snapshot: slot out of range");
                assert!(count > 0, "rejoin snapshot: zero-count slot");
                mass += u128::from(count);
            }
            assert_eq!(mass, self.local_n as u128, "snapshot mass must match the shard size");
            self.hist_pairs.clear();
            self.hist_pairs.extend_from_slice(body);
            self.hist_pairs.sort_unstable();
            assert!(
                self.hist_pairs.windows(2).all(|w| w[0].0 < w[1].0),
                "rejoin snapshot: duplicate slots"
            );
            self.hist_n = (mass - u128::from(undecided)) as u64;
            self.hist_undecided = undecided;
            if self.report_mode == ReportMode::Delta {
                // Re-baseline the delta tracking against the rejoined
                // histogram.
                for &i in &self.prev_touched {
                    self.prev_counts[i as usize] = 0;
                }
                self.prev_touched.clear();
                self.mirror_hist(Mirror::Prev);
            }
            return;
        }
        let local_n = self.opinions.len();
        self.opinions.clear();
        for &(slot, count) in body {
            self.opinions.extend(std::iter::repeat_n(Opinion::new(slot), count as usize));
        }
        self.opinions.extend(std::iter::repeat_n(Opinion::UNDECIDED, undecided as usize));
        assert_eq!(self.opinions.len(), local_n, "snapshot mass must match the shard size");
        // Dense-recount integrity check: tally the reconstituted
        // opinions and compare against the snapshot body slot by slot.
        self.touched.clear();
        let recount_undecided =
            count_opinions(&self.opinions, &mut self.count_scratch, &mut self.touched);
        assert_eq!(recount_undecided, undecided, "rejoin recount: undecided mismatch");
        assert_eq!(self.touched.len(), body.len(), "rejoin recount: occupancy mismatch");
        for &(slot, count) in body {
            assert_eq!(
                self.count_scratch[slot as usize], count,
                "rejoin recount: slot {slot} mismatch"
            );
        }
        for &i in &self.touched {
            self.count_scratch[i as usize] = 0;
        }
        self.touched.clear();
        if self.report_mode == ReportMode::Delta {
            // Re-baseline the delta tracking against the rejoined state.
            for &i in &self.prev_touched {
                self.prev_counts[i as usize] = 0;
            }
            self.prev_touched.clear();
            count_opinions(&self.opinions, &mut self.prev_counts, &mut self.prev_touched);
        }
    }

    /// The PR 3 data plane: one [`Request`]/[`Reply`] entry per pull.
    fn pull_per_entry(&mut self, messages_sent: &mut u64) -> Result<(), TransportLost> {
        let local_n = self.opinions.len();
        let shards = self.partition.shards;
        // Freeze the round-start snapshot (synchrony: replies quote it).
        self.snapshot.clone_from(&self.opinions);

        // Issue h uniform pull requests per local node, batched per
        // destination shard. Every destination gets exactly one request
        // batch, empty or not — batches close the request phase.
        for local in 0..local_n {
            let requester = self.lo + local as u32;
            for slot in 0..self.h {
                let target = self.rng.gen_range(0..self.partition.n);
                self.outgoing[self.partition.owner(target)].push(Request {
                    target,
                    requester,
                    slot: slot as u8,
                });
            }
        }
        for (dest, out) in self.outgoing.iter_mut().enumerate() {
            let batch = std::mem::replace(out, self.request_pool.pop().unwrap_or_default());
            *messages_sent += batch.len() as u64;
            self.transport.send(dest, ShardMessage::Requests(batch));
        }

        // Serve requests as they arrive and absorb replies until both
        // sides of the round are complete. Replies are counted by entry
        // (`local_n · h` expected), so empty reply batches are skipped.
        let mut request_batches = 0usize;
        let expected_replies = local_n * self.h;
        let mut replies_received = 0usize;
        while request_batches < shards || replies_received < expected_replies {
            match self.transport.recv()? {
                ShardMessage::Requests(mut batch) => {
                    request_batches += 1;
                    for req in batch.drain(..) {
                        let opinion = self.snapshot[(req.target - self.lo) as usize];
                        self.reply_out[self.partition.owner(req.requester)].push(Reply {
                            requester: req.requester,
                            slot: req.slot,
                            opinion,
                        });
                    }
                    self.request_pool.push(batch);
                    for (dest, out) in self.reply_out.iter_mut().enumerate() {
                        if out.is_empty() {
                            continue;
                        }
                        let replies =
                            std::mem::replace(out, self.reply_pool.pop().unwrap_or_default());
                        *messages_sent += replies.len() as u64;
                        self.transport.send(dest, ShardMessage::Replies(replies));
                    }
                }
                ShardMessage::Replies(mut batch) => {
                    replies_received += batch.len();
                    for rep in batch.drain(..) {
                        let local = (rep.requester - self.lo) as usize;
                        self.samples[local * self.h + rep.slot as usize] = rep.opinion;
                    }
                    self.reply_pool.push(batch);
                }
                _ => unreachable!("batched message on a per-entry cluster"),
            }
        }
        Ok(())
    }

    /// Applies the update rule to the dealt sample windows, in
    /// deterministic node order — the ordered-window consumption shared
    /// by the per-entry wire and [`ConsumeMode::Ordered`].
    fn apply_ordered_windows(&mut self) {
        let local_n = self.opinions.len();
        for local in 0..local_n {
            let own = self.opinions[local];
            let window = &self.samples[local * self.h..(local + 1) * self.h];
            self.opinions[local] = self.rule.update(own, window, &mut self.rng);
        }
    }

    /// The aggregate data plane's exchange phase: one [`PullBatch`] and
    /// one [`OpinionPalette`] per peer per round. Ends with this round's
    /// palettes parked in `recv_palettes`, consumption left to the
    /// [`SampleAccess`]-dispatched caller.
    fn pull_exchange(&mut self, messages_sent: &mut u64) -> Result<(), TransportLost> {
        let local_n = self.local_n;
        let shards = self.partition.shards;
        let total = (local_n * self.h) as u64;

        // Round-start local opinion histogram: what the palettes this
        // shard serves are sampled from.
        self.snapshot_round_start();

        // Split the round's `local_n · h` uniform pulls over the
        // destination shards: a multinomial on the range sizes.
        sample_multinomial_into(total, &self.dest_theta, &mut self.rng, &mut self.dest_counts);
        for dest in 0..shards {
            let mut runs = self.run_pool.pop().unwrap_or_default();
            runs.clear();
            let m = self.dest_counts[dest];
            if m > 0 {
                let len = self.partition.range(dest).len() as u32;
                runs.push(TargetRun { start: 0, len, count: m });
            }
            *messages_sent += runs.len() as u64;
            self.transport.send(
                dest,
                ShardMessage::Pull(PullBatch {
                    origin: self.shard_id as u32,
                    round: self.round_no,
                    target_runs: runs,
                }),
            );
        }

        // Absorb this round's pulls and palettes. Pull batches are
        // served the moment they arrive — each origin has its own
        // serving RNG stream, so the trajectory does not depend on the
        // (nondeterministic) arrival order. Every message received here
        // belongs to this round: the coordinator's report barrier keeps
        // the fleet in lockstep (a shard reports only after consuming
        // exactly `shards` pulls and `shards` palettes, and no shard
        // starts round r+1 before every round-r report is in).
        let mut pulls = 0usize;
        let mut palettes = 0usize;
        while pulls < shards || palettes < shards {
            match self.transport.recv()? {
                ShardMessage::Pull(batch) => {
                    assert!(pulls < shards, "round lockstep: unexpected extra pull batch");
                    pulls += 1;
                    self.serve_batch(&batch, messages_sent);
                    self.run_pool.push(batch.target_runs);
                }
                ShardMessage::Palette(p) => {
                    assert!(
                        palettes < shards && self.recv_palettes[p.origin as usize].is_none(),
                        "round lockstep: unexpected extra palette"
                    );
                    self.recv_palettes[p.origin as usize] = Some((p.palette, p.runs));
                    palettes += 1;
                }
                _ => unreachable!("per-entry message on a batched cluster"),
            }
        }

        // Serving is done for the round: clear the snapshot histogram.
        for &i in &self.snap_touched {
            self.snap_counts[i as usize] = 0;
        }
        Ok(())
    }

    /// Reconstitutes per-node samples from the received palettes: deals
    /// them into the sample buffer in origin order (arrival-order
    /// independent) through an inside-out Fisher–Yates — one pass
    /// expands *and* shuffles. An iid sequence conditioned on its
    /// multiset is a uniform arrangement, so the joint law of the
    /// `local_n · h` samples is exactly iid Uniform Pull.
    fn deal_palettes_ordered(&mut self) {
        let shards = self.partition.shards;
        let total = self.opinions.len() * self.h;
        let mut pos = 0usize;
        for origin in 0..shards {
            let (palette, runs) = self.recv_palettes[origin].take().expect("one palette per peer");
            if runs.is_empty() {
                // Raw palette: one insert per draw.
                for &o in &palette {
                    let j = self.rng.gen_range(0..=pos);
                    self.samples[pos] = self.samples[j];
                    self.samples[j] = o;
                    pos += 1;
                }
            } else {
                for &(pi, c) in &runs {
                    let o = palette[pi as usize];
                    for _ in 0..c {
                        let j = self.rng.gen_range(0..=pos);
                        self.samples[pos] = self.samples[j];
                        self.samples[j] = o;
                        pos += 1;
                    }
                }
            }
            self.palette_pool.push((palette, runs));
        }
        debug_assert_eq!(pos, total, "palette mass must equal the requested pulls");
    }

    /// Single-peer consumption of the pull gear: the next opinion vector
    /// **is** the received sample multiset, expanded straight into
    /// `opinions` with no Fisher–Yates, no sample buffer, and no rule
    /// calls.
    ///
    /// Lawful because [`SampleAccess::SinglePeer`] updates adopt their
    /// one sample unconditionally (own-free), and every cluster
    /// observable — reports, served opinions, next-round pulls — depends
    /// on a shard's opinions only through their *multiset* (uniform
    /// draws within a range are permutation-invariant), so the
    /// deterministic in-order assignment realizes exactly the Uniform
    /// Pull configuration law.
    fn deal_palettes_single_peer(&mut self) {
        debug_assert_eq!(self.h, 1, "single-peer rules pull one sample");
        let shards = self.partition.shards;
        let mut pos = 0usize;
        for origin in 0..shards {
            let (palette, runs) = self.recv_palettes[origin].take().expect("one palette per peer");
            if runs.is_empty() {
                self.opinions[pos..pos + palette.len()].copy_from_slice(&palette);
                pos += palette.len();
            } else {
                for &(pi, c) in &runs {
                    let o = palette[pi as usize];
                    for _ in 0..c {
                        self.opinions[pos] = o;
                        pos += 1;
                    }
                }
            }
            self.palette_pool.push((palette, runs));
        }
        debug_assert_eq!(pos, self.opinions.len(), "palette mass must equal the node count");
    }

    /// Multiset consumption of the pull gear: the received palettes are
    /// taken directly as one pooled histogram and dealt to nodes as
    /// per-node window count vectors through a multivariate
    /// hypergeometric [`WindowSplitter`] — deleting the inside-out
    /// Fisher–Yates dealing pass (and the per-draw window reads) on this
    /// path.
    ///
    /// The pooled multiset is that of `local_n · h` iid Uniform Pull
    /// draws; dealing it uniformly into `h`-windows (which the
    /// sequential hypergeometric split realizes exactly) makes the
    /// windows jointly distributed as iid ordered windows' multisets,
    /// and the dealing is independent of the nodes' own opinions, so
    /// `update_from_counts` sees exactly the ordered path's law. In the
    /// diverse regime — more live categories than [`WALK_CANDIDATE_CAP`]
    /// or an [`expected_window_visits_counts`] statistic above `h` —
    /// the conditional walk would do more per-node work than it saves,
    /// so the worker falls back to the ordered dealing.
    fn consume_palettes_multiset(&mut self) {
        let shards = self.partition.shards;
        // A non-empty *raw* palette is the serving side's own verdict
        // that the regime is too diverse for histograms to compress —
        // and a walk-worthy (concentrated) pool never ships raw — so
        // skip even the tally pass and deal ordered. This keeps the
        // diverse-regime native path byte-identical in cost to the
        // ordered one.
        let any_raw = (0..shards).any(|origin| {
            let (palette, runs) =
                self.recv_palettes[origin].as_ref().expect("one palette per peer");
            runs.is_empty() && !palette.is_empty()
        });
        if any_raw {
            self.deal_palettes_ordered();
            self.apply_ordered_windows();
            return;
        }
        // Tally the pooled histogram by reference (the palettes stay
        // parked in case the diverse fallback needs the ordered path),
        // reusing `serve_counts` — zero outside serves — as the dense
        // scratch.
        self.pool_touched.clear();
        let mut pool_undecided = 0u64;
        for origin in 0..shards {
            let (palette, runs) =
                self.recv_palettes[origin].as_ref().expect("one palette per peer");
            let mut tally = |o: Opinion, c: u64| {
                if o.is_undecided() {
                    pool_undecided += c;
                } else {
                    let i = o.index();
                    if self.serve_counts[i] == 0 {
                        self.pool_touched.push(i as u32);
                    }
                    self.serve_counts[i] += c;
                }
            };
            if runs.is_empty() {
                for &o in palette {
                    tally(o, 1);
                }
            } else {
                for &(pi, c) in runs {
                    tally(palette[pi as usize], c);
                }
            }
        }
        let d = self.pool_touched.len() + usize::from(pool_undecided > 0);

        // Gather the pool in decreasing-count order (so the split's
        // early exit bites), zeroing the scratch as it drains; bail to
        // the ordered dealing when the pool is too diverse for the
        // per-node conditional walk to beat the per-draw dealing.
        let walkable = d <= WALK_CANDIDATE_CAP && {
            let mut pool: Vec<(u64, Opinion)> = Vec::with_capacity(d);
            for &i in &self.pool_touched {
                pool.push((self.serve_counts[i as usize], Opinion::new(i)));
            }
            if pool_undecided > 0 {
                pool.push((pool_undecided, Opinion::UNDECIDED));
            }
            pool.sort_by_key(|&(c, _)| std::cmp::Reverse(c));
            self.pool_counts.clear();
            self.pool_ops.clear();
            for &(c, o) in &pool {
                self.pool_counts.push(c);
                self.pool_ops.push(o);
            }
            expected_window_visits_counts(&self.pool_counts, self.h) <= self.h as f64
        };
        for &i in &self.pool_touched {
            self.serve_counts[i as usize] = 0;
        }
        if !walkable {
            self.deal_palettes_ordered();
            self.apply_ordered_windows();
            return;
        }

        // Return the palette buffers to the pool.
        for origin in 0..shards {
            let buffers = self.recv_palettes[origin].take().expect("one palette per peer");
            self.palette_pool.push(buffers);
        }

        let local_n = self.opinions.len();
        let h = self.h as u64;
        let msr = self.rule.as_multiset().expect("Multiset access requires a MultisetRule impl");
        let ops = &self.pool_ops;
        let mut splitter = WindowSplitter::new(&mut self.pool_counts);
        for local in 0..local_n {
            self.window.clear();
            let window = &mut self.window;
            splitter.draw_window(h, &mut self.rng, |cat, x| window.push((ops[cat], x as u32)));
            let own = self.opinions[local];
            self.opinions[local] = msr.update_from_counts(own, &self.window, &mut self.rng);
        }
        debug_assert_eq!(splitter.remaining(), 0, "the pool must be dealt exactly");
    }

    /// Single-peer consumption of the pull gear, condensed: the pooled
    /// palette multiset **is** the next histogram — flatten it into the
    /// per-draw tally and sort/RLE-install. No RNG at all.
    fn consume_pull_condensed_single_peer(&mut self) {
        debug_assert_eq!(self.h, 1, "single-peer rules pull one sample");
        let shards = self.partition.shards;
        let mut mass = 0u64;
        for origin in 0..shards {
            let (palette, runs) = self.recv_palettes[origin].take().expect("one palette per peer");
            {
                let flat = &mut self.consumed_flat;
                if runs.is_empty() {
                    mass += palette.len() as u64;
                    flat.reserve(palette.len());
                    for &o in &palette {
                        flat.push(if o.is_undecided() { u32::MAX } else { o.index() as u32 });
                    }
                } else {
                    for &(pi, c) in &runs {
                        let o = palette[pi as usize];
                        mass += c;
                        let s = if o.is_undecided() { u32::MAX } else { o.index() as u32 };
                        flat.resize(flat.len() + c as usize, s);
                    }
                }
            }
            self.palette_pool.push((palette, runs));
        }
        debug_assert_eq!(mass, self.local_n as u64, "palette mass must equal the node count");
        self.install_condensed_from_flat();
    }

    /// Flat multiset consumption straight off the received palettes,
    /// without materializing the pool: dealing the pooled multiset into
    /// per-node `h`-windows uniformly is, ball by ball, a uniform
    /// interleaving of the origins (pick an origin with probability
    /// proportional to its remaining mass), and conditioned on the
    /// origin the palette entries are exchangeable — so reading each
    /// palette in arrival order is the same law as a uniform dealing.
    /// Each ball costs one bounded draw over `shards` counters and one
    /// sequential palette read, instead of a random-scatter tally pass
    /// plus a random swap in a pooled scratch of `local_n · h` entries.
    fn consume_pull_condensed_interleaved(&mut self) {
        let shards = self.partition.shards;
        let h = self.h;
        self.condensed_groups();
        // Per-origin remaining mass and read cursor; run-encoded
        // palettes are expanded on the fly as (run index, used).
        let mut palettes: Vec<PaletteBuffers> = Vec::with_capacity(shards);
        let mut rem: Vec<u64> = Vec::with_capacity(shards);
        let mut pos: Vec<(usize, u64)> = vec![(0, 0); shards];
        for origin in 0..shards {
            let (palette, runs) = self.recv_palettes[origin].take().expect("one palette per peer");
            rem.push(if runs.is_empty() {
                palette.len() as u64
            } else {
                runs.iter().map(|&(_, c)| c).sum()
            });
            palettes.push((palette, runs));
        }
        let mut total: u64 = rem.iter().sum();
        debug_assert_eq!(total, (self.local_n * h) as u64, "palette mass must cover the windows");
        // Each ball is drawn uniformly among the remaining pool, so the
        // windows come out uniformly *ordered* — apply the rule's
        // ordered update directly (the multiset presentation would be
        // the same law at a window-pairs build per node).
        let mut wbuf: Vec<Opinion> = Vec::with_capacity(h);
        for gi in 0..self.groups.len() {
            let (own, count) = self.groups[gi];
            for _ in 0..count {
                wbuf.clear();
                for _ in 0..h {
                    // u32 draws when the pool allows it: the uniform
                    // rejection step is a 64-bit widening multiply
                    // instead of a 128-bit one, and this loop runs once
                    // per ball.
                    let mut r = if total <= u32::MAX as u64 {
                        self.rng.gen_range(0..total as u32) as u64
                    } else {
                        self.rng.gen_range(0..total)
                    };
                    let mut o = 0;
                    while r >= rem[o] {
                        r -= rem[o];
                        o += 1;
                    }
                    rem[o] -= 1;
                    total -= 1;
                    let (palette, runs) = &palettes[o];
                    wbuf.push(if runs.is_empty() {
                        let i = pos[o].0;
                        pos[o].0 = i + 1;
                        palette[i]
                    } else {
                        let (ri, used) = pos[o];
                        let (pi, c) = runs[ri];
                        pos[o] = if used + 1 == c { (ri + 1, 0) } else { (ri, used + 1) };
                        palette[pi as usize]
                    });
                }
                let next = self.rule.update(own, &wbuf, &mut self.rng);
                self.consumed_flat.push(if next.is_undecided() {
                    u32::MAX
                } else {
                    next.index() as u32
                });
            }
        }
        debug_assert_eq!(total, 0, "the pooled palettes must be dealt exactly");
        for p in palettes {
            self.palette_pool.push(p);
        }
        self.install_condensed_from_flat();
    }

    /// Multiset consumption of the pull gear, condensed: pool the
    /// received palettes (raw ones are tallied too — a condensed shard
    /// has no ordered path to bail to) and consume the pooled
    /// histogram **by opinion group, not by node**:
    ///
    /// * **mega-block** (the rule is
    ///   [`MultisetRule::own_insensitive`][symbreak_core::MultisetRule] —
    ///   3-Majority, h-Majority) — every group sees the same window
    ///   law, so the whole pool is one block and one
    ///   `condensed_window_step` call applies the rule's aggregate law
    ///   to all `local_n` nodes at once: `O(d log d)` per round,
    ///   independent of `local_n`.
    /// * **grouped** (own-sensitive rules while
    ///   `#groups · d ≤ local_n · h`) — a [`GroupSplitter`] deals the
    ///   pool into per-group blocks of `count · h` balls (nested
    ///   multivariate hypergeometrics over the shrinking pool — exactly
    ///   the law of handing each group its share of a uniform dealing),
    ///   then one `condensed_window_step` per occupied group:
    ///   `O(#occupied · (d + h))` per round.
    /// * **flat dealing** (the diverse regime, e.g. singleton starts
    ///   where `#groups · d` would exceed the ball count) — deal
    ///   per-node windows at `O(1)` per ball, matching the agent-backed
    ///   consume's cost per ball instead of paying `O(log d)` Fenwick
    ///   draws.
    ///
    /// All three are the same without-replacement law; the next
    /// histogram is tallied as blocks are consumed and no per-agent
    /// state is ever materialized.
    ///
    /// The diverse regime is detected *before* the pool is tallied: the
    /// palette envelopes bound the pool's distinct-category count `d`
    /// from above at `O(shards)` cost, and when even the aggregate
    /// paths' `O(d)` per-category draws would exceed the per-ball
    /// budget ([`MEGA_DISPATCH_FACTOR`] amortizes a per-category
    /// hypergeometric against per-ball dealing), the whole tally —
    /// itself an `O(local_n · h)` random-scatter pass — is skipped and
    /// consumption runs straight off the received palettes
    /// ([`Self::consume_pull_condensed_interleaved`]).
    fn consume_pull_condensed_multiset(&mut self) {
        let shards = self.partition.shards;
        // Bound d off the envelopes: raw palettes contribute at most
        // their entry count, run-encoded ones at most their run count.
        let mut upper_d = 0u64;
        for origin in 0..shards {
            let (palette, runs) =
                self.recv_palettes[origin].as_ref().expect("one palette per peer");
            upper_d += if runs.is_empty() { palette.len() as u64 } else { runs.len() as u64 };
        }
        if upper_d * MEGA_DISPATCH_FACTOR > (self.local_n * self.h) as u64 {
            return self.consume_pull_condensed_interleaved();
        }
        // Tally the pooled histogram, reusing `serve_counts` — zero
        // outside serves — as the dense scratch.
        self.pool_touched.clear();
        let mut pool_undecided = 0u64;
        for origin in 0..shards {
            let (palette, runs) = self.recv_palettes[origin].take().expect("one palette per peer");
            {
                let mut tally = |o: Opinion, c: u64| {
                    if o.is_undecided() {
                        pool_undecided += c;
                    } else {
                        let i = o.index();
                        if self.serve_counts[i] == 0 {
                            self.pool_touched.push(i as u32);
                        }
                        self.serve_counts[i] += c;
                    }
                };
                if runs.is_empty() {
                    for &o in &palette {
                        tally(o, 1);
                    }
                } else {
                    for &(pi, c) in &runs {
                        tally(palette[pi as usize], c);
                    }
                }
            }
            self.palette_pool.push((palette, runs));
        }

        // Gather the pool ascending by opinion, undecided last — the
        // condensed-step `values` contract — zeroing the scratch.
        let d = self.pool_touched.len() + usize::from(pool_undecided > 0);
        self.pool_touched.sort_unstable();
        self.pool_counts.clear();
        self.pool_ops.clear();
        for &i in &self.pool_touched {
            self.pool_counts.push(self.serve_counts[i as usize]);
            self.pool_ops.push(Opinion::new(i));
            self.serve_counts[i as usize] = 0;
        }
        if pool_undecided > 0 {
            self.pool_counts.push(pool_undecided);
            self.pool_ops.push(Opinion::UNDECIDED);
        }
        debug_assert_eq!(
            self.pool_counts.iter().sum::<u64>(),
            (self.local_n * self.h) as u64,
            "palette mass must equal the requested pulls"
        );

        self.condensed_groups();
        self.step_out.clear();
        let h = self.h as u64;
        let msr = self.rule.as_multiset().expect("Multiset access requires a MultisetRule impl");
        let mut next_undecided = 0u64;
        if msr.own_insensitive() {
            // Mega-block: one aggregate call covers every group (the
            // `own` argument is ignored by the rule's law).
            msr.condensed_window_step(
                Opinion::UNDECIDED,
                self.local_n as u64,
                &self.pool_ops,
                &mut self.pool_counts,
                &mut self.rng,
                &mut self.step_out,
            );
        } else if (self.groups.len() as u64).saturating_mul(d as u64) <= (self.local_n as u64) * h {
            // Grouped: deal each group its `count · h`-ball share of
            // the shrinking pool, then apply the rule's aggregate law
            // once per group.
            let mut splitter = GroupSplitter::new(&mut self.pool_counts);
            for gi in 0..self.groups.len() {
                let (own, count) = self.groups[gi];
                let block = &mut self.group_block;
                block.clear();
                block.resize(d, 0);
                splitter.draw_block(count * h, &mut self.rng, |j, x| block[j] += x);
                msr.condensed_window_step(
                    own,
                    count,
                    &self.pool_ops,
                    block,
                    &mut self.rng,
                    &mut self.step_out,
                );
            }
            debug_assert_eq!(splitter.remaining(), 0, "the pool must be dealt exactly");
        } else {
            // Flat dealing: the per-group dense blocks would cost more
            // than touching every ball once, so flatten the pool and
            // deal per-node windows by partial Fisher–Yates.
            self.flat_pool.clear();
            for (j, &c) in self.pool_counts.iter().enumerate() {
                let o = self.pool_ops[j];
                self.flat_pool.extend(std::iter::repeat_n(o, c as usize));
            }
            let mut m = self.flat_pool.len();
            for gi in 0..self.groups.len() {
                let (own, count) = self.groups[gi];
                for _ in 0..count {
                    self.window.clear();
                    for _ in 0..self.h {
                        let j = self.rng.gen_range(0..m);
                        let o = self.flat_pool[j];
                        m -= 1;
                        self.flat_pool[j] = self.flat_pool[m];
                        match self.window.iter_mut().find(|e| e.0 == o) {
                            Some(e) => e.1 += 1,
                            None => self.window.push((o, 1)),
                        }
                    }
                    let next = msr.update_from_counts(own, &self.window, &mut self.rng);
                    self.consumed_flat.push(if next.is_undecided() {
                        u32::MAX
                    } else {
                        next.index() as u32
                    });
                }
            }
            debug_assert_eq!(m, 0, "the pool must be dealt exactly");
            // Per-node decisions went to the flat tally; nothing ran
            // through `step_out`, so install by sort/RLE and be done.
            debug_assert!(self.step_out.is_empty());
            self.install_condensed_from_flat();
            return;
        }
        for gi in 0..self.step_out.len() {
            let (o, c) = self.step_out[gi];
            if c == 0 {
                continue;
            }
            if o.is_undecided() {
                next_undecided += c;
            } else {
                let i = o.index();
                if self.count_scratch[i] == 0 {
                    self.touched.push(i as u32);
                }
                self.count_scratch[i] += c;
            }
        }
        self.install_condensed(next_undecided);
    }

    /// The push data plane's exchange phase for the concentrated
    /// regime: no pulls at all. Every shard broadcasts its round-start
    /// opinion histogram; each requester unions the `shards` received
    /// histograms — which is exactly the global round-start opinion
    /// distribution (a uniform node is a shard ∝ size, then a uniform
    /// node within it) — into the parallel `alias_weights` /
    /// `alias_values` scratch. Sampling from the union is left to the
    /// [`SampleAccess`]-dispatched caller.
    fn push_exchange(&mut self, messages_sent: &mut u64) -> Result<(), TransportLost> {
        if self.inc {
            return self.push_exchange_incremental(messages_sent);
        }
        let shards = self.partition.shards;

        // Round-start local opinion histogram (shared scratch with the
        // pull path).
        self.snapshot_round_start();

        // Broadcast it as a histogram palette, one copy per peer —
        // built once, then bulk-copied per destination rather than
        // re-pushed entry by entry `shards` times.
        let (mut body, mut bruns) = self.palette_pool.pop().unwrap_or_default();
        body.clear();
        bruns.clear();
        for &i in &self.snap_touched {
            bruns.push((body.len() as u32, self.snap_counts[i as usize]));
            body.push(Opinion::new(i));
        }
        if self.snap_undecided > 0 {
            bruns.push((body.len() as u32, self.snap_undecided));
            body.push(Opinion::UNDECIDED);
        }
        for dest in 0..shards {
            let (palette, pruns) = if dest + 1 == shards {
                // The last copy hands off the original buffers.
                (std::mem::take(&mut body), std::mem::take(&mut bruns))
            } else {
                let (mut p, mut r) = self.palette_pool.pop().unwrap_or_default();
                p.clear();
                r.clear();
                p.extend_from_slice(&body);
                r.extend_from_slice(&bruns);
                (p, r)
            };
            let msg = OpinionPalette {
                origin: self.shard_id as u32,
                round: self.round_no,
                palette,
                runs: pruns,
            };
            *messages_sent += (msg.palette.len() + msg.runs.len()) as u64;
            self.transport.send(dest, ShardMessage::Palette(msg));
        }
        // Reset the scratch fully: the union merge below re-tallies
        // into it and must start from an empty touched list.
        for &i in &self.snap_touched {
            self.snap_counts[i as usize] = 0;
        }
        self.snap_touched.clear();

        // Collect the fleet's histograms. The coordinator's report
        // barrier keeps rounds in lockstep, so exactly these `shards`
        // palettes — and nothing else — arrive here (a push round has
        // no pulls at all).
        let mut palettes = 0usize;
        while palettes < shards {
            match self.transport.recv()? {
                ShardMessage::Palette(p) => {
                    assert!(
                        self.recv_palettes[p.origin as usize].is_none(),
                        "round lockstep: unexpected extra palette"
                    );
                    self.recv_palettes[p.origin as usize] = Some((p.palette, p.runs));
                    palettes += 1;
                }
                _ => unreachable!("round lockstep: pull or per-entry message in a push round"),
            }
        }

        self.union_palettes();
        Ok(())
    }

    /// The incremental push gear: persistent union, delta broadcasts.
    ///
    /// Between *consecutive* push rounds every receiver still holds
    /// last round's union, so each shard broadcasts only its histogram
    /// *delta* — signed per-slot changes, zigzag-encoded in the run
    /// count field — and receivers patch their persistent union in
    /// `O(#changed · log #occupied)` instead of re-deduplicating
    /// `shards · #occupied` raw entries. The first push round after a
    /// pull round (or boot) broadcasts the full histogram and resets
    /// the union. Sender and receivers derive the same full-vs-delta
    /// decision from the shared coordinator gear sequence (did the
    /// previous round push?), so the wire stays self-describing with
    /// no new message type.
    ///
    /// Condensed shards diff their primary `hist_pairs`
    /// representation directly. Agent-backed shards — where the
    /// stalled Theorem-5 regime actually lives, with `O(1)` opinion
    /// switches per round — materialize the round-start tally into the
    /// same sorted-pairs form first (`O(#occupied · log #occupied)`
    /// against the rebuild path's `shards · #occupied` broadcast
    /// copies and union re-deduplication). The union no longer routes
    /// through the snapshot scratch on either representation.
    fn push_exchange_incremental(&mut self, messages_sent: &mut u64) -> Result<(), TransportLost> {
        let shards = self.partition.shards;
        if !self.condensed {
            // Tally the round-start opinions, then sort into the
            // ascending `hist_pairs` invariant the delta diff (and the
            // next round's baseline) expects. The dense scratch is
            // reset behind the gather, as the broadcast path does.
            self.snapshot_round_start();
            self.snap_touched.sort_unstable();
            self.hist_pairs.clear();
            for &i in &self.snap_touched {
                self.hist_pairs.push((i, self.snap_counts[i as usize]));
                self.snap_counts[i as usize] = 0;
            }
            self.hist_n = self.local_n as u64 - self.snap_undecided;
            self.hist_undecided = self.snap_undecided;
            self.snap_touched.clear();
        }
        let prev_round = self.round_no.checked_sub(1);
        let delta_round = prev_round.is_some()
            && self.push_sent_round == prev_round
            && self.union_round == prev_round;

        let (mut body, mut bruns) = self.palette_pool.pop().unwrap_or_default();
        body.clear();
        bruns.clear();
        if delta_round {
            // Two-pointer diff of the (ascending) current histogram
            // against the last broadcast: O(#occupied) compares,
            // O(#changed) emitted entries.
            let cur = &self.hist_pairs;
            let prev = &self.push_sent_prev;
            let (mut i, mut j) = (0usize, 0usize);
            while i < cur.len() || j < prev.len() {
                let (slot, d) = if j == prev.len() || (i < cur.len() && cur[i].0 < prev[j].0) {
                    let (s, c) = cur[i];
                    i += 1;
                    (s, c as i64)
                } else if i == cur.len() || prev[j].0 < cur[i].0 {
                    let (s, c) = prev[j];
                    j += 1;
                    (s, -(c as i64))
                } else {
                    let (s, c) = cur[i];
                    let p = prev[j].1;
                    i += 1;
                    j += 1;
                    (s, c as i64 - p as i64)
                };
                if d != 0 {
                    bruns.push((body.len() as u32, zigzag(d)));
                    body.push(Opinion::new(slot));
                }
            }
            let du = self.hist_undecided as i64 - self.push_sent_undecided as i64;
            if du != 0 {
                bruns.push((body.len() as u32, zigzag(du)));
                body.push(Opinion::UNDECIDED);
            }
        } else {
            for &(i, c) in &self.hist_pairs {
                bruns.push((body.len() as u32, c));
                body.push(Opinion::new(i));
            }
            if self.hist_undecided > 0 {
                bruns.push((body.len() as u32, self.hist_undecided));
                body.push(Opinion::UNDECIDED);
            }
        }
        // Record the baseline the next round's delta is relative to.
        self.push_sent_prev.clone_from(&self.hist_pairs);
        self.push_sent_undecided = self.hist_undecided;
        self.push_sent_round = Some(self.round_no);

        for dest in 0..shards {
            let (palette, pruns) = if dest + 1 == shards {
                (std::mem::take(&mut body), std::mem::take(&mut bruns))
            } else {
                let (mut p, mut r) = self.palette_pool.pop().unwrap_or_default();
                p.clear();
                r.clear();
                p.extend_from_slice(&body);
                r.extend_from_slice(&bruns);
                (p, r)
            };
            let msg = OpinionPalette {
                origin: self.shard_id as u32,
                round: self.round_no,
                palette,
                runs: pruns,
            };
            *messages_sent += (msg.palette.len() + msg.runs.len()) as u64;
            self.transport.send(dest, ShardMessage::Palette(msg));
        }

        let mut palettes = 0usize;
        while palettes < shards {
            match self.transport.recv()? {
                ShardMessage::Palette(p) => {
                    assert!(
                        self.recv_palettes[p.origin as usize].is_none(),
                        "round lockstep: unexpected extra palette"
                    );
                    self.recv_palettes[p.origin as usize] = Some((p.palette, p.runs));
                    palettes += 1;
                }
                _ => unreachable!("round lockstep: pull or per-entry message in a push round"),
            }
        }

        self.union_apply(delta_round);
        Ok(())
    }

    /// Folds the received palettes into the persistent union. A full
    /// round resets the union first; a delta round treats every entry
    /// as a zigzag-signed count change. Slots whose membership flips
    /// (zero ↔ positive) are collected and the ascending occupied list
    /// is rebuilt by one sorted merge — `O(#occupied + #flips ·
    /// log #flips)` per round regardless of how many slots flip
    /// (per-flip `Vec::insert` would go quadratic on wide unions). The
    /// alias scratch is materialized from it — ascending slots,
    /// undecided last — so the push consume paths run unchanged (a
    /// lawful ordering difference from the rebuild union's first-touch
    /// order).
    fn union_apply(&mut self, delta_round: bool) {
        let shards = self.partition.shards;
        if !delta_round {
            for &i in &self.union_occ {
                self.union_counts[i as usize] = 0;
            }
            self.union_occ.clear();
            self.union_undecided = 0;
        }
        debug_assert!(self.union_trans.is_empty());
        let mut changed = !delta_round;
        for origin in 0..shards {
            let Some((palette, runs)) = self.recv_palettes[origin].take() else {
                continue;
            };
            changed |= !runs.is_empty();
            for &(pi, c) in &runs {
                let o = palette[pi as usize];
                let d = if delta_round { unzigzag(c) } else { c as i64 };
                if o.is_undecided() {
                    self.union_undecided = add_signed(self.union_undecided, d);
                } else {
                    let slot = o.index();
                    let old = self.union_counts[slot];
                    let new = add_signed(old, d);
                    self.union_counts[slot] = new;
                    if (old == 0) != (new == 0) {
                        self.union_trans.push(slot as u32);
                    }
                }
            }
            self.palette_pool.push((palette, runs));
        }
        if !self.union_trans.is_empty() {
            // A slot can flip more than once across the fleet's deltas
            // (in, then out again): dedup the transition list and let
            // the merge read final membership off the counts
            // themselves.
            self.union_trans.sort_unstable();
            self.union_trans.dedup();
            let merged = &mut self.union_occ_scratch;
            merged.clear();
            let (mut i, mut j) = (0usize, 0usize);
            let occ = &self.union_occ;
            let trans = &self.union_trans;
            while i < occ.len() || j < trans.len() {
                let slot = if j == trans.len() || (i < occ.len() && occ[i] < trans[j]) {
                    let s = occ[i];
                    i += 1;
                    s
                } else {
                    if i < occ.len() && occ[i] == trans[j] {
                        i += 1;
                    }
                    let s = trans[j];
                    j += 1;
                    s
                };
                if self.union_counts[slot as usize] > 0 {
                    merged.push(slot);
                }
            }
            std::mem::swap(&mut self.union_occ, &mut self.union_occ_scratch);
            self.union_trans.clear();
        }
        self.union_round = Some(self.round_no);
        // An all-empty delta round left the union — and therefore the
        // alias scratch — exactly as the previous round materialized
        // it: skip the O(#occupied) gather and keep the consume-side
        // table fresh.
        if changed {
            self.push_cat_stale = true;
            self.alias_weights.clear();
            self.alias_values.clear();
            for &i in &self.union_occ {
                self.alias_weights.push(self.union_counts[i as usize] as f64);
                self.alias_values.push(Opinion::new(i));
            }
            if self.union_undecided > 0 {
                self.alias_weights.push(self.union_undecided as f64);
                self.alias_values.push(Opinion::UNDECIDED);
            }
        }
        debug_assert_eq!(
            self.union_occ.iter().map(|&i| self.union_counts[i as usize]).sum::<u64>()
                + self.union_undecided,
            self.partition.n as u64,
            "push union must carry the whole population"
        );
    }

    /// Unions the received push histograms — deduplicated through the
    /// (currently idle) snapshot scratch, so the alias table is built
    /// over the ~occ distinct global colors rather than the
    /// `shards · occ` raw entries. Contributions lost to an active
    /// fault plan are simply absent: the alias table normalizes over
    /// the surviving mass, reweighting the round's samples toward the
    /// shards that were heard (on the exact path every slot is filled,
    /// so this is the fault-free union verbatim).
    fn union_palettes(&mut self) {
        let shards = self.partition.shards;
        let mut union_undecided = 0u64;
        for origin in 0..shards {
            let Some((palette, runs)) = self.recv_palettes[origin].take() else {
                continue;
            };
            for &(pi, c) in &runs {
                let o = palette[pi as usize];
                if o.is_undecided() {
                    union_undecided += c;
                } else {
                    let i = o.index();
                    if self.snap_counts[i] == 0 {
                        self.snap_touched.push(i as u32);
                    }
                    self.snap_counts[i] += c;
                }
            }
            self.palette_pool.push((palette, runs));
        }
        self.alias_weights.clear();
        self.alias_values.clear();
        for &i in &self.snap_touched {
            self.alias_weights.push(self.snap_counts[i as usize] as f64);
            self.alias_values.push(Opinion::new(i));
            self.snap_counts[i as usize] = 0;
        }
        self.snap_touched.clear();
        if union_undecided > 0 {
            self.alias_weights.push(union_undecided as f64);
            self.alias_values.push(Opinion::UNDECIDED);
        }
    }

    /// Receives the next message belonging to the current round.
    /// Messages parked by earlier rounds are drained first; messages
    /// tagged with a *future* round (a peer that made quorum and ran
    /// ahead of this straggler) are parked until their round starts.
    ///
    /// Stale tags are impossible by construction: a receiver's round-`r`
    /// loop blocks until every round-`r` message addressed to it has
    /// arrived (the plan-derived expected counts are exact), so no
    /// shard ever advances past a round with its traffic still in
    /// flight — asserted, not assumed.
    fn recv_current(&mut self) -> Result<ShardMessage, TransportLost> {
        fn tag(msg: &ShardMessage) -> u64 {
            match msg {
                ShardMessage::Pull(b) => b.round,
                ShardMessage::Palette(p) => p.round,
                _ => unreachable!("per-entry message on a batched cluster"),
            }
        }
        if let Some(i) = self.pending.iter().position(|m| tag(m) == self.round_no) {
            return Ok(self.pending.swap_remove(i));
        }
        loop {
            let msg = self.transport.recv()?;
            let t = tag(&msg);
            if t == self.round_no {
                return Ok(msg);
            }
            assert!(t > self.round_no, "stale round-{t} message in round {}", self.round_no);
            self.pending.push(msg);
        }
    }

    /// Absorbs one current-round palette under an active plan: the
    /// first copy from a non-late origin fills its slot; duplicate
    /// copies and deterministically-late deliveries are discarded
    /// (their buffers returned to the pool).
    fn absorb_palette(&mut self, p: OpinionPalette) {
        let origin = p.origin as usize;
        let late =
            self.plan.palette_fault(self.round_no, origin, self.shard_id) == Some(FaultKind::Delay);
        if !late && self.recv_palettes[origin].is_none() {
            self.recv_palettes[origin] = Some((p.palette, p.runs));
        } else {
            self.palette_pool.push((p.palette, p.runs));
        }
    }

    /// How many palette copies this shard will receive from live peer
    /// `from` this round (late copies still arrive — and are discarded
    /// — so they count).
    fn expected_palette_copies(&self, from: usize) -> usize {
        match self.plan.palette_fault(self.round_no, from, self.shard_id) {
            None | Some(FaultKind::Delay) => 1,
            Some(FaultKind::Duplicate) => 2,
            Some(FaultKind::Drop) => 0,
        }
    }

    /// Transmits one palette through the plan's fault decision for the
    /// `self → dest` edge this round, keeping the wire accounting
    /// honest: dropped copies were transmitted and lost (counted once),
    /// duplicates count twice, late copies count once and are discarded
    /// by the receiver.
    fn send_palette_faulty(
        &mut self,
        dest: usize,
        palette: OpinionPalette,
        messages_sent: &mut u64,
    ) {
        let wire = (palette.palette.len() + palette.runs.len()) as u64;
        match self.plan.palette_fault(self.round_no, self.shard_id, dest) {
            None | Some(FaultKind::Delay) => {
                *messages_sent += wire;
                self.transport.send(dest, ShardMessage::Palette(palette));
            }
            Some(FaultKind::Drop) => {
                // Transmitted and lost: the entries and the frame bytes
                // both count as sent, nothing is delivered.
                *messages_sent += wire;
                self.transport.count_lost(&ShardMessage::Palette(palette));
            }
            Some(FaultKind::Duplicate) => {
                *messages_sent += 2 * wire;
                self.transport.send(dest, ShardMessage::Palette(palette.clone()));
                self.transport.send(dest, ShardMessage::Palette(palette));
            }
        }
    }

    /// Fault-aware pull exchange. Pull batches are never faulted (they
    /// are the round's control skeleton); palette responses pass
    /// through the plan's per-edge decisions on both sides: the server
    /// intercepts its own transmissions, the requester knows exactly
    /// how many copies will arrive, and every palette it will never
    /// see — dropped, late, or owed by a crashed peer — is compensated
    /// by re-sampling the requested draw count from this shard's own
    /// round-start opinions (counted as `recovered`), so the sample
    /// mass stays exact and every consumption path runs unchanged.
    fn pull_exchange_faulty(&mut self, messages_sent: &mut u64) -> Result<(), TransportLost> {
        let local_n = self.local_n;
        let shards = self.partition.shards;
        let round = self.round_no;
        let total = (local_n * self.h) as u64;

        self.snapshot_round_start();

        // Crashed peers take no traffic: mask them out of the
        // destination weights so every pull targets a live node.
        for dest in 0..shards {
            self.dest_theta[dest] = if self.plan.is_crashed(dest, round) {
                0.0
            } else {
                self.partition.range(dest).len() as f64
            };
        }
        sample_multinomial_into(total, &self.dest_theta, &mut self.rng, &mut self.dest_counts);

        let mut expected_pulls = 0usize;
        let mut expected_palettes = 0usize;
        for peer in 0..shards {
            if self.plan.is_crashed(peer, round) {
                continue;
            }
            // Every live peer (including self) sends us one pull batch
            // and owes us a palette through the `peer → self` edge.
            expected_pulls += 1;
            expected_palettes += self.expected_palette_copies(peer);
            let mut runs = self.run_pool.pop().unwrap_or_default();
            runs.clear();
            let m = self.dest_counts[peer];
            if m > 0 {
                let len = self.partition.range(peer).len() as u32;
                runs.push(TargetRun { start: 0, len, count: m });
            }
            *messages_sent += runs.len() as u64;
            self.transport.send(
                peer,
                ShardMessage::Pull(PullBatch {
                    origin: self.shard_id as u32,
                    round,
                    target_runs: runs,
                }),
            );
        }

        let mut pulls = 0usize;
        let mut palettes = 0usize;
        while pulls < expected_pulls || palettes < expected_palettes {
            match self.recv_current()? {
                ShardMessage::Pull(batch) => {
                    pulls += 1;
                    let origin = batch.origin as usize;
                    let palette = self.build_palette(&batch);
                    self.send_palette_faulty(origin, palette, messages_sent);
                    self.run_pool.push(batch.target_runs);
                }
                ShardMessage::Palette(p) => {
                    palettes += 1;
                    self.absorb_palette(p);
                }
                _ => unreachable!("per-entry message on a batched cluster"),
            }
        }

        // Compensate the palettes that never landed: re-sample the
        // requested draw count from this shard's own round-start
        // opinions (the lost server's law is out of reach; the local
        // stand-in keeps the sample mass exact). Crashed peers were
        // masked to zero draws, so their slots fill with empty
        // palettes and recover nothing.
        for origin in 0..shards {
            if self.recv_palettes[origin].is_some() {
                continue;
            }
            let m = self.dest_counts[origin];
            let (mut palette, mut runs) = self.palette_pool.pop().unwrap_or_default();
            palette.clear();
            runs.clear();
            debug_assert!(m == 0 || local_n > 0, "draws need a non-empty shard");
            if self.condensed {
                // The same self-compensation law off the histogram — a
                // binomial undecided split plus a sparse multinomial
                // over the round-start snapshot, emitted runs-encoded
                // — on the same round RNG the agent path's per-draw
                // reads consume.
                if m > 0 {
                    let undec = if self.snap_undecided > 0 {
                        Binomial::new(m, self.snap_undecided as f64 / local_n as f64)
                            .sample(&mut self.rng)
                    } else {
                        0
                    };
                    let rest = m - undec;
                    if rest > 0 {
                        self.theta_scratch.clear();
                        self.theta_scratch.extend(
                            self.snap_touched.iter().map(|&i| self.snap_counts[i as usize] as f64),
                        );
                        sample_multinomial_sparse_into(
                            rest,
                            &self.theta_scratch,
                            &self.snap_touched,
                            &mut self.rng,
                            &mut self.serve_counts,
                        );
                    }
                    for &i in &self.snap_touched {
                        let c = self.serve_counts[i as usize];
                        if c > 0 {
                            runs.push((palette.len() as u32, c));
                            palette.push(Opinion::new(i));
                            self.serve_counts[i as usize] = 0;
                        }
                    }
                    if undec > 0 {
                        runs.push((palette.len() as u32, undec));
                        palette.push(Opinion::UNDECIDED);
                    }
                }
            } else {
                palette.reserve(m as usize);
                for _ in 0..m {
                    palette.push(self.opinions[self.rng.gen_range(0..local_n)]);
                }
            }
            self.recovered += m;
            self.recv_palettes[origin] = Some((palette, runs));
        }

        for &i in &self.snap_touched {
            self.snap_counts[i as usize] = 0;
        }
        Ok(())
    }

    /// Fault-aware push exchange: the broadcast skips crashed peers,
    /// each histogram copy passes through the plan's per-edge fault
    /// decision, and the union is built from whichever contributions
    /// survived (see [`Worker::union_palettes`]) — push rounds have no
    /// sample-mass contract to restore, so lost histograms reweight
    /// rather than recover.
    fn push_exchange_faulty(&mut self, messages_sent: &mut u64) -> Result<(), TransportLost> {
        let shards = self.partition.shards;
        let round = self.round_no;

        self.snapshot_round_start();

        let (mut body, mut bruns) = self.palette_pool.pop().unwrap_or_default();
        body.clear();
        bruns.clear();
        for &i in &self.snap_touched {
            bruns.push((body.len() as u32, self.snap_counts[i as usize]));
            body.push(Opinion::new(i));
        }
        if self.snap_undecided > 0 {
            bruns.push((body.len() as u32, self.snap_undecided));
            body.push(Opinion::UNDECIDED);
        }
        let mut expected_palettes = 0usize;
        for peer in 0..shards {
            if self.plan.is_crashed(peer, round) {
                continue;
            }
            // The live-peer loop is symmetric: `peer` is both a
            // broadcast destination (self → peer) and a sender whose
            // copies we must expect (peer → self).
            expected_palettes += self.expected_palette_copies(peer);
            let (mut palette, mut pruns) = self.palette_pool.pop().unwrap_or_default();
            palette.clear();
            pruns.clear();
            palette.extend_from_slice(&body);
            pruns.extend_from_slice(&bruns);
            let msg = OpinionPalette { origin: self.shard_id as u32, round, palette, runs: pruns };
            self.send_palette_faulty(peer, msg, messages_sent);
        }
        self.palette_pool.push((body, bruns));
        for &i in &self.snap_touched {
            self.snap_counts[i as usize] = 0;
        }
        self.snap_touched.clear();

        let mut palettes = 0usize;
        while palettes < expected_palettes {
            match self.recv_current()? {
                ShardMessage::Palette(p) => {
                    palettes += 1;
                    self.absorb_palette(p);
                }
                _ => unreachable!("round lockstep: pull or per-entry message in a push round"),
            }
        }

        self.union_palettes();
        Ok(())
    }

    /// Rewrites this shard's report body if the plan marks it
    /// Byzantine. [`CorruptionKind::Plausible`] routes through the
    /// adversary crate's `RandomFlipper` on the shard's dedicated
    /// corruption stream — mass-preserving, so the lie passes the
    /// coordinator's validation and must be tolerated by consensus
    /// detection. [`CorruptionKind::Inflate`] adds phantom mass the
    /// coordinator rejects.
    fn corrupt_report_if_byzantine(&mut self, body: &mut ReportBody) {
        let Some(rng) = self.byz_rng.as_mut() else { return };
        let spec = *self.plan.byzantine_spec(self.shard_id).expect("byz_rng implies a spec");
        let ReportBody::Sparse(pairs) = body else {
            panic!("fault plans require sparse reports");
        };
        match spec.kind {
            CorruptionKind::Plausible => {
                let mut counts = vec![0u64; self.k_slots];
                for &(slot, c) in pairs.iter() {
                    counts[slot as usize] = c;
                }
                let mut cfg = Configuration::from_counts(counts);
                if cfg.n() > 0 {
                    RandomFlipper::new(spec.budget).corrupt(&mut cfg, rng);
                }
                pairs.clear();
                pairs.extend(cfg.occupied().iter().copied().zip(cfg.occupied_counts()));
            }
            CorruptionKind::Inflate => {
                if let Some(first) = pairs.first_mut() {
                    first.1 += spec.budget;
                } else {
                    pairs.push((0, spec.budget));
                }
            }
        }
    }

    /// Ordered consumption of the push gear: all `local_n · h` samples
    /// drawn iid from the union alias table into the sample buffer (no
    /// shuffle needed — iid draws are already exchangeable). On
    /// incremental rounds the table persists and is rebuilt only when
    /// the union changed — a stalled round with all-empty deltas draws
    /// from last round's table verbatim.
    fn sample_push_ordered(&mut self) {
        let total = self.opinions.len() * self.h;
        if total == 0 {
            return;
        }
        if self.inc {
            if self.push_cat_stale || self.push_cat.is_none() {
                match &mut self.push_cat {
                    Some(c) => c.rebuild(&self.alias_weights),
                    None => self.push_cat = Some(Categorical::new(&self.alias_weights)),
                }
                self.push_cat_stale = false;
            }
            let alias = self.push_cat.take().expect("alias table just ensured");
            for pos in 0..total {
                self.samples[pos] = self.alias_values[alias.sample(&mut self.rng)];
            }
            self.push_cat = Some(alias);
        } else {
            let alias = Categorical::new(&self.alias_weights);
            for pos in 0..total {
                self.samples[pos] = self.alias_values[alias.sample(&mut self.rng)];
            }
        }
    }

    /// Single-peer consumption of the push gear: each node's one sample
    /// is its next opinion, drawn straight into `opinions` — no sample
    /// buffer and no rule calls.
    fn sample_push_single_peer(&mut self) {
        debug_assert_eq!(self.h, 1, "single-peer rules pull one sample");
        if self.opinions.is_empty() {
            return;
        }
        let alias = Categorical::new(&self.alias_weights);
        for pos in 0..self.opinions.len() {
            self.opinions[pos] = self.alias_values[alias.sample(&mut self.rng)];
        }
    }

    /// Multiset consumption of the push gear: per-node windows are
    /// independent `Mult(h, union)` draws, taken as count vectors
    /// through a [`WindowMultinomial`] walk with all conditional
    /// binomials cached — ~one cached draw per node once the union
    /// concentrates, versus `h` alias draws plus window reads on the
    /// ordered path. While the union is still too diverse for the walk
    /// to pay, the round takes the ordered path unchanged (a multiset
    /// rule consumes an ordered window just fine).
    fn sample_push_multiset(&mut self) {
        let local_n = self.opinions.len();
        if local_n == 0 {
            return;
        }
        let h = self.h;
        // Sort the union by decreasing weight so the walk's early exit
        // bites, then arbitrate on the expected visit count.
        let walkable = self.alias_values.len() <= WALK_CANDIDATE_CAP && {
            let mut union: Vec<(f64, Opinion)> =
                self.alias_weights.iter().copied().zip(self.alias_values.iter().copied()).collect();
            union.sort_by(|a, b| b.0.total_cmp(&a.0));
            self.pool_ops.clear();
            self.alias_weights.clear();
            for &(w, o) in &union {
                self.alias_weights.push(w);
                self.pool_ops.push(o);
            }
            // The sorted weights are a valid alias source too, so the
            // ordered fallback below stays correct after this rewrite
            // (alias_values is realigned alongside, and the persistent
            // consume table is invalidated against the reorder).
            self.alias_values.clear();
            self.alias_values.extend_from_slice(&self.pool_ops);
            self.push_cat_stale = true;
            expected_window_visits(&self.alias_weights, h) <= h as f64
        };
        if !walkable {
            self.sample_push_ordered();
            self.apply_ordered_windows();
            return;
        }
        let msr = self.rule.as_multiset().expect("Multiset access requires a MultisetRule impl");
        let walk = WindowMultinomial::new(&self.alias_weights, h);
        let ops = &self.pool_ops;
        for local in 0..local_n {
            self.window.clear();
            let window = &mut self.window;
            walk.sample_window(&mut self.rng, |j, x| window.push((ops[j], x as u32)));
            let own = self.opinions[local];
            self.opinions[local] = msr.update_from_counts(own, &self.window, &mut self.rng);
        }
    }

    /// Single-peer consumption of the push gear, condensed: every
    /// node's next opinion is an iid union draw, so the next histogram
    /// is one `Mult(local_n, union)` — `O(#distinct)` for the whole
    /// shard, no per-node work at all.
    fn consume_push_condensed_single_peer(&mut self) {
        debug_assert_eq!(self.h, 1, "single-peer rules pull one sample");
        self.pool_counts.clear();
        self.pool_counts.resize(self.alias_weights.len(), 0);
        sample_multinomial_into(
            self.local_n as u64,
            &self.alias_weights,
            &mut self.rng,
            &mut self.pool_counts,
        );
        let mut undecided = 0u64;
        for (j, &c) in self.pool_counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let o = self.alias_values[j];
            if o.is_undecided() {
                undecided += c;
            } else {
                let i = o.index();
                if self.count_scratch[i] == 0 {
                    self.touched.push(i as u32);
                }
                self.count_scratch[i] += c;
            }
        }
        self.install_condensed(undecided);
    }

    /// Multiset consumption of the push gear, condensed: the whole
    /// shard steps through one [`symbreak_core::MultisetRule`]
    /// `condensed_push_step` call — the rule's closed-form aggregate
    /// over iid `Mult(h, union)` windows (a multinomial for 3-Majority,
    /// binomial splits for the undecided dynamics, CDF cascades for
    /// 2-Median, with a generic per-node fallback) — so the per-round
    /// compute is `O(#occupied · h)`, independent of `local_n`. This is
    /// the path the Theorem-5 `n ≥ 10⁸` sweeps run on.
    fn consume_push_condensed_multiset(&mut self) {
        // Sort the union ascending by opinion (undecided orders last) —
        // the condensed-step contract; the union is already
        // deduplicated by `union_palettes`.
        let mut union: Vec<(Opinion, f64)> =
            self.alias_values.iter().copied().zip(self.alias_weights.iter().copied()).collect();
        union.sort_by_key(|&(o, _)| o);
        self.alias_values.clear();
        self.alias_weights.clear();
        for &(o, w) in &union {
            self.alias_values.push(o);
            self.alias_weights.push(w);
        }

        self.condensed_groups();
        self.step_out.clear();
        let msr = self.rule.as_multiset().expect("Multiset access requires a MultisetRule impl");
        msr.condensed_push_step(
            &self.groups,
            &self.alias_values,
            &self.alias_weights,
            &mut self.rng,
            &mut self.step_out,
        );
        let mut undecided = 0u64;
        for gi in 0..self.step_out.len() {
            let (o, c) = self.step_out[gi];
            if c == 0 {
                continue;
            }
            if o.is_undecided() {
                undecided += c;
            } else {
                let i = o.index();
                if self.count_scratch[i] == 0 {
                    self.touched.push(i as u32);
                }
                self.count_scratch[i] += c;
            }
        }
        self.install_condensed(undecided);
    }

    /// Serves one pull batch from the round-start state, drawing from
    /// the origin's dedicated serving stream, choosing per batch
    /// between two exact samplers by the draw count `m` vs the
    /// distinct local color count `d`:
    ///
    /// * **raw** (`m < 24·d`, the diverse regime) — draw `m` uniform
    ///   targets and ship their opinions verbatim (a palette with no
    ///   runs): `O(m)` cheap draws and `m` wire entries — half of
    ///   per-entry mode's `2m`, with no request routing — which the
    ///   requester expands with one copy. A histogram would not
    ///   compress enough here to pay for building one.
    /// * **histogram walk** (`m ≥ 24·d`, the concentrated regime) — a
    ///   multinomial over the round-start opinion histogram (undecided
    ///   mass split off first): `O(d)` binomial draws and wire
    ///   entries, with no per-draw work at all. A conditional-binomial
    ///   step costs tens of materialized draws, hence the crossover.
    ///
    /// Both are exactly the law of `m` uniform snapshot reads; the
    /// choice depends only on deterministic per-round state, so the
    /// trajectory stays seed-reproducible.
    fn serve_batch(&mut self, batch: &PullBatch, messages_sent: &mut u64) {
        let palette = self.build_palette(batch);
        *messages_sent += (palette.palette.len() + palette.runs.len()) as u64;
        self.transport.send(batch.origin as usize, ShardMessage::Palette(palette));
    }

    /// Samples the palette answering one pull batch from the round-start
    /// state (see [`Worker::serve_batch`] for the raw-vs-walk crossover);
    /// sending is left to the caller so the fault path can intercept the
    /// transmission.
    fn build_palette(&mut self, batch: &PullBatch) -> OpinionPalette {
        // Crossover between the raw and walk samplers: a
        // conditional-binomial step (sampler construction + draw)
        // costs roughly twenty-odd materialized draws.
        const WALK_FACTOR: u64 = 24;
        let local_n = self.local_n;
        let origin = batch.origin as usize;
        let rng = &mut self.serve_rngs[origin];
        let d = self.snap_touched.len() as u64 + 1;
        let total: u64 = batch.target_runs.iter().map(|r| r.count).sum();

        let (mut palette, mut pruns) = self.palette_pool.pop().unwrap_or_default();
        palette.clear();
        pruns.clear();

        let walkable = total >= WALK_FACTOR * d
            && batch.target_runs.iter().all(|r| r.start == 0 && r.len as usize == local_n);
        if walkable {
            let mut served_undecided = 0u64;
            for run in &batch.target_runs {
                if run.count == 0 {
                    continue;
                }
                let undec = if self.snap_undecided > 0 {
                    Binomial::new(run.count, self.snap_undecided as f64 / local_n as f64)
                        .sample(rng)
                } else {
                    0
                };
                served_undecided += undec;
                let rest = run.count - undec;
                if rest > 0 {
                    self.theta_scratch.clear();
                    self.theta_scratch.extend(
                        self.snap_touched.iter().map(|&i| self.snap_counts[i as usize] as f64),
                    );
                    sample_multinomial_sparse_into(
                        rest,
                        &self.theta_scratch,
                        &self.snap_touched,
                        rng,
                        &mut self.serve_counts,
                    );
                }
            }
            // Emit the histogram palette in snapshot-touched order
            // (every drawn opinion is a local color).
            for &i in &self.snap_touched {
                let c = self.serve_counts[i as usize];
                if c > 0 {
                    pruns.push((palette.len() as u32, c));
                    palette.push(Opinion::new(i));
                    self.serve_counts[i as usize] = 0;
                }
            }
            if served_undecided > 0 {
                pruns.push((palette.len() as u32, served_undecided));
                palette.push(Opinion::UNDECIDED);
            }
        } else if self.condensed {
            // Raw palette off the histogram: a uniform read of the flat
            // mirror is a draw from the round-start distribution — the
            // mirror is run-filled once per round on the first raw
            // batch and shared by the rest (the draws still come from
            // the per-origin serving streams, so pipelined serving
            // stays arrival-order independent).
            //
            // Incremental round state arbitrates per batch between the
            // mirror and the persistent Fenwick sampler: `total` draws
            // at `O(log k)` each against the mirror's `O(local_n)`
            // fill. The choice reads only the batch itself (never
            // whether another origin's batch already built the
            // mirror), so it too is arrival-order independent.
            let lg = u64::from((usize::BITS - (self.k_slots + 1).leading_zeros()).max(1));
            if self.inc && total > 0 && total.saturating_mul(lg) < local_n as u64 {
                debug_assert_eq!(self.serve_fen.total(), local_n as u64);
                palette.reserve(total as usize);
                for run in &batch.target_runs {
                    debug_assert!(
                        run.start == 0 && run.len as usize == local_n,
                        "batched pulls cover whole shard ranges"
                    );
                    for _ in 0..run.count {
                        let t = self.serve_fen.sample(rng);
                        palette.push(if t == self.k_slots {
                            Opinion::UNDECIDED
                        } else {
                            Opinion::new(t as u32)
                        });
                    }
                }
            } else if total > 0 {
                if !self.serve_flat_fresh {
                    self.serve_flat.clear();
                    self.serve_flat.reserve(local_n);
                    for &i in &self.snap_touched {
                        let c = self.snap_counts[i as usize] as usize;
                        self.serve_flat.resize(self.serve_flat.len() + c, Opinion::new(i));
                    }
                    // The remainder up to local_n is the undecided tail.
                    self.serve_flat.resize(local_n, Opinion::UNDECIDED);
                    self.serve_flat_fresh = true;
                }
                palette.reserve(total as usize);
                for run in &batch.target_runs {
                    debug_assert!(
                        run.start == 0 && run.len as usize == local_n,
                        "batched pulls cover whole shard ranges"
                    );
                    for _ in 0..run.count {
                        let t = rng.gen_range(0..local_n);
                        palette.push(self.serve_flat[t]);
                    }
                }
            }
        } else {
            // Raw: the drawn opinions themselves, in draw order.
            palette.reserve(total as usize);
            for run in &batch.target_runs {
                for _ in 0..run.count {
                    let t = run.start + rng.gen_range(0..run.len);
                    palette.push(self.opinions[t as usize]);
                }
            }
        }

        OpinionPalette { origin: self.shard_id as u32, round: self.round_no, palette, runs: pruns }
    }

    /// Counts the post-update opinions and builds the commanded report
    /// body; under [`ReportMode::Delta`] also rolls the previous-round
    /// counts forward and reports the changed-slot count.
    fn build_report(&mut self, format: ReportFormat) -> (ReportBody, u64, Option<u64>) {
        let tracking = self.report_mode == ReportMode::Delta;
        if self.condensed && self.report_pairs_fresh {
            self.report_pairs_fresh = false;
            if !tracking && format == ReportFormat::Sparse {
                // Flat-tally install: `hist_pairs` *is* the sparse
                // body, already sorted — no dense pass at all. The
                // scratch was never written this round, so there is
                // nothing to zero behind the report.
                let mut pairs = self.report_pool.pop().unwrap_or_default();
                pairs.clear();
                pairs.extend_from_slice(&self.hist_pairs);
                return (ReportBody::Sparse(pairs), self.hist_undecided, None);
            }
            // Dense/delta shapes want the dense scratch: mirror once
            // and fall through as a freshly-tallied report.
            self.touched.clear();
            self.mirror_hist(Mirror::Report);
            self.report_fresh = true;
        }
        let undecided = if self.condensed {
            // The post-step histogram *is* the count. Right after a
            // condensed consume the tally it was installed from is
            // still sitting in the scratch — report straight off it;
            // otherwise (round-0 style calls) mirror the histogram
            // (`O(#occupied)`, no recount). Either way the body
            // builders below run unchanged.
            if self.report_fresh {
                self.report_fresh = false;
            } else {
                self.touched.clear();
                self.mirror_hist(Mirror::Report);
            }
            self.hist_undecided
        } else {
            self.touched.clear();
            count_opinions(&self.opinions, &mut self.count_scratch, &mut self.touched)
        };

        let changed_slots = if tracking {
            let mut changed = 0u64;
            for &i in &self.touched {
                if self.count_scratch[i as usize] != self.prev_counts[i as usize] {
                    changed += 1;
                }
            }
            for &i in &self.prev_touched {
                if self.count_scratch[i as usize] == 0 {
                    changed += 1;
                }
            }
            Some(changed)
        } else {
            None
        };

        let body = match format {
            ReportFormat::Sparse => {
                let mut pairs = self.report_pool.pop().unwrap_or_default();
                pairs.clear();
                pairs.reserve(self.touched.len());
                for &i in &self.touched {
                    pairs.push((i, self.count_scratch[i as usize]));
                }
                ReportBody::Sparse(pairs)
            }
            ReportFormat::Delta => {
                assert!(tracking, "delta reports need ReportMode::Delta tracking");
                let mut pairs = Vec::with_capacity(changed_slots.unwrap_or(0) as usize);
                for &i in &self.touched {
                    let new = self.count_scratch[i as usize];
                    let prev = self.prev_counts[i as usize];
                    if new != prev {
                        pairs.push((i, new as i64 - prev as i64));
                    }
                }
                for &i in &self.prev_touched {
                    if self.count_scratch[i as usize] == 0 {
                        pairs.push((i, -(self.prev_counts[i as usize] as i64)));
                    }
                }
                ReportBody::Delta(pairs)
            }
            ReportFormat::Dense => {
                let mut counts = vec![0u64; self.k_slots];
                for &i in &self.touched {
                    counts[i as usize] = self.count_scratch[i as usize];
                }
                ReportBody::Dense(counts)
            }
        };

        if tracking {
            // Roll prev ← new; the swapped-out previous counts become
            // the (zeroed) scratch for the next round.
            std::mem::swap(&mut self.prev_counts, &mut self.count_scratch);
            std::mem::swap(&mut self.prev_touched, &mut self.touched);
        }
        for &i in &self.touched {
            self.count_scratch[i as usize] = 0;
        }
        self.touched.clear();
        (body, undecided, changed_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_nodes_disjointly() {
        for (n, shards) in [(10u32, 3usize), (16, 4), (7, 7), (100, 8), (5, 1)] {
            let p = Partition::new(n, shards);
            let mut seen = vec![false; n as usize];
            for s in 0..shards {
                for gid in p.range(s) {
                    assert!(!seen[gid as usize], "node {gid} owned twice");
                    seen[gid as usize] = true;
                    assert_eq!(p.owner(gid), s, "owner mismatch for {gid}");
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n} shards={shards}: not all owned");
        }
    }

    #[test]
    fn partition_owner_matches_range_for_uneven_split() {
        let p = Partition::new(10, 4); // chunk = 3: ranges 0..3,3..6,6..9,9..10
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(3), 9..10);
        assert_eq!(p.owner(9), 3);
    }

    #[test]
    #[should_panic(expected = "one node per shard")]
    fn too_many_shards_panics() {
        Partition::new(3, 4);
    }
}
