//! Shard workers: each thread owns a contiguous range of nodes and speaks
//! the batched request/reply protocol of [`crate::message`].
//!
//! The round loop recycles its batch buffers: outgoing request and
//! reply batches are drawn from per-type buffer pools that are
//! replenished by the batches *received* from peers (each round a shard
//! sends and receives the same number of batches of each type, so the
//! pools reach equilibrium after the first round), and the sparse
//! report is counted through a reusable touched-slot scratch in
//! `O(local_n)` instead of a fresh dense `vec![0; k]`. The one
//! remaining per-round allocation is the report's `(slot, count)` pair
//! buffer itself — `O(#locally occupied)`, and it changes hands to the
//! coordinator, so it cannot be pooled shard-side.

use std::sync::mpsc::{Receiver, Sender};

use rand::{Rng, SeedableRng};

use symbreak_core::{Opinion, UpdateRule};
use symbreak_sim::rng::{trial_seed, Pcg64};

use crate::cluster::ReportMode;
use crate::message::{Control, Reply, ReportBody, Request, ShardMessage, ShardReport};

/// Node-ownership partition: shard `i` owns global ids
/// `[i·chunk, min((i+1)·chunk, n))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Partition {
    pub n: u32,
    pub chunk: u32,
    pub shards: usize,
}

impl Partition {
    pub fn new(n: u32, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(n as usize >= shards, "need at least one node per shard");
        let chunk = n.div_ceil(shards as u32);
        Self { n, chunk, shards }
    }

    pub fn owner(&self, gid: u32) -> usize {
        debug_assert!(gid < self.n);
        ((gid / self.chunk) as usize).min(self.shards - 1)
    }

    pub fn range(&self, shard: usize) -> std::ops::Range<u32> {
        // Both ends clamp to n: with chunk = ceil(n/shards), trailing
        // shards can be empty (e.g. n = 10, shards = 8).
        let lo = ((shard as u32) * self.chunk).min(self.n);
        let hi = ((shard as u32 + 1) * self.chunk).min(self.n);
        lo..hi
    }
}

/// Channel endpoints handed to a shard thread.
pub(crate) struct ShardEndpoints {
    pub inbox: Receiver<ShardMessage>,
    pub peers: Vec<Sender<ShardMessage>>,
    pub control: Receiver<Control>,
    pub report: Sender<ShardReport>,
}

/// Static per-run parameters shared by every shard.
///
/// `k_slots` is the number of color slots reported back to the
/// coordinator (opinion indices must stay below it).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardSpec {
    pub partition: Partition,
    pub k_slots: usize,
    pub report_mode: ReportMode,
    pub master_seed: u64,
}

/// Runs one shard to completion.
pub(crate) fn run_shard<R: UpdateRule>(
    shard_id: usize,
    spec: ShardSpec,
    rule: R,
    mut opinions: Vec<Opinion>,
    endpoints: ShardEndpoints,
) {
    let ShardSpec { partition, k_slots, report_mode, master_seed } = spec;
    let mut rng = Pcg64::seed_from_u64(trial_seed(master_seed, shard_id as u64 + 1));
    let h = rule.sample_count();
    let local_n = opinions.len();
    let lo = partition.range(shard_id).start;
    let shards = partition.shards;
    let mut samples: Vec<Opinion> = vec![Opinion::new(0); local_n * h];
    let mut snapshot: Vec<Opinion> = opinions.clone();

    // Reusable round state: per-destination batch buffers, the pools that
    // recycle received batches into next round's outgoing ones, and the
    // sparse-report scratch (dense but zero outside `touched`, so a round
    // touches only the locally occupied slots).
    let mut outgoing: Vec<Vec<Request>> = (0..shards).map(|_| Vec::new()).collect();
    let mut reply_out: Vec<Vec<Reply>> = (0..shards).map(|_| Vec::new()).collect();
    let mut request_pool: Vec<Vec<Request>> = Vec::new();
    let mut reply_pool: Vec<Vec<Reply>> = Vec::new();
    let mut count_scratch: Vec<u64> = vec![0; k_slots];
    let mut touched: Vec<u32> = Vec::new();

    while let Ok(Control::Round) = endpoints.control.recv() {
        // Freeze the round-start snapshot (synchrony: replies quote it).
        snapshot.clone_from(&opinions);

        // Issue h uniform pull requests per local node, batched per
        // destination shard. Every destination gets exactly one request
        // batch, empty or not — batches close the request phase.
        let mut messages_sent = 0u64;
        for local in 0..local_n {
            let requester = lo + local as u32;
            for slot in 0..h {
                let target = rng.gen_range(0..partition.n);
                outgoing[partition.owner(target)].push(Request {
                    target,
                    requester,
                    slot: slot as u8,
                });
            }
        }
        for (dest, out) in outgoing.iter_mut().enumerate() {
            let batch = std::mem::replace(out, request_pool.pop().unwrap_or_default());
            messages_sent += batch.len() as u64;
            endpoints.peers[dest].send(ShardMessage::Requests(batch)).expect("peer shard alive");
        }

        // Serve requests as they arrive and absorb replies until both
        // sides of the round are complete. Replies are counted by entry
        // (`local_n · h` expected), so empty reply batches are skipped.
        let mut request_batches = 0usize;
        let expected_replies = local_n * h;
        let mut replies_received = 0usize;
        while request_batches < shards || replies_received < expected_replies {
            match endpoints.inbox.recv().expect("cluster channels alive") {
                ShardMessage::Requests(mut batch) => {
                    request_batches += 1;
                    for req in batch.drain(..) {
                        let opinion = snapshot[(req.target - lo) as usize];
                        reply_out[partition.owner(req.requester)].push(Reply {
                            requester: req.requester,
                            slot: req.slot,
                            opinion,
                        });
                    }
                    request_pool.push(batch);
                    for (dest, out) in reply_out.iter_mut().enumerate() {
                        if out.is_empty() {
                            continue;
                        }
                        let replies = std::mem::replace(out, reply_pool.pop().unwrap_or_default());
                        messages_sent += replies.len() as u64;
                        endpoints.peers[dest]
                            .send(ShardMessage::Replies(replies))
                            .expect("peer shard alive");
                    }
                }
                ShardMessage::Replies(mut batch) => {
                    replies_received += batch.len();
                    for rep in batch.drain(..) {
                        let local = (rep.requester - lo) as usize;
                        samples[local * h + rep.slot as usize] = rep.opinion;
                    }
                    reply_pool.push(batch);
                }
            }
        }

        // Apply the update rule locally, in deterministic node order.
        for local in 0..local_n {
            let own = opinions[local];
            let window = &samples[local * h..(local + 1) * h];
            opinions[local] = rule.update(own, window, &mut rng);
        }

        // Report this shard's observable state.
        let mut undecided = 0u64;
        let body = match report_mode {
            ReportMode::Sparse => {
                touched.clear();
                for &o in &opinions {
                    if o.is_undecided() {
                        undecided += 1;
                        continue;
                    }
                    let i = o.index();
                    if count_scratch[i] == 0 {
                        touched.push(i as u32);
                    }
                    count_scratch[i] += 1;
                }
                let mut pairs = Vec::with_capacity(touched.len());
                for &i in &touched {
                    pairs.push((i, count_scratch[i as usize]));
                    count_scratch[i as usize] = 0;
                }
                ReportBody::Sparse(pairs)
            }
            ReportMode::Dense => {
                let mut counts = vec![0u64; k_slots];
                for &o in &opinions {
                    if o.is_undecided() {
                        undecided += 1;
                    } else {
                        counts[o.index()] += 1;
                    }
                }
                ReportBody::Dense(counts)
            }
        };
        endpoints
            .report
            .send(ShardReport { shard: shard_id, body, undecided, messages_sent })
            .expect("coordinator alive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_nodes_disjointly() {
        for (n, shards) in [(10u32, 3usize), (16, 4), (7, 7), (100, 8), (5, 1)] {
            let p = Partition::new(n, shards);
            let mut seen = vec![false; n as usize];
            for s in 0..shards {
                for gid in p.range(s) {
                    assert!(!seen[gid as usize], "node {gid} owned twice");
                    seen[gid as usize] = true;
                    assert_eq!(p.owner(gid), s, "owner mismatch for {gid}");
                }
            }
            assert!(seen.iter().all(|&s| s), "n={n} shards={shards}: not all owned");
        }
    }

    #[test]
    fn partition_owner_matches_range_for_uneven_split() {
        let p = Partition::new(10, 4); // chunk = 3: ranges 0..3,3..6,6..9,9..10
        assert_eq!(p.range(0), 0..3);
        assert_eq!(p.range(3), 9..10);
        assert_eq!(p.owner(9), 3);
    }

    #[test]
    #[should_panic(expected = "one node per shard")]
    fn too_many_shards_panics() {
        Partition::new(3, 4);
    }
}
