//! Round-state lifecycle: incremental (delta-patched) samplers vs the
//! per-round rebuild baseline.
//!
//! `RoundStateMode::Incremental` keeps the push-gear union sampler and
//! the condensed serving palettes alive across rounds, patching them
//! from histogram deltas instead of re-deduplicating / re-aliasing from
//! scratch. The patched samplers are *distribution-exact* but consume
//! randomness in a different order, so — like the condensed-vs-agents
//! and gear comparisons — the two modes are compared in law, not
//! pathwise. The tests here pin:
//!
//! * the rebuild mode is the default and, forced explicitly, replays
//!   the PR 9 golden digests byte-for-byte (the incremental layer is
//!   invisible unless opted into);
//! * incremental runs are deterministic per seed and conserve mass
//!   through the delta-patched push rounds (including the UNDECIDED
//!   pseudo-slot's signed deltas);
//! * mean consensus times agree incremental-vs-rebuild within the
//!   Welch-style 5-sigma band, per rule;
//! * agent-backed shards take the delta push path (the stalled
//!   regime's venue): in-law agreement, per-seed determinism, and the
//!   wire collapse the deltas exist for;
//! * on the sub-paths where the incremental gate arbitrates itself off
//!   (per-entry wire, active fault plans) or has nothing to patch
//!   (agent-backed pull gear) the two modes coincide byte-for-byte,
//!   not merely in law;
//! * the persistent Fenwick serving sampler (the pull-gear side of the
//!   incremental state) agrees with the rebuilt flat palette in law and
//!   stays per-seed deterministic under pipelined serving.

use symbreak_core::rules::{ThreeMajority, TwoChoices, UndecidedDynamics, Voter};
use symbreak_core::{Configuration, UpdateRule};
use symbreak_runtime::{
    Cluster, ClusterConfig, ConsumeMode, FaultPlan, GearMode, RoundStateMode, ShardRepr, WireMode,
};
use symbreak_sim::run_trials;
use symbreak_stats::Summary;

/// Order-sensitive fold over the per-round observables; any divergence
/// in any round of the trajectory changes the digest.
fn trace_digest(trace: &symbreak_sim::trace::Trace) -> u64 {
    let mut acc = 0u64;
    for r in trace.rounds() {
        acc = acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(r.round)
            .wrapping_add((r.num_colors as u64) << 20)
            .wrapping_add(r.max_support << 40)
            .wrapping_add(r.bias);
    }
    acc
}

fn times_with_round_state<R>(
    rule: R,
    start: &Configuration,
    trials: u64,
    seed: u64,
    rs: RoundStateMode,
) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let cfg = ClusterConfig::new(3, s).with_round_state(rs);
        let cluster = Cluster::new(rule.clone(), &start, cfg);
        cluster.run_to_consensus(10_000_000).expect("consensus").consensus_round
    })
}

/// Asserts the two mean observables agree within a Welch-style 5-sigma
/// band on the difference of means.
fn assert_means_agree(name: &str, incremental: &[u64], rebuild: &[u64]) {
    let i = Summary::of_counts(incremental);
    let r = Summary::of_counts(rebuild);
    let tol = 5.0 * (i.std_err().powi(2) + r.std_err().powi(2)).sqrt() + 0.5;
    assert!(
        (i.mean() - r.mean()).abs() < tol,
        "{name}: incremental mean {} vs rebuild mean {} (tol {tol})",
        i.mean(),
        r.mean()
    );
}

// ---------------------------------------------------------------------
// The rebuild baseline: default mode, byte-exact against the PR 9
// goldens when forced explicitly.
// ---------------------------------------------------------------------

#[test]
fn rebuild_is_the_default_round_state() {
    assert_eq!(RoundStateMode::default(), RoundStateMode::Rebuild);
    assert_eq!(
        ClusterConfig::new(4, 42),
        ClusterConfig::new(4, 42).with_round_state(RoundStateMode::Rebuild)
    );
}

#[test]
fn golden_three_majority_forced_rebuild_seed_exact() {
    let start = Configuration::uniform(200, 8);
    let config = ClusterConfig::new(4, 42)
        .with_shard_repr(ShardRepr::Agents)
        .with_round_state(RoundStateMode::Rebuild);
    let out =
        Cluster::new(ThreeMajority, &start, config).run_to_consensus(1_000_000).expect("consensus");
    assert_eq!(out.consensus_round, 20);
    assert_eq!(out.total_messages, 4320);
    assert_eq!(trace_digest(&out.trace), 0x4f42011c66704f4b);
}

#[test]
fn golden_two_choices_forced_rebuild_seed_exact() {
    let start = Configuration::singletons(128);
    let config = ClusterConfig::new(3, 7)
        .with_consume_mode(ConsumeMode::Ordered)
        .with_round_state(RoundStateMode::Rebuild);
    let out = Cluster::new(TwoChoices, &start, config).run_horizon(30);
    assert_eq!(out.final_config.num_colors(), 96);
    assert_eq!(out.total_messages, 7950);
    assert_eq!(out.report_entries.iter().sum::<u64>(), 3696);
    assert_eq!(trace_digest(&out.trace), 0x9007113d1f373db1);
}

#[test]
fn golden_voter_per_entry_forced_rebuild_seed_exact() {
    let start = Configuration::uniform(120, 6);
    let config = ClusterConfig::new(3, 9)
        .with_wire_mode(WireMode::PerEntry)
        .with_round_state(RoundStateMode::Rebuild);
    let out = Cluster::new(Voter, &start, config).run_to_consensus(1_000_000).expect("consensus");
    assert_eq!(out.consensus_round, 92);
    assert_eq!(out.total_messages, 22080);
    assert_eq!(trace_digest(&out.trace), 0x8fe0152528e7a52c);
}

// ---------------------------------------------------------------------
// Incremental runs: deterministic, mass-conserving, consensus-reaching.
// ---------------------------------------------------------------------

#[test]
fn incremental_runs_are_deterministic_per_seed() {
    // Uniform k = 8 keeps the auto gear in push from round 1, so this
    // drives consecutive delta-patched push rounds end to end.
    let start = Configuration::uniform(256, 8);
    let run = || {
        let cfg = ClusterConfig::new(4, 99).with_round_state(RoundStateMode::Incremental);
        Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus")
    };
    let a = run();
    let b = run();
    assert_eq!(a.consensus_round, b.consensus_round);
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(trace_digest(&a.trace), trace_digest(&b.trace));
}

#[test]
fn incremental_reaches_consensus_and_conserves_mass() {
    let start = Configuration::uniform(256, 8);
    let cfg = ClusterConfig::new(4, 5).with_round_state(RoundStateMode::Incremental);
    let out =
        Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus");
    assert_eq!(out.final_config.n(), 256);
    assert!(out.final_config.is_consensus());
}

#[test]
fn incremental_conserves_mass_undecided_dynamics() {
    // The UNDECIDED pseudo-slot rides the delta palettes as a signed
    // count like any other slot; its mass must round-trip through the
    // patched union every round.
    let start = Configuration::from_counts(vec![70, 30]);
    let cfg = ClusterConfig::new(3, 23).with_round_state(RoundStateMode::Incremental);
    let out = Cluster::new(UndecidedDynamics, &start, cfg)
        .run_to_consensus(1_000_000)
        .expect("consensus");
    assert_eq!(out.final_config.n(), 100);
    assert!(out.final_config.is_consensus());
}

// ---------------------------------------------------------------------
// Distributional agreement: incremental vs rebuild, same law, per rule.
// ---------------------------------------------------------------------

#[test]
fn incremental_matches_rebuild_three_majority() {
    let start = Configuration::uniform(256, 8);
    let trials = 48;
    let inc =
        times_with_round_state(ThreeMajority, &start, trials, 13100, RoundStateMode::Incremental);
    let reb = times_with_round_state(ThreeMajority, &start, trials, 13200, RoundStateMode::Rebuild);
    assert_means_agree("3-Majority", &inc, &reb);
}

#[test]
fn incremental_matches_rebuild_three_majority_singletons() {
    // k = n start: the fleet opens in the pull gear (persistent Fenwick
    // serving) and shifts to push as occupancy collapses — the full
    // incremental round-state lifecycle, including the full-broadcast
    // re-arm after each gear flip.
    let start = Configuration::singletons(96);
    let trials = 48;
    let inc =
        times_with_round_state(ThreeMajority, &start, trials, 13300, RoundStateMode::Incremental);
    let reb = times_with_round_state(ThreeMajority, &start, trials, 13400, RoundStateMode::Rebuild);
    assert_means_agree("3-Majority singletons", &inc, &reb);
}

#[test]
fn incremental_matches_rebuild_voter() {
    let start = Configuration::uniform(128, 8);
    let trials = 48;
    let inc = times_with_round_state(Voter, &start, trials, 13500, RoundStateMode::Incremental);
    let reb = times_with_round_state(Voter, &start, trials, 13600, RoundStateMode::Rebuild);
    assert_means_agree("Voter", &inc, &reb);
}

#[test]
fn incremental_matches_rebuild_undecided_dynamics() {
    let start = Configuration::from_counts(vec![70, 30]);
    let trials = 48;
    let inc = times_with_round_state(
        UndecidedDynamics,
        &start,
        trials,
        13700,
        RoundStateMode::Incremental,
    );
    let reb =
        times_with_round_state(UndecidedDynamics, &start, trials, 13800, RoundStateMode::Rebuild);
    assert_means_agree("Undecided dynamics", &inc, &reb);
}

// ---------------------------------------------------------------------
// Agent-backed shards on the delta push path: the stalled regime's
// actual venue. Compared in law (the delta union consumes randomness
// in a different order than the broadcast union), plus per-seed
// determinism and the wire collapse the deltas exist for.
// ---------------------------------------------------------------------

#[test]
fn incremental_agent_push_matches_rebuild_in_law() {
    let start = Configuration::uniform(200, 8);
    let times = |seed, rs| {
        let start = start.clone();
        run_trials(48, seed, move |_t, s| {
            let cfg = ClusterConfig::new(4, s)
                .with_shard_repr(ShardRepr::Agents)
                .with_data_gear(GearMode::ForcePush)
                .with_round_state(rs);
            Cluster::new(ThreeMajority, &start, cfg)
                .run_to_consensus(10_000_000)
                .expect("consensus")
                .consensus_round
        })
    };
    let inc = times(13900, RoundStateMode::Incremental);
    let reb = times(14000, RoundStateMode::Rebuild);
    assert_means_agree("3-Majority agent-backed push", &inc, &reb);
}

#[test]
fn incremental_agent_push_is_deterministic_and_shrinks_the_wire() {
    // Singletons under 2-Choices: the stalled regime, where per-round
    // histogram deltas are tiny against the full broadcast.
    let start = Configuration::singletons(96);
    let run = |rs| {
        let cfg =
            ClusterConfig::new(3, 77).with_data_gear(GearMode::ForcePush).with_round_state(rs);
        Cluster::new(TwoChoices, &start, cfg).run_horizon(40)
    };
    let a = run(RoundStateMode::Incremental);
    let b = run(RoundStateMode::Incremental);
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(trace_digest(&a.trace), trace_digest(&b.trace));
    let reb = run(RoundStateMode::Rebuild);
    assert_eq!(a.final_config.n(), 96, "2-Choices never undecides: mass conserved");
    assert!(
        a.total_messages < reb.total_messages / 2,
        "delta push wire ({}) must collapse against the full broadcast ({})",
        a.total_messages,
        reb.total_messages
    );
}

// ---------------------------------------------------------------------
// Gate fallbacks: where the incremental state cannot apply, the mode
// must be byte-invisible, not merely agree in law.
// ---------------------------------------------------------------------

#[test]
fn incremental_is_byte_invisible_on_agent_pull_gear() {
    // The incremental state's persistent samplers live in the push
    // union and the condensed serving palette; an agent-backed fleet
    // held on the pull gear touches neither, so the mode must coincide
    // exactly with the rebuild baseline, not merely agree in law.
    let start = Configuration::uniform(200, 8);
    let run = |rs| {
        let cfg = ClusterConfig::new(4, 42)
            .with_shard_repr(ShardRepr::Agents)
            .with_data_gear(GearMode::ForcePull)
            .with_round_state(rs);
        Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus")
    };
    let inc = run(RoundStateMode::Incremental);
    let reb = run(RoundStateMode::Rebuild);
    assert_eq!(inc.consensus_round, reb.consensus_round);
    assert_eq!(inc.total_messages, reb.total_messages);
    assert_eq!(inc.final_config, reb.final_config);
    assert_eq!(trace_digest(&inc.trace), trace_digest(&reb.trace));
}

#[test]
fn incremental_falls_back_byte_exact_on_per_entry_wire() {
    // The per-entry wire serves pulls agent-by-agent — no batched
    // palettes, nothing to patch.
    let start = Configuration::uniform(120, 6);
    let run = |rs| {
        let cfg = ClusterConfig::new(3, 9).with_wire_mode(WireMode::PerEntry).with_round_state(rs);
        Cluster::new(Voter, &start, cfg).run_horizon(25)
    };
    let inc = run(RoundStateMode::Incremental);
    let reb = run(RoundStateMode::Rebuild);
    assert_eq!(inc.total_messages, reb.total_messages);
    assert_eq!(inc.final_config, reb.final_config);
    assert_eq!(trace_digest(&inc.trace), trace_digest(&reb.trace));
}

#[test]
fn incremental_falls_back_byte_exact_under_active_fault_plan() {
    // Dropped palettes can desynchronize a persistent union from the
    // fleet's true histograms, so an active fault plan pins the fleet to
    // the rebuild path — byte-for-byte, same plan on both sides.
    let start = Configuration::uniform(256, 8);
    let plan = FaultPlan::none().with_seed(3).with_palette_rates(0.2, 0.0, 0.0);
    let run = |rs| {
        let cfg = ClusterConfig::new(4, 17).with_fault_plan(plan.clone()).with_round_state(rs);
        Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus")
    };
    let inc = run(RoundStateMode::Incremental);
    let reb = run(RoundStateMode::Rebuild);
    assert_eq!(inc.consensus_round, reb.consensus_round);
    assert_eq!(inc.total_messages, reb.total_messages);
    assert_eq!(inc.final_config, reb.final_config);
    assert_eq!(trace_digest(&inc.trace), trace_digest(&reb.trace));
}

// ---------------------------------------------------------------------
// The persistent Fenwick serving sampler (pull gear): engaged when a
// batch's draw budget is small against `local_n`, i.e. many shards and
// thin per-batch totals.
// ---------------------------------------------------------------------

/// 16 shards over n = 3200 with Voter (h = 1) gives ~12 draws per
/// serve batch against `local_n` = 200, which lands the arbitration in
/// the Fenwick regime (`total * log k < local_n`) every round.
fn fenwick_regime_config(seed: u64, rs: RoundStateMode) -> ClusterConfig {
    ClusterConfig::new(16, seed).with_data_gear(GearMode::ForcePull).with_round_state(rs)
}

#[test]
fn incremental_fenwick_serving_matches_rebuild_in_law() {
    let start = Configuration::uniform(3200, 8);
    let trials = 32;
    let max_support_after = |seed_base: u64, rs: RoundStateMode| {
        let start = start.clone();
        run_trials(trials, seed_base, move |_t, s| {
            let out = Cluster::new(Voter, &start, fenwick_regime_config(s, rs)).run_horizon(30);
            assert_eq!(out.final_config.n(), 3200);
            out.trace.rounds().last().expect("rounds").max_support
        })
    };
    let inc = max_support_after(14100, RoundStateMode::Incremental);
    let reb = max_support_after(14200, RoundStateMode::Rebuild);
    assert_means_agree("Voter Fenwick serving (max support @30)", &inc, &reb);
}

#[test]
fn incremental_fenwick_serving_is_deterministic_per_seed() {
    // Pipelined serving answers pull batches in channel-arrival order;
    // the Fenwick draw must not condition on anything arrival-ordered,
    // so two same-seed runs coincide exactly.
    let start = Configuration::uniform(3200, 8);
    let run = || {
        Cluster::new(Voter, &start, fenwick_regime_config(77, RoundStateMode::Incremental))
            .run_horizon(30)
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(trace_digest(&a.trace), trace_digest(&b.trace));
}
