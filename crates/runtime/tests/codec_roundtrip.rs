//! Codec round-trip properties: every wire variant survives
//! encode → decode bit-exactly, every `*_len` accounting function
//! agrees with its encoder to the byte, and malformed frames (bad
//! magic, bad version, unknown kind, truncation) are rejected rather
//! than misinterpreted. These are the invariants the transport layer's
//! byte parity rests on: the channel backend *counts* with the `_len`
//! functions while the socket backend *writes* with the encoders.
//!
//! The vendored proptest subset has no `prop_oneof`/`any`, so variant
//! coverage is driven by selector integers mapped onto constructors:
//! each raw tuple deterministically builds one variant, and the
//! full-range `0..=u64::MAX` draws cover the max-varint extremes.

use proptest::prelude::*;
use symbreak_core::Opinion;
use symbreak_runtime::codec::{
    control_len, decode_control, decode_frame, decode_report, decode_shard_message, encode_control,
    encode_report, encode_shard_message, read_frame, report_len, shard_message_len, unzigzag,
    varint_len, zigzag, FrameKind, WireError, WIRE_MAGIC, WIRE_VERSION,
};
use symbreak_runtime::message::{Control, Reply, ShardReport};
use symbreak_runtime::{
    DataFormat, OpinionPalette, PullBatch, ReportBody, ReportFormat, Request, ShardMessage,
    TargetRun,
};

// ---------------------------------------------------------------------
// Deterministic constructors from raw draws.
// ---------------------------------------------------------------------

/// Opinions including the undecided sentinel and the largest legal
/// color (`u32::MAX - 1`, a five-byte varint after the `+1` shift).
fn opinion_from(code: u64) -> Opinion {
    match code % 66 {
        0 => Opinion::UNDECIDED,
        65 => Opinion::new(u32::MAX - 1),
        c => Opinion::new(c as u32),
    }
}

/// One data-plane message from a variant selector and raw entry draws:
/// `sel % 4` picks the variant, each `(a, b, c)` triple becomes one
/// entry. An empty `raw` exercises the empty batch / empty palette
/// shapes (a crashed peer's empty answer).
fn shard_message_from(sel: u64, origin: u32, round: u64, raw: &[(u64, u64, u64)]) -> ShardMessage {
    match sel % 4 {
        0 => ShardMessage::Requests(
            raw.iter()
                .map(|&(a, b, c)| Request { target: a as u32, requester: b as u32, slot: c as u8 })
                .collect(),
        ),
        1 => ShardMessage::Replies(
            raw.iter()
                .map(|&(a, b, c)| Reply {
                    requester: a as u32,
                    slot: b as u8,
                    opinion: opinion_from(c),
                })
                .collect(),
        ),
        2 => ShardMessage::Pull(PullBatch {
            origin,
            round,
            target_runs: raw
                .iter()
                .map(|&(a, b, c)| TargetRun { start: a as u32, len: b as u32, count: c })
                .collect(),
        }),
        _ => {
            let palette: Vec<Opinion> = raw.iter().map(|&(a, _, _)| opinion_from(a)).collect();
            // Run indices must stay in palette range; an empty palette
            // (encodable — the receiver sees zero drawn targets) forces
            // an empty run list.
            let runs = if palette.is_empty() {
                Vec::new()
            } else {
                raw.iter().map(|&(_, b, c)| ((b % palette.len() as u64) as u32, c)).collect()
            };
            ShardMessage::Palette(OpinionPalette { origin, round, palette, runs })
        }
    }
}

/// One control message: `sel % 8` covers all six `Round` format
/// combinations (three report formats × two data gears), `Rejoin`, and
/// `Stop`.
fn control_from(sel: u64, round: u64, body: &[(u64, u64)], undecided: u64) -> Control {
    match sel % 8 {
        s @ 0..=5 => Control::Round {
            round,
            report: match s % 3 {
                0 => ReportFormat::Sparse,
                1 => ReportFormat::Delta,
                _ => ReportFormat::Dense,
            },
            data: if s < 3 { DataFormat::Pull } else { DataFormat::Push },
        },
        6 => Control::Rejoin {
            round,
            body: body.iter().map(|&(slot, c)| (slot as u32, c)).collect(),
            undecided,
        },
        _ => Control::Stop,
    }
}

/// One shard report: `sel % 3` picks the body encoding; the delta body
/// reinterprets the raw `u64`s through `unzigzag`, covering the full
/// signed range including `i64::MIN`/`i64::MAX`.
fn report_from(
    sel: u64,
    shard: usize,
    round: u64,
    raw: &[(u64, u64)],
    tallies: (u64, u64, u64),
    extras: (u64, u64, u64),
) -> ShardReport {
    let body = match sel % 3 {
        0 => ReportBody::Sparse(raw.iter().map(|&(s, c)| (s as u32, c)).collect()),
        1 => ReportBody::Delta(raw.iter().map(|&(s, d)| (s as u32, unzigzag(d))).collect()),
        _ => ReportBody::Dense(raw.iter().map(|&(_, c)| c).collect()),
    };
    let (undecided, messages_sent, recovered) = tallies;
    let (changed, bytes_sent, bytes_received) = extras;
    ShardReport {
        shard,
        round,
        body,
        undecided,
        messages_sent,
        recovered,
        changed_slots: if changed % 2 == 0 { None } else { Some(changed >> 1) },
        bytes_sent,
        bytes_received,
    }
}

const FULL: std::ops::RangeInclusive<u64> = 0..=u64::MAX;

// ---------------------------------------------------------------------
// Round trips and length accounting.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shard_messages_round_trip(
        sel in FULL,
        origin in 0u32..=u32::MAX,
        round in FULL,
        raw in proptest::collection::vec((FULL, FULL, FULL), 0..16),
    ) {
        let msg = shard_message_from(sel, origin, round, &raw);
        let mut buf = Vec::new();
        encode_shard_message(&msg, &mut buf);
        prop_assert_eq!(shard_message_len(&msg), buf.len() as u64, "len fn must match encoder");
        let (frame, consumed) = decode_frame(&buf).expect("well-formed frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(frame.wire_len(), buf.len() as u64);
        prop_assert_eq!(decode_shard_message(&frame).expect("decodes"), msg);
    }

    #[test]
    fn controls_round_trip(
        sel in FULL,
        round in FULL,
        body in proptest::collection::vec((0u64..=u64::from(u32::MAX), FULL), 0..10),
        undecided in FULL,
    ) {
        let ctrl = control_from(sel, round, &body, undecided);
        let mut buf = Vec::new();
        encode_control(&ctrl, &mut buf);
        prop_assert_eq!(control_len(&ctrl), buf.len() as u64);
        let (frame, consumed) = decode_frame(&buf).expect("well-formed frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decode_control(&frame).expect("decodes"), ctrl);
    }

    #[test]
    fn reports_round_trip(
        sel in FULL,
        shard in 0usize..10_000,
        round in FULL,
        raw in proptest::collection::vec((0u64..=u64::from(u32::MAX), FULL), 0..10),
        scalars in ((FULL, FULL, FULL), (FULL, FULL, FULL)),
    ) {
        let rep = report_from(sel, shard, round, &raw, scalars.0, scalars.1);
        let mut buf = Vec::new();
        encode_report(&rep, &mut buf);
        prop_assert_eq!(report_len(&rep), buf.len() as u64);
        let (frame, consumed) = decode_frame(&buf).expect("well-formed frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decode_report(&frame).expect("decodes"), rep);
    }

    /// The stream reader agrees with the slice decoder, including on
    /// back-to-back frames (no framing drift).
    #[test]
    fn stream_reader_matches_slice_decoder(
        sels in proptest::collection::vec((FULL, FULL), 1..5),
        raw in proptest::collection::vec((FULL, FULL, FULL), 0..8),
    ) {
        let msgs: Vec<ShardMessage> = sels
            .iter()
            .map(|&(sel, round)| shard_message_from(sel, (sel >> 32) as u32, round, &raw))
            .collect();
        let mut buf = Vec::new();
        for msg in &msgs {
            encode_shard_message(msg, &mut buf);
        }
        let mut stream = std::io::Cursor::new(buf);
        for msg in &msgs {
            let frame = read_frame(&mut stream).expect("io ok").expect("frame present");
            prop_assert_eq!(&decode_shard_message(&frame).expect("decodes"), msg);
        }
        prop_assert!(read_frame(&mut stream).expect("io ok").is_none(), "clean EOF");
    }

    /// Truncating a frame anywhere strictly inside it is detected: the
    /// slice decoder reports `Truncated` (never a short parse) and the
    /// stream reader reports an error (never a silent `None` mid-frame).
    #[test]
    fn truncated_frames_are_rejected(
        sel in FULL,
        round in FULL,
        raw in proptest::collection::vec((FULL, FULL, FULL), 0..8),
        cut_draw in FULL,
    ) {
        let msg = shard_message_from(sel, (sel >> 32) as u32, round, &raw);
        let mut buf = Vec::new();
        encode_shard_message(&msg, &mut buf);
        let cut = 1 + (cut_draw % (buf.len() as u64 - 1)) as usize; // 1..len
        match decode_frame(&buf[..cut]) {
            Err(WireError::Truncated) => {}
            other => prop_assert!(false, "expected Truncated at {cut}, got {other:?}"),
        }
        let mut stream = std::io::Cursor::new(buf[..cut].to_vec());
        prop_assert!(read_frame(&mut stream).is_err(), "mid-frame EOF must error");
    }
}

// ---------------------------------------------------------------------
// Malformed-header rejection.
// ---------------------------------------------------------------------

#[test]
fn bad_magic_is_rejected() {
    let mut buf = Vec::new();
    encode_control(&Control::Stop, &mut buf);
    buf[0] ^= 0xFF;
    assert!(matches!(decode_frame(&buf), Err(WireError::BadMagic)));
    let mut stream = std::io::Cursor::new(buf);
    assert!(read_frame(&mut stream).is_err());
}

#[test]
fn bad_version_is_rejected() {
    let mut buf = Vec::new();
    encode_control(&Control::Stop, &mut buf);
    buf[2] = WIRE_VERSION + 1;
    assert!(matches!(decode_frame(&buf), Err(WireError::BadVersion(v)) if v == WIRE_VERSION + 1));
}

#[test]
fn unknown_frame_kind_is_rejected() {
    let mut buf = Vec::new();
    encode_control(&Control::Stop, &mut buf);
    buf[3] = 0xEE;
    assert!(matches!(decode_frame(&buf), Err(WireError::UnknownKind(0xEE))));
}

#[test]
fn wrong_kind_decoders_reject() {
    let mut buf = Vec::new();
    encode_control(&Control::Stop, &mut buf);
    let (frame, _) = decode_frame(&buf).expect("well-formed");
    assert_eq!(frame.kind, FrameKind::Stop);
    assert!(decode_shard_message(&frame).is_err());
    assert!(decode_report(&frame).is_err());
}

#[test]
fn header_layout_is_pinned() {
    // The documented layout: magic "SB", version, kind, round varint,
    // length varint, payload. A Stop frame is the minimal instance.
    let mut buf = Vec::new();
    encode_control(&Control::Stop, &mut buf);
    assert_eq!(buf, vec![WIRE_MAGIC[0], WIRE_MAGIC[1], WIRE_VERSION, FrameKind::Stop as u8, 0, 0]);
}

#[test]
fn varint_len_matches_known_boundaries() {
    for (v, len) in [
        (0u64, 1u64),
        (127, 1),
        (128, 2),
        (16_383, 2),
        (16_384, 3),
        (u64::from(u32::MAX), 5),
        (u64::MAX, 10),
    ] {
        assert_eq!(varint_len(v), len, "varint_len({v})");
    }
    assert_eq!(zigzag(0), 0);
    assert_eq!(zigzag(-1), 1);
    assert_eq!(zigzag(1), 2);
    assert_eq!(zigzag(i64::MIN), u64::MAX);
    for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
        assert_eq!(unzigzag(zigzag(v)), v);
    }
}
