//! Cross-validation of condensed (histogram-backed) shards against the
//! agent-backed baseline.
//!
//! A condensed shard never materializes its `local_n` agents: it steps a
//! local histogram by closed-form aggregate draws. That is a different
//! randomness consumption order, so the two representations cannot be
//! compared pathwise — but both realize exactly the Uniform Pull law, so
//! every distributional observable must agree. The tests here pin:
//!
//! * mean consensus times, condensed vs `ShardRepr::Agents`, within a
//!   Welch-style 5-sigma band (3-Majority, Voter, Undecided Dynamics,
//!   both dense and `k = n` singleton starts);
//! * per-seed determinism of condensed runs;
//! * *byte-exact* equality on the sub-paths where the arbitration
//!   downgrades a `Histogram` request to agent-backed shards (ordered
//!   windows, per-entry wire) — there the representations must coincide,
//!   not merely agree in law;
//! * fault-layer semantics mode-identically preserved: inert plans are
//!   trajectory-invisible, palette-loss compensation and crash-rejoin
//!   conserve mass on histogram-backed shards.

use symbreak_core::rules::{
    HMajority, ThreeMajority, TwoChoices, TwoMedian, UndecidedDynamics, Voter,
};
use symbreak_core::{Configuration, UpdateRule};
use symbreak_runtime::{
    Cluster, ClusterConfig, ConsumeMode, CrashSpec, FaultPlan, GearMode, ShardRepr, WireMode,
};
use symbreak_sim::run_trials;
use symbreak_stats::Summary;

/// Order-sensitive fold over the per-round observables; any divergence
/// in any round of the trajectory changes the digest.
fn trace_digest(trace: &symbreak_sim::trace::Trace) -> u64 {
    let mut acc = 0u64;
    for r in trace.rounds() {
        acc = acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(r.round)
            .wrapping_add((r.num_colors as u64) << 20)
            .wrapping_add(r.max_support << 40)
            .wrapping_add(r.bias);
    }
    acc
}

fn times_with_repr<R>(
    rule: R,
    start: &Configuration,
    trials: u64,
    seed: u64,
    repr: ShardRepr,
) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    times_with_repr_gear(rule, start, trials, seed, repr, GearMode::Auto)
}

fn times_with_repr_gear<R>(
    rule: R,
    start: &Configuration,
    trials: u64,
    seed: u64,
    repr: ShardRepr,
    gear: GearMode,
) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let cfg = ClusterConfig::new(3, s).with_shard_repr(repr).with_data_gear(gear);
        let cluster = Cluster::new(rule.clone(), &start, cfg);
        cluster.run_to_consensus(10_000_000).expect("consensus").consensus_round
    })
}

/// Asserts the two mean consensus times agree within a Welch-style
/// 5-sigma band on the difference of means.
fn assert_means_agree(name: &str, condensed: &[u64], agents: &[u64]) {
    let c = Summary::of_counts(condensed);
    let a = Summary::of_counts(agents);
    let tol = 5.0 * (c.std_err().powi(2) + a.std_err().powi(2)).sqrt() + 0.5;
    assert!(
        (c.mean() - a.mean()).abs() < tol,
        "{name}: condensed mean {} vs agents mean {} (tol {tol})",
        c.mean(),
        a.mean()
    );
}

// ---------------------------------------------------------------------
// Distributional agreement: condensed vs agent-backed, same law.
// ---------------------------------------------------------------------

#[test]
fn condensed_matches_agents_three_majority() {
    let start = Configuration::uniform(256, 8);
    let trials = 48;
    let condensed = times_with_repr(ThreeMajority, &start, trials, 11100, ShardRepr::Histogram);
    let agents = times_with_repr(ThreeMajority, &start, trials, 11200, ShardRepr::Agents);
    assert_means_agree("3-Majority", &condensed, &agents);
}

#[test]
fn condensed_matches_agents_three_majority_singletons() {
    // k = n is the worst case for condensation (#occupied = local_n at
    // the start) and drives the pull gear, the ordered→split dispatch
    // lifecycle, and the occupancy collapse — the full condensed round
    // path end to end.
    let start = Configuration::singletons(96);
    let trials = 48;
    let condensed = times_with_repr(ThreeMajority, &start, trials, 11300, ShardRepr::Histogram);
    let agents = times_with_repr(ThreeMajority, &start, trials, 11400, ShardRepr::Agents);
    assert_means_agree("3-Majority singletons", &condensed, &agents);
}

#[test]
fn condensed_matches_agents_voter() {
    // Voter consumes single peers: the condensed path is one multinomial
    // over the union weights per round, no per-node window walk.
    let start = Configuration::uniform(128, 8);
    let trials = 48;
    let condensed = times_with_repr(Voter, &start, trials, 11500, ShardRepr::Histogram);
    let agents = times_with_repr(Voter, &start, trials, 11600, ShardRepr::Agents);
    assert_means_agree("Voter", &condensed, &agents);
}

#[test]
fn condensed_matches_agents_undecided_dynamics() {
    // The undecided dynamics carries the UNDECIDED pseudo-opinion
    // outside the histogram slots; the condensed bookkeeping tracks it
    // as a separate mass that must flow through palettes, reports and
    // the closed-form step identically to the agent-backed path.
    let start = Configuration::from_counts(vec![70, 30]);
    let trials = 48;
    let condensed = times_with_repr(UndecidedDynamics, &start, trials, 11700, ShardRepr::Histogram);
    let agents = times_with_repr(UndecidedDynamics, &start, trials, 11800, ShardRepr::Agents);
    assert_means_agree("Undecided dynamics", &condensed, &agents);
}

// ---------------------------------------------------------------------
// The grouped condensed pull gear, pinned in law: with the data gear
// forced to pull on *both* representations, every round of the
// condensed run flows through the grouped consume (per-opinion
// hypergeometric blocks / flat dealing / pooled tally) while the agent
// run walks its nodes — the two must agree in distribution. One test
// per consume dispatch arm.
// ---------------------------------------------------------------------

#[test]
fn forced_pull_grouped_matches_agents_three_majority() {
    // Own-insensitive multiset rule from the k = n start: the condensed
    // pull round runs the single mega-block `condensed_window_step`
    // while the pool is concentrated, and the origin-interleaved flat
    // path while it is diverse — both arms stay pull-only under
    // `GearMode::ForcePull`.
    let start = Configuration::singletons(96);
    let trials = 48;
    let condensed = times_with_repr_gear(
        ThreeMajority,
        &start,
        trials,
        12100,
        ShardRepr::Histogram,
        GearMode::ForcePull,
    );
    let agents = times_with_repr_gear(
        ThreeMajority,
        &start,
        trials,
        12200,
        ShardRepr::Agents,
        GearMode::ForcePull,
    );
    assert_means_agree("3-Majority forced pull", &condensed, &agents);
}

#[test]
fn forced_pull_grouped_matches_agents_two_median() {
    // Own-sensitive multiset rule: the grouped consume cannot collapse
    // to one mega block, so the singleton start drives the flat
    // origin-interleaved dealing (positional windows, O(1) per ball).
    let start = Configuration::singletons(96);
    let trials = 48;
    let condensed = times_with_repr_gear(
        TwoMedian,
        &start,
        trials,
        12300,
        ShardRepr::Histogram,
        GearMode::ForcePull,
    );
    let agents = times_with_repr_gear(
        TwoMedian,
        &start,
        trials,
        12400,
        ShardRepr::Agents,
        GearMode::ForcePull,
    );
    assert_means_agree("2-Median forced pull", &condensed, &agents);
}

#[test]
fn forced_pull_grouped_matches_agents_undecided_dynamics() {
    // The undecided dynamics exercises the grouped per-(opinion-group)
    // split with the UNDECIDED pseudo-group carried outside the slots.
    let start = Configuration::from_counts(vec![70, 30]);
    let trials = 48;
    let condensed = times_with_repr_gear(
        UndecidedDynamics,
        &start,
        trials,
        12500,
        ShardRepr::Histogram,
        GearMode::ForcePull,
    );
    let agents = times_with_repr_gear(
        UndecidedDynamics,
        &start,
        trials,
        12600,
        ShardRepr::Agents,
        GearMode::ForcePull,
    );
    assert_means_agree("Undecided dynamics forced pull", &condensed, &agents);
}

#[test]
fn forced_pull_grouped_matches_agents_h_majority() {
    // h = 5 has no closed-form aggregate: the grouped consume falls
    // back to `condensed_window_step_by_dealing` (window splits per
    // group), which must still match the per-node agent walk in law.
    let start = Configuration::uniform(96, 6);
    let trials = 48;
    let condensed = times_with_repr_gear(
        HMajority::new(5),
        &start,
        trials,
        12700,
        ShardRepr::Histogram,
        GearMode::ForcePull,
    );
    let agents = times_with_repr_gear(
        HMajority::new(5),
        &start,
        trials,
        12800,
        ShardRepr::Agents,
        GearMode::ForcePull,
    );
    assert_means_agree("h-Majority (h = 5) forced pull", &condensed, &agents);
}

// ---------------------------------------------------------------------
// Determinism and seed-exact sub-paths.
// ---------------------------------------------------------------------

#[test]
fn condensed_runs_are_deterministic_per_seed() {
    let start = Configuration::singletons(96);
    let run = || {
        Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 99))
            .run_to_consensus(1_000_000)
            .expect("consensus")
    };
    let a = run();
    let b = run();
    assert_eq!(a.consensus_round, b.consensus_round);
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(trace_digest(&a.trace), trace_digest(&b.trace));
}

#[test]
fn ordered_window_downgrade_is_agent_exact() {
    // 2-Choices consumes an ordered sample window, so a `Histogram`
    // request arbitrates down to agent-backed shards: the two configs
    // must produce byte-identical runs, not merely the same law.
    let start = Configuration::singletons(128);
    let run = |repr| {
        let cfg =
            ClusterConfig::new(3, 7).with_consume_mode(ConsumeMode::Ordered).with_shard_repr(repr);
        Cluster::new(TwoChoices, &start, cfg).run_horizon(30)
    };
    let hist = run(ShardRepr::Histogram);
    let agents = run(ShardRepr::Agents);
    assert_eq!(hist.total_messages, agents.total_messages);
    assert_eq!(hist.final_config, agents.final_config);
    assert_eq!(trace_digest(&hist.trace), trace_digest(&agents.trace));
}

#[test]
fn per_entry_wire_downgrade_is_agent_exact() {
    // The per-entry wire serves pulls agent-by-agent; a condensed shard
    // cannot answer it, so the arbitration keeps agents and the runs
    // coincide exactly.
    let start = Configuration::uniform(120, 6);
    let run = |repr| {
        let cfg = ClusterConfig::new(3, 9).with_wire_mode(WireMode::PerEntry).with_shard_repr(repr);
        Cluster::new(Voter, &start, cfg).run_horizon(25)
    };
    let hist = run(ShardRepr::Histogram);
    let agents = run(ShardRepr::Agents);
    assert_eq!(hist.total_messages, agents.total_messages);
    assert_eq!(hist.final_config, agents.final_config);
    assert_eq!(trace_digest(&hist.trace), trace_digest(&agents.trace));
}

// ---------------------------------------------------------------------
// Gear forcing: seed-exact pins.
// ---------------------------------------------------------------------

#[test]
fn force_push_is_auto_exact_when_auto_arbitrates_push() {
    // From the uniform k = 8 start, `occ · shards² = 9 · 9 ≤ n · h =
    // 256 · 3` from round 1 and occupancy only falls, so the auto
    // arbitration picks push every round — forcing push must therefore
    // reproduce the auto run byte for byte, not merely in law.
    let start = Configuration::uniform(256, 8);
    let run = |gear| {
        let cfg = ClusterConfig::new(3, 21).with_data_gear(gear);
        Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus")
    };
    let auto = run(GearMode::Auto);
    let forced = run(GearMode::ForcePush);
    assert_eq!(auto.consensus_round, forced.consensus_round);
    assert_eq!(auto.total_messages, forced.total_messages);
    assert_eq!(auto.final_config, forced.final_config);
    assert_eq!(trace_digest(&auto.trace), trace_digest(&forced.trace));
}

#[test]
fn ordered_window_downgrade_forced_pull_is_agent_exact() {
    // Ordered-window rules arbitrate down to agent-backed shards even
    // when a gear is forced: with `ForcePull` pinning both fleets to
    // the same gear sequence, the `Histogram` request and the explicit
    // `Agents` config must still coincide byte for byte.
    let start = Configuration::singletons(128);
    let run = |repr| {
        let cfg = ClusterConfig::new(3, 7)
            .with_consume_mode(ConsumeMode::Ordered)
            .with_shard_repr(repr)
            .with_data_gear(GearMode::ForcePull);
        Cluster::new(TwoChoices, &start, cfg).run_horizon(30)
    };
    let hist = run(ShardRepr::Histogram);
    let agents = run(ShardRepr::Agents);
    assert_eq!(hist.total_messages, agents.total_messages);
    assert_eq!(hist.final_config, agents.final_config);
    assert_eq!(trace_digest(&hist.trace), trace_digest(&agents.trace));
}

#[test]
fn per_entry_wire_ignores_gear_force() {
    // Gears arbitrate the *batched* data plane; the per-entry wire has
    // no palettes to push, so forcing a gear there must change nothing.
    let start = Configuration::uniform(120, 6);
    let run = |gear| {
        let cfg = ClusterConfig::new(3, 9)
            .with_wire_mode(WireMode::PerEntry)
            .with_shard_repr(ShardRepr::Histogram)
            .with_data_gear(gear);
        Cluster::new(Voter, &start, cfg).run_horizon(25)
    };
    let default = run(GearMode::Auto);
    let forced = run(GearMode::ForcePush);
    assert_eq!(default.total_messages, forced.total_messages);
    assert_eq!(default.final_config, forced.final_config);
    assert_eq!(trace_digest(&default.trace), trace_digest(&forced.trace));
}

#[test]
fn condensed_forced_pull_is_deterministic_per_seed() {
    // The grouped pull consume (mega block, interleaved dealing, flat
    // tally) draws through the shard's owned stream only: two runs of
    // the same seed must coincide exactly even with the gear pinned to
    // the grouped path's worst case.
    let start = Configuration::singletons(96);
    let run = || {
        let cfg = ClusterConfig::new(4, 99).with_data_gear(GearMode::ForcePull);
        Cluster::new(ThreeMajority, &start, cfg).run_to_consensus(1_000_000).expect("consensus")
    };
    let a = run();
    let b = run();
    assert_eq!(a.consensus_round, b.consensus_round);
    assert_eq!(a.total_messages, b.total_messages);
    assert_eq!(a.final_config, b.final_config);
    assert_eq!(trace_digest(&a.trace), trace_digest(&b.trace));
}

// ---------------------------------------------------------------------
// Fault-layer semantics, mode-identically preserved.
// ---------------------------------------------------------------------

#[test]
fn inert_fault_plan_is_trajectory_invisible_under_condensation() {
    let start = Configuration::uniform(200, 8);
    let free = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42))
        .run_to_consensus(1_000_000)
        .expect("consensus");
    let inert = Cluster::new(
        ThreeMajority,
        &start,
        ClusterConfig::new(4, 42).with_fault_plan(FaultPlan::none()),
    )
    .run_to_consensus(1_000_000)
    .expect("consensus");
    assert_eq!(inert.consensus_round, free.consensus_round);
    assert_eq!(inert.total_messages, free.total_messages);
    assert_eq!(trace_digest(&inert.trace), trace_digest(&free.trace));
}

#[test]
fn condensed_palette_loss_is_recovered_and_conserves_mass() {
    // Singleton start keeps the fleet in the pull gear, so the dropped
    // palettes hit the condensed serve path and the shard re-samples the
    // missing mass from its round-start histogram.
    let start = Configuration::singletons(96);
    let plan = FaultPlan::none().with_seed(3).with_palette_rates(0.25, 0.0, 0.0);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 17).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus under palette loss");
    assert!(out.faults.palettes_dropped > 0);
    assert!(out.faults.recovered_samples > 0);
    assert_eq!(out.final_config.n(), 96);
    assert!(out.final_config.is_consensus());
}

#[test]
fn condensed_crash_rejoin_conserves_mass() {
    // Crash-stop and rejoin on histogram-backed shards: the rejoin body
    // is installed by copying counts (no dense recount), with the mass
    // check running over the sparse snapshot.
    let start = Configuration::uniform(200, 8);
    let plan = FaultPlan::none()
        .with_crash(CrashSpec { shard: 2, crash_round: 3, rejoin_round: Some(7) })
        .with_max_faulty(1);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus after crash-rejoin");
    assert_eq!(out.faults.rejoins, 1);
    assert_eq!(out.final_config.n(), 200);
    assert!(out.final_config.is_consensus());
}
