//! Property-based tests of the message-passing cluster.

use proptest::prelude::*;
use symbreak_core::rules::{ThreeMajority, Voter};
use symbreak_core::Configuration;
use symbreak_runtime::{Cluster, ClusterConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn consensus_from_any_start(
        counts in proptest::collection::vec(1u64..20, 2..5),
        shards in 1usize..5,
        seed in 0u64..500,
    ) {
        let start = Configuration::from_counts(counts);
        prop_assume!(start.n() >= shards as u64);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(shards, seed));
        let out = cluster.run_to_consensus(1_000_000).expect("consensus");
        prop_assert!(out.final_config.is_consensus());
        prop_assert_eq!(out.final_config.n(), start.n());
    }

    #[test]
    fn winner_is_initially_supported(
        counts in proptest::collection::vec(0u64..15, 3..6),
        seed in 0u64..500,
    ) {
        let start = Configuration::from_counts(counts);
        prop_assume!(start.n() >= 4);
        let cluster = Cluster::new(Voter, &start, ClusterConfig::new(2, seed));
        let out = cluster.run_to_consensus(2_000_000).expect("consensus");
        let winner = out.final_config.plurality();
        prop_assert!(
            start.support(winner.index()) > 0,
            "winner {winner} had no initial support in {start}"
        );
    }

    #[test]
    fn trace_round_indices_are_sequential(seed in 0u64..200) {
        let start = Configuration::uniform(40, 4);
        let cluster = Cluster::new(ThreeMajority, &start, ClusterConfig::new(3, seed));
        let out = cluster.run_to_consensus(1_000_000).expect("consensus");
        for (i, r) in out.trace.rounds().iter().enumerate() {
            prop_assert_eq!(r.round, i as u64 + 1);
            prop_assert!(r.max_support <= 40);
        }
    }

    #[test]
    fn deterministic_per_seed(seed in 0u64..100) {
        let start = Configuration::uniform(30, 3);
        let run = |s| {
            Cluster::new(ThreeMajority, &start, ClusterConfig::new(2, s))
                .run_to_consensus(1_000_000)
                .expect("consensus")
                .consensus_round
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
