//! Fault-injection layer tests: seed-exactness of inert plans, fault
//! tolerance and degradation semantics of active ones.
//!
//! The golden tests pin the exact trajectory of the fault-free path so
//! a fault-layer regression that perturbs the strict barrier (an extra
//! RNG draw, a reordered fold, a changed message count) is caught as a
//! digest mismatch rather than a silent drift.

use proptest::prelude::*;
use symbreak_core::rules::{ThreeMajority, TwoChoices, Voter};
use symbreak_core::Configuration;
use symbreak_runtime::{
    ByzantineSpec, Cluster, ClusterConfig, ConsumeMode, CorruptionKind, CrashSpec, FaultKind,
    FaultPlan, ShardRepr, StopReason, WireMode,
};

/// Strips the wire-byte counters (PR 8) off a [`FaultCounters`] so the
/// pre-transport goldens can still pin "all *fault* counters zero":
/// frame bytes are counted even on the fault-free channel path, and a
/// nonzero byte tally is correctness there, not degradation.
fn zero_bytes(mut faults: symbreak_runtime::FaultCounters) -> symbreak_runtime::FaultCounters {
    assert!(faults.bytes_sent > 0, "every run moves at least its reports");
    assert!(faults.bytes_received > 0);
    faults.bytes_sent = 0;
    faults.bytes_received = 0;
    faults
}

/// Order-sensitive fold over the per-round observables; any divergence
/// in any round of the trajectory changes the digest.
fn trace_digest(trace: &symbreak_sim::trace::Trace) -> u64 {
    let mut acc = 0u64;
    for r in trace.rounds() {
        acc = acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(r.round)
            .wrapping_add((r.num_colors as u64) << 20)
            .wrapping_add(r.max_support << 40)
            .wrapping_add(r.bias);
    }
    acc
}

// ---------------------------------------------------------------------
// Seed-exactness of the inert plan: `FaultPlan::none()` must leave the
// strict coordinator byte-for-byte identical to the pre-fault runtime.
// The pinned values are the PR 5 goldens.
// ---------------------------------------------------------------------

#[test]
fn inert_plan_is_the_default_config() {
    assert_eq!(FaultPlan::none(), FaultPlan::default());
    assert_eq!(
        ClusterConfig::new(4, 42),
        ClusterConfig::new(4, 42).with_fault_plan(FaultPlan::none())
    );
}

#[test]
fn golden_three_majority_inert_plan_seed_exact() {
    // `ShardRepr::Agents` pins the materialized per-agent baseline: an
    // inert plan on agent-backed shards must replay the pre-condensation
    // trajectory byte-for-byte.
    let start = Configuration::uniform(200, 8);
    let config = ClusterConfig::new(4, 42)
        .with_shard_repr(ShardRepr::Agents)
        .with_fault_plan(FaultPlan::none());
    let out =
        Cluster::new(ThreeMajority, &start, config).run_to_consensus(1_000_000).expect("consensus");
    assert_eq!(out.consensus_round, 20);
    assert_eq!(out.total_messages, 4320);
    assert_eq!(trace_digest(&out.trace), 0x4f42011c66704f4b);
    assert_eq!(zero_bytes(out.faults), Default::default());
}

#[test]
fn golden_two_choices_inert_plan_seed_exact() {
    // Default `ShardRepr::Histogram` requested, but 2-Choices consumes an
    // ordered window, so the arbitration downgrades to agent-backed shards
    // and the PR 6 golden must hold unchanged.
    let start = Configuration::singletons(128);
    let config = ClusterConfig::new(3, 7)
        .with_consume_mode(ConsumeMode::Ordered)
        .with_fault_plan(FaultPlan::none());
    let out = Cluster::new(TwoChoices, &start, config).run_horizon(30);
    assert_eq!(out.final_config.num_colors(), 96);
    assert_eq!(out.total_messages, 7950);
    assert_eq!(out.report_entries.iter().sum::<u64>(), 3696);
    assert_eq!(trace_digest(&out.trace), 0x9007113d1f373db1);
    assert_eq!(out.stop, StopReason::HorizonExhausted);
    assert!(out.wire_bytes > 0, "the channel backend still counts frame bytes");
    assert_eq!(out.wire_bytes, out.faults.bytes_sent);
    assert_eq!(zero_bytes(out.faults), Default::default());
}

#[test]
fn golden_voter_per_entry_inert_plan_seed_exact() {
    // Per-entry wire forces agent-backed shards regardless of the default
    // `ShardRepr::Histogram`, so this PR 6 golden must hold unchanged.
    let start = Configuration::uniform(120, 6);
    let config = ClusterConfig::new(3, 9)
        .with_wire_mode(WireMode::PerEntry)
        .with_fault_plan(FaultPlan::none());
    let out = Cluster::new(Voter, &start, config).run_to_consensus(1_000_000).expect("consensus");
    assert_eq!(out.consensus_round, 92);
    assert_eq!(out.total_messages, 22080);
    assert_eq!(trace_digest(&out.trace), 0x8fe0152528e7a52c);
}

// ---------------------------------------------------------------------
// Duplicate-only plans: identical copies are deduplicated by receivers
// and the coordinator, so the trajectory is *exactly* the fault-free
// one — only the wire accounting grows.
// ---------------------------------------------------------------------

#[test]
fn palette_duplicates_dedup_to_fault_free_trajectory() {
    let start = Configuration::uniform(160, 8);
    let free = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 11))
        .run_to_consensus(1_000_000)
        .expect("consensus");
    let plan = FaultPlan::none().with_seed(5).with_palette_rates(0.0, 1.0, 0.0);
    let faulty =
        Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 11).with_fault_plan(plan))
            .run_to_consensus(1_000_000)
            .expect("consensus under duplicates");
    assert_eq!(faulty.consensus_round, free.consensus_round);
    assert_eq!(trace_digest(&faulty.trace), trace_digest(&free.trace));
    assert_eq!(faulty.final_config, free.final_config);
    // Every inter-shard palette was sent twice: the duplicate copies
    // are real wire traffic and must be counted.
    assert!(faulty.total_messages > free.total_messages);
    assert!(faulty.faults.palettes_duplicated > 0);
    assert_eq!(faulty.faults.recovered_samples, 0);
}

#[test]
fn report_duplicates_double_entries_but_not_data_plane() {
    let start = Configuration::uniform(160, 8);
    let free = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 11)).run_horizon(12);
    let plan = FaultPlan::none().with_seed(5).with_report_rates(0.0, 1.0, 0.0);
    let faulty =
        Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 11).with_fault_plan(plan))
            .run_horizon(12);
    assert_eq!(trace_digest(&faulty.trace), trace_digest(&free.trace));
    // A duplicated report re-sends its body (control-plane entries
    // doubled) but describes the same data-plane traffic (messages
    // unchanged).
    assert_eq!(faulty.total_messages, free.total_messages);
    for (f, o) in faulty.report_entries.iter().zip(free.report_entries.iter()) {
        assert_eq!(*f, 2 * o);
    }
    assert_eq!(faulty.faults.reports_duplicated, 4 * 12);
}

// ---------------------------------------------------------------------
// Lossy plans: dropped or delayed palettes are compensated by local
// re-sampling, so mass is conserved and consensus still lands.
// ---------------------------------------------------------------------

#[test]
fn palette_drops_are_recovered_and_consensus_holds() {
    // Singleton start: the fleet boots in the pull gear (a concentrated
    // start would arbitrate every round to push, whose loss
    // compensation is union renormalization, not local re-sampling —
    // `recovered_samples` is a pull-gear counter).
    let start = Configuration::singletons(200);
    let plan = FaultPlan::none().with_seed(3).with_palette_rates(0.25, 0.0, 0.0);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus under palette loss");
    assert!(out.faults.palettes_dropped > 0);
    assert!(out.faults.recovered_samples > 0);
    assert_eq!(out.final_config.n(), 200);
    assert!(out.final_config.is_consensus());
}

#[test]
fn delayed_palettes_are_discarded_and_recovered() {
    // Singleton start for the same reason as above: the delayed-palette
    // re-sampling path only runs in the pull gear.
    let start = Configuration::singletons(200);
    let plan = FaultPlan::none().with_seed(3).with_palette_rates(0.0, 0.0, 0.3);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus under palette delay");
    assert!(out.faults.palettes_delayed > 0);
    assert!(out.faults.recovered_samples > 0);
    assert!(out.final_config.is_consensus());
}

#[test]
fn delayed_reports_resync_as_stragglers() {
    let start = Configuration::uniform(200, 8);
    let plan = FaultPlan::none().with_seed(9).with_report_rates(0.0, 0.0, 0.4).with_max_faulty(3);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus under report delay");
    assert!(out.faults.reports_delayed > 0);
    assert!(out.faults.straggler_resyncs > 0);
    assert!(out.faults.quorum_rounds > 0);
    assert!(out.final_config.is_consensus());
}

// ---------------------------------------------------------------------
// Crash-stop and rejoin.
// ---------------------------------------------------------------------

#[test]
fn crashed_shard_rejoins_from_snapshot_and_consensus_holds() {
    let start = Configuration::uniform(200, 8);
    let plan = FaultPlan::none()
        .with_crash(CrashSpec { shard: 2, crash_round: 3, rejoin_round: Some(7) })
        .with_max_faulty(1);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus after crash-rejoin");
    assert_eq!(out.faults.rejoins, 1);
    assert_eq!(out.faults.crash_rounds, 4); // rounds 3,4,5,6
    assert!(out.faults.quorum_rounds >= 4);
    assert_eq!(out.final_config.n(), 200);
    assert!(out.final_config.is_consensus());
    assert!(out.consensus_round > 7);
}

#[test]
fn permanent_crash_within_tolerance_still_converges_honest_view() {
    // Shard 1 crashes forever; the honest survivors keep exchanging and
    // the coordinator declares consensus over the honest view only
    // after the frozen snapshot's colors die out of it — which cannot
    // happen while the crashed shard is counted, so permanent crashes
    // leave the merged view stuck at > 1 color and consensus is
    // declared only if the crashed shard's snapshot already agrees.
    // Use a horizon run and check degradation is bounded, not stuck.
    let start = Configuration::uniform(120, 4);
    let plan = FaultPlan::none()
        .with_crash(CrashSpec { shard: 1, crash_round: 2, rejoin_round: None })
        .with_max_faulty(1);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(3, 5).with_fault_plan(plan))
        .run_horizon(40);
    assert_eq!(out.faults.rejoins, 0);
    assert_eq!(out.faults.crash_rounds, 39); // rounds 2..=40
    assert!(out.faults.quorum_rounds >= 39);
    assert_eq!(out.final_config.n(), 120); // frozen snapshot keeps mass
    assert!(matches!(out.stop, StopReason::Consensus | StopReason::HorizonExhausted));
}

// ---------------------------------------------------------------------
// Quorum relaxation limits: below N − F fresh valid reports the
// coordinator aborts with a typed reason instead of folding a minority.
// ---------------------------------------------------------------------

#[test]
fn total_report_loss_aborts_with_too_many_faults() {
    let start = Configuration::uniform(80, 4);
    let plan = FaultPlan::none().with_seed(1).with_report_rates(1.0, 0.0, 0.0);
    let err = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 2).with_fault_plan(plan))
        .run_to_consensus(1_000)
        .expect_err("no quorum is reachable");
    assert_eq!(err.stop, StopReason::TooManyFaults);
    assert_eq!(err.rounds_run, 1);
    assert!(err.faults.reports_dropped >= 4);
    assert_eq!(err.consensus_round, None);
}

#[test]
fn crashes_beyond_tolerance_abort() {
    let start = Configuration::uniform(80, 4);
    let plan = FaultPlan::none()
        .with_crash(CrashSpec { shard: 0, crash_round: 2, rejoin_round: None })
        .with_crash(CrashSpec { shard: 1, crash_round: 2, rejoin_round: None })
        .with_max_faulty(1);
    let err = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 2).with_fault_plan(plan))
        .run_to_consensus(1_000)
        .expect_err("two of four crashed, one tolerated");
    assert_eq!(err.stop, StopReason::TooManyFaults);
    assert_eq!(err.rounds_run, 2);
}

// ---------------------------------------------------------------------
// Byzantine shards.
// ---------------------------------------------------------------------

#[test]
fn plausible_byzantine_reports_are_tolerated_by_quorum() {
    let start = Configuration::uniform(200, 8);
    let plan = FaultPlan::none()
        .with_byzantine(ByzantineSpec { shard: 1, budget: 3, kind: CorruptionKind::Plausible })
        .with_max_faulty(1);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus over the honest view");
    assert!(out.faults.byzantine_reports > 0);
    // Mass-preserving lies pass validation: they distort the merged
    // *measurement*, not the quorum.
    assert_eq!(out.faults.rejected_reports, 0);
    assert_eq!(out.final_config.n(), 200);
}

#[test]
fn mass_violating_byzantine_reports_are_rejected() {
    let start = Configuration::uniform(200, 8);
    let plan = FaultPlan::none()
        .with_byzantine(ByzantineSpec { shard: 1, budget: 7, kind: CorruptionKind::Inflate })
        .with_max_faulty(1);
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42).with_fault_plan(plan))
        .run_to_consensus(1_000_000)
        .expect("consensus over the honest view");
    assert!(out.faults.byzantine_reports > 0);
    assert!(out.faults.rejected_reports > 0);
    // Every fresh report from the liar is rejected, so every round runs
    // below full attendance on the relaxed quorum.
    assert!(out.faults.quorum_rounds >= out.consensus_round);
}

// ---------------------------------------------------------------------
// Property tests: randomized plans preserve the layer's invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Duplicated + reordered delivery (receivers may see the two
    /// copies interleaved with other shards' traffic in any order)
    /// deduplicates to the exact fault-free trajectory.
    #[test]
    fn dup_only_plans_are_trajectory_invisible(
        seed in 0u64..200,
        fault_seed in 0u64..200,
        shards in 2usize..5,
        pal_dup in 0.2f64..1.0,
        rep_dup in 0.2f64..1.0,
    ) {
        let start = Configuration::uniform(120, 6);
        let free = Cluster::new(ThreeMajority, &start, ClusterConfig::new(shards, seed))
            .run_horizon(10);
        let plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_palette_rates(0.0, pal_dup, 0.0)
            .with_report_rates(0.0, rep_dup, 0.0);
        let faulty = Cluster::new(
            ThreeMajority,
            &start,
            ClusterConfig::new(shards, seed).with_fault_plan(plan),
        )
        .run_horizon(10);
        prop_assert_eq!(trace_digest(&faulty.trace), trace_digest(&free.trace));
        prop_assert_eq!(&faulty.final_config, &free.final_config);
        prop_assert_eq!(faulty.consensus_round, free.consensus_round);
        prop_assert!(faulty.total_messages >= free.total_messages);
        prop_assert_eq!(faulty.faults.recovered_samples, 0);
    }

    /// Crash-rejoin conserves mass and passes the shard-side dense
    /// recount integrity check (asserted inside `Worker::rejoin`, which
    /// runs in-process here).
    #[test]
    fn crash_rejoin_preserves_mass_and_integrity(
        seed in 0u64..200,
        shard in 0usize..4,
        crash_round in 2u64..6,
        outage in 1u64..5,
    ) {
        let start = Configuration::uniform(160, 8);
        let plan = FaultPlan::none()
            .with_crash(CrashSpec {
                shard,
                crash_round,
                rejoin_round: Some(crash_round + outage),
            })
            .with_max_faulty(1);
        let out = Cluster::new(
            ThreeMajority,
            &start,
            ClusterConfig::new(4, seed).with_fault_plan(plan),
        )
        .run_to_consensus(1_000_000)
        .expect("consensus after rejoin");
        prop_assert_eq!(out.faults.rejoins, 1);
        prop_assert_eq!(out.faults.crash_rounds, outage);
        prop_assert_eq!(out.final_config.n(), 160);
        prop_assert!(out.final_config.is_consensus());
    }

    /// Mixed lossy plans within tolerance either converge or abort with
    /// the typed reason — never deadlock, never lose mass.
    #[test]
    fn mixed_faults_degrade_gracefully(
        seed in 0u64..100,
        fault_seed in 0u64..100,
    ) {
        let start = Configuration::uniform(160, 8);
        let plan = FaultPlan::none()
            .with_seed(fault_seed)
            .with_palette_rates(0.1, 0.1, 0.1)
            .with_report_rates(0.05, 0.05, 0.05)
            .with_max_faulty(3);
        let result = Cluster::new(
            ThreeMajority,
            &start,
            ClusterConfig::new(4, seed).with_fault_plan(plan),
        )
        .run_to_consensus(2_000);
        match result {
            Ok(out) => {
                prop_assert!(out.final_config.is_consensus());
                prop_assert_eq!(out.final_config.n(), 160);
            }
            Err(out) => {
                prop_assert!(matches!(
                    out.stop,
                    StopReason::TooManyFaults | StopReason::HorizonExhausted
                ));
                prop_assert_eq!(out.final_config.n(), 160);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Plan preconditions.
// ---------------------------------------------------------------------

#[test]
#[should_panic(expected = "batched wire")]
fn active_plans_reject_per_entry_wire() {
    let start = Configuration::uniform(40, 4);
    let plan = FaultPlan::none().with_palette_rates(0.1, 0.0, 0.0);
    let config = ClusterConfig::new(2, 1).with_wire_mode(WireMode::PerEntry).with_fault_plan(plan);
    let _ = Cluster::new(ThreeMajority, &start, config);
}

#[test]
fn fault_kind_classification_is_exposed() {
    // Smoke-check the public classification API the shards and
    // coordinator share.
    let plan = FaultPlan::none().with_seed(7).with_palette_rates(0.3, 0.3, 0.3);
    let mut seen = [false; 4];
    for round in 1..=50u64 {
        for (from, to) in [(0usize, 1usize), (1, 0), (0, 2), (2, 1)] {
            match plan.palette_fault(round, from, to) {
                None => seen[0] = true,
                Some(FaultKind::Drop) => seen[1] = true,
                Some(FaultKind::Duplicate) => seen[2] = true,
                Some(FaultKind::Delay) => seen[3] = true,
            }
        }
    }
    assert!(seen.iter().all(|&b| b), "all fault kinds drawn at 30% rates over 200 trials");
}
