//! Socket-backend integration: a fleet of shard *processes* over Unix
//! domain sockets (TCP smoke-tested where the sandbox permits) must
//! replay the channel backend's trajectory byte-for-byte per seed —
//! the RNG streams and protocol logic live in shard code generic over
//! the transport, and the codec consumes no randomness — and a peer
//! vanishing mid-run must abort with a typed
//! [`StopReason::TransportLost`], never deadlock.

use std::path::PathBuf;

use symbreak_core::rules::{LazyVoter, ThreeMajority, Voter};
use symbreak_core::Configuration;
use symbreak_runtime::{
    Cluster, ClusterConfig, FaultPlan, ReportMode, ShardRepr, SocketConfig, StopReason,
    TransportAddr,
};

/// The worker binary Cargo built alongside this test.
fn worker() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_symbreak_shard_worker"))
}

fn unix_config() -> SocketConfig {
    SocketConfig { worker: Some(worker()), ..SocketConfig::default() }
}

fn trace_digest(trace: &symbreak_sim::trace::Trace) -> u64 {
    let mut acc = 0u64;
    for r in trace.rounds() {
        acc = acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(r.round)
            .wrapping_add((r.num_colors as u64) << 20)
            .wrapping_add(r.max_support << 40)
            .wrapping_add(r.bias);
    }
    acc
}

// ---------------------------------------------------------------------
// Seed-exact parity with the channel backend.
// ---------------------------------------------------------------------

#[test]
fn socket_fleet_replays_channel_trajectory_condensed() {
    let start = Configuration::uniform(400, 8);
    let config = || ClusterConfig::new(4, 42);
    let channel = Cluster::new(ThreeMajority, &start, config()).run_horizon(25);
    let socket =
        Cluster::new(ThreeMajority, &start, config()).run_horizon_socket(25, &unix_config());
    assert_eq!(trace_digest(&socket.trace), trace_digest(&channel.trace));
    assert_eq!(socket.final_config, channel.final_config);
    assert_eq!(socket.consensus_round, channel.consensus_round);
    assert_eq!(socket.total_messages, channel.total_messages);
    assert_eq!(socket.report_entries, channel.report_entries);
    // The tentpole parity claim: the channel backend's counted frame
    // lengths equal the socket backend's actually-written bytes.
    assert_eq!(socket.wire_bytes, channel.wire_bytes);
    assert_eq!(socket.faults.bytes_sent, channel.faults.bytes_sent);
    assert_eq!(socket.faults.bytes_received, channel.faults.bytes_received);
    assert!(socket.wire_bytes > 0);
}

#[test]
fn socket_fleet_replays_channel_trajectory_agents_delta() {
    // Agent-backed shards + the delta control plane: exercises Rejoin-
    // free sparse/delta arbitration and per-agent init expansion in the
    // worker.
    let start = Configuration::singletons(300);
    let config = || {
        ClusterConfig::new(3, 7)
            .with_shard_repr(ShardRepr::Agents)
            .with_report_mode(ReportMode::Delta)
    };
    let channel = Cluster::new(Voter, &start, config()).run_horizon(20);
    let socket = Cluster::new(Voter, &start, config()).run_horizon_socket(20, &unix_config());
    assert_eq!(trace_digest(&socket.trace), trace_digest(&channel.trace));
    assert_eq!(socket.total_messages, channel.total_messages);
    assert_eq!(socket.wire_bytes, channel.wire_bytes);
}

#[test]
fn socket_fleet_runs_parameterized_rules_to_consensus() {
    // A rule with a serialized parameter (LazyVoter's activity) crosses
    // the init frame intact and reaches consensus over sockets.
    let start = Configuration::uniform(200, 4);
    let config = ClusterConfig::new(2, 11);
    let out = Cluster::new(LazyVoter::new(0.5), &start, config)
        .run_to_consensus_socket(100_000, &unix_config())
        .expect("consensus over sockets");
    assert!(out.final_config.is_consensus());
    assert_eq!(out.final_config.n(), 200);
}

#[test]
fn socket_fleet_survives_fault_plan() {
    // The round-tag parking and quorum machinery over real sockets:
    // drop/dup/delay palettes and reports, same trajectory as channels.
    let start = Configuration::uniform(240, 8);
    let plan = FaultPlan::none()
        .with_seed(5)
        .with_palette_rates(0.1, 0.1, 0.1)
        .with_report_rates(0.05, 0.05, 0.05)
        .with_max_faulty(3);
    let config = || ClusterConfig::new(4, 13).with_fault_plan(plan.clone());
    let channel = Cluster::new(ThreeMajority, &start, config()).run_horizon(15);
    let socket =
        Cluster::new(ThreeMajority, &start, config()).run_horizon_socket(15, &unix_config());
    assert_eq!(trace_digest(&socket.trace), trace_digest(&channel.trace));
    assert_eq!(socket.total_messages, channel.total_messages);
    assert_eq!(socket.stop, channel.stop);
    // The fault counters proper tally identically (stateless shared
    // hashes). The byte counters are *nearly* identical: under the
    // relaxed barrier a next-round message can race into this round's
    // receive loop in either backend, and when the sampled cumulative
    // crosses a varint length boundary the report's own frame grows a
    // byte — so allow a few bytes of slack instead of exact equality
    // (which the inert-plan tests above do pin).
    let mut s = socket.faults;
    let mut c = channel.faults;
    let sent_gap = s.bytes_sent.abs_diff(c.bytes_sent);
    let recv_gap = s.bytes_received.abs_diff(c.bytes_received);
    assert!(sent_gap <= 16, "sent {} vs {}", s.bytes_sent, c.bytes_sent);
    assert!(recv_gap <= 16, "received {} vs {}", s.bytes_received, c.bytes_received);
    s.bytes_sent = 0;
    s.bytes_received = 0;
    c.bytes_sent = 0;
    c.bytes_received = 0;
    assert_eq!(s, c);
}

// ---------------------------------------------------------------------
// Hang-free disconnect.
// ---------------------------------------------------------------------

#[test]
fn killed_worker_aborts_with_transport_lost() {
    // Shard 1's worker self-terminates at round 3 (before exchanging):
    // the EOF cascades through its peers and the coordinator, and the
    // run aborts with the typed reason instead of deadlocking.
    let start = Configuration::uniform(200, 8);
    let cfg = SocketConfig { kill: Some((1, 3)), ..unix_config() };
    let out = Cluster::new(ThreeMajority, &start, ClusterConfig::new(4, 42))
        .run_horizon_socket(1_000, &cfg);
    assert_eq!(out.stop, StopReason::TransportLost);
    assert_eq!(out.consensus_round, None);
    assert!(out.rounds_run >= 2, "rounds before the kill completed normally");
    assert!(out.rounds_run < 1_000, "the horizon was cut short");
}

#[test]
fn killed_worker_round_one_aborts_without_progress() {
    let start = Configuration::uniform(120, 4);
    let cfg = SocketConfig { kill: Some((0, 1)), ..unix_config() };
    let out = Cluster::new(Voter, &start, ClusterConfig::new(2, 3)).run_horizon_socket(1_000, &cfg);
    assert_eq!(out.stop, StopReason::TransportLost);
    assert!(out.trace.rounds().len() <= 1);
}

// ---------------------------------------------------------------------
// TCP smoke (skipped where the sandbox forbids loopback binds).
// ---------------------------------------------------------------------

#[test]
fn tcp_fleet_matches_channel_when_loopback_is_permitted() {
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("skipping TCP transport smoke: loopback bind not permitted in this sandbox");
        return;
    }
    let start = Configuration::uniform(200, 8);
    let config = || ClusterConfig::new(3, 9);
    let channel = Cluster::new(ThreeMajority, &start, config()).run_horizon(10);
    let cfg =
        SocketConfig { addr: Some(TransportAddr::Tcp("127.0.0.1:0".to_string())), ..unix_config() };
    let socket = Cluster::new(ThreeMajority, &start, config()).run_horizon_socket(10, &cfg);
    assert_eq!(trace_digest(&socket.trace), trace_digest(&channel.trace));
    assert_eq!(socket.wire_bytes, channel.wire_bytes);
}
