//! E7-style cross-validation of the sharded runtime against the engines:
//! the message-passing cluster must realize the same stochastic process
//! as the single-machine `VectorEngine` (the exact one-step law), so the
//! occupancy-aware wire format cannot silently change the process.
//!
//! Compares mean consensus times over paired independent trials for
//! Voter and 3-Majority, with a Welch-style tolerance on the difference
//! of means. Seeds are fixed, so the check is deterministic.

use symbreak_core::rules::{ThreeMajority, TwoMedian, Voter};
use symbreak_core::{
    run_to_consensus, Configuration, RunOptions, UpdateRule, VectorEngine, VectorStep,
};
use symbreak_runtime::{Cluster, ClusterConfig, ConsumeMode, WireMode};
use symbreak_sim::run_trials;
use symbreak_stats::Summary;

fn cluster_times<R>(rule: R, start: &Configuration, trials: u64, seed: u64) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    cluster_times_wire(rule, start, trials, seed, WireMode::default())
}

fn cluster_times_wire<R>(
    rule: R,
    start: &Configuration,
    trials: u64,
    seed: u64,
    wire: WireMode,
) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    cluster_times_consume(rule, start, trials, seed, wire, ConsumeMode::default())
}

fn cluster_times_consume<R>(
    rule: R,
    start: &Configuration,
    trials: u64,
    seed: u64,
    wire: WireMode,
    consume: ConsumeMode,
) -> Vec<u64>
where
    R: UpdateRule + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let cfg = ClusterConfig::new(3, s).with_wire_mode(wire).with_consume_mode(consume);
        let cluster = Cluster::new(rule.clone(), &start, cfg);
        cluster.run_to_consensus(10_000_000).expect("consensus").consensus_round
    })
}

fn engine_times<R>(rule: R, start: &Configuration, trials: u64, seed: u64) -> Vec<u64>
where
    R: VectorStep + Clone + Send + Sync,
{
    let start = start.clone();
    run_trials(trials, seed, move |_t, s| {
        let mut e = VectorEngine::new(rule.clone(), start.clone(), s);
        run_to_consensus(&mut e, &RunOptions { max_rounds: u64::MAX, record_trace: false })
            .consensus_round
            .expect("consensus")
    })
}

/// Asserts the two mean consensus times agree within a Welch-style
/// 5-sigma band on the difference of means.
fn assert_means_agree(name: &str, cluster: &[u64], engine: &[u64]) {
    let c = Summary::of_counts(cluster);
    let e = Summary::of_counts(engine);
    let tol = 5.0 * (c.std_err().powi(2) + e.std_err().powi(2)).sqrt() + 0.5;
    assert!(
        (c.mean() - e.mean()).abs() < tol,
        "{name}: cluster mean {} vs engine mean {} (tol {tol})",
        c.mean(),
        e.mean()
    );
}

#[test]
fn cluster_matches_vector_engine_three_majority() {
    let start = Configuration::uniform(256, 8);
    let trials = 48;
    let cluster = cluster_times(ThreeMajority, &start, trials, 7100);
    let engine = engine_times(ThreeMajority, &start, trials, 7200);
    assert_means_agree("3-Majority", &cluster, &engine);
}

#[test]
fn cluster_matches_vector_engine_voter() {
    let start = Configuration::uniform(128, 8);
    let trials = 48;
    let cluster = cluster_times(Voter, &start, trials, 7300);
    let engine = engine_times(Voter, &start, trials, 7400);
    assert_means_agree("Voter", &cluster, &engine);
}

#[test]
fn cluster_matches_vector_engine_from_singleton_start() {
    // The k = n start is the regime the sparse wire format exists for;
    // pin the law there too.
    let start = Configuration::singletons(96);
    let trials = 48;
    let cluster = cluster_times(ThreeMajority, &start, trials, 7500);
    let engine = engine_times(ThreeMajority, &start, trials, 7600);
    assert_means_agree("3-Majority singletons", &cluster, &engine);
}

#[test]
fn batched_wire_matches_per_entry_wire() {
    // The two wire modes consume randomness differently, so they cannot
    // be compared pathwise — but batched mode is an *exact* aggregation
    // of Uniform Pull (multinomial split → shard-side multinomial →
    // uniform rearrangement), so the realized process law must be
    // identical. Compare mean consensus times over independent trials.
    let start = Configuration::uniform(192, 8);
    let trials = 48;
    let batched = cluster_times_wire(ThreeMajority, &start, trials, 7700, WireMode::Batched);
    let per_entry = cluster_times_wire(ThreeMajority, &start, trials, 7800, WireMode::PerEntry);
    assert_means_agree("batched vs per-entry", &batched, &per_entry);
}

#[test]
fn native_multiset_consumption_matches_ordered_dealing() {
    // 3-Majority on the batched wire: ConsumeMode::Native takes the
    // received palettes as histogram splits (hypergeometric windows in
    // the pull gear, Mult(h, union) windows in the push gear, ordered
    // fallback while diverse); ConsumeMode::Ordered is the PR 4
    // Fisher–Yates dealing. Both are exactly Uniform Pull, with
    // different randomness consumption — compare the consensus-time law.
    let start = Configuration::uniform(192, 8);
    let trials = 48;
    let native = cluster_times_consume(
        ThreeMajority,
        &start,
        trials,
        8100,
        WireMode::Batched,
        ConsumeMode::Native,
    );
    let ordered = cluster_times_consume(
        ThreeMajority,
        &start,
        trials,
        8200,
        WireMode::Batched,
        ConsumeMode::Ordered,
    );
    assert_means_agree("3-Majority native vs ordered", &native, &ordered);
}

#[test]
fn native_multiset_consumption_matches_ordered_from_singleton_start() {
    // The k = n start walks the diverse fallback first, then the split
    // paths as occupancy collapses — the full dispatch lifecycle.
    let start = Configuration::singletons(96);
    let trials = 48;
    let native = cluster_times_consume(
        ThreeMajority,
        &start,
        trials,
        8300,
        WireMode::Batched,
        ConsumeMode::Native,
    );
    let ordered = cluster_times_consume(
        ThreeMajority,
        &start,
        trials,
        8400,
        WireMode::Batched,
        ConsumeMode::Ordered,
    );
    assert_means_agree("3-Majority singletons native vs ordered", &native, &ordered);
}

#[test]
fn native_single_peer_consumption_matches_ordered_for_voter() {
    // Voter's native wire path writes the dealt multiset straight into
    // the opinion vector (no Fisher–Yates, no sample buffer); the law
    // must match the ordered dealing and the per-entry baseline.
    let start = Configuration::singletons(64);
    let trials = 48;
    let native =
        cluster_times_consume(Voter, &start, trials, 8500, WireMode::Batched, ConsumeMode::Native);
    let ordered =
        cluster_times_consume(Voter, &start, trials, 8600, WireMode::Batched, ConsumeMode::Ordered);
    let per_entry =
        cluster_times_consume(Voter, &start, trials, 8700, WireMode::PerEntry, ConsumeMode::Native);
    assert_means_agree("Voter native vs ordered", &native, &ordered);
    assert_means_agree("Voter native vs per-entry", &native, &per_entry);
}

#[test]
fn native_undecided_consumption_matches_ordered() {
    // The undecided dynamics is the h = 1 multiset rule: its native
    // wire path walks windows only when the pool collapses to one
    // category (including the all-UNDECIDED rounds, where the window
    // carries the UNDECIDED pseudo-opinion through update_from_counts)
    // and deals ordered otherwise — pin the whole lifecycle's law.
    use symbreak_core::rules::UndecidedDynamics;
    let start = Configuration::from_counts(vec![70, 30]);
    let trials = 48;
    let native = cluster_times_consume(
        UndecidedDynamics,
        &start,
        trials,
        9100,
        WireMode::Batched,
        ConsumeMode::Native,
    );
    let ordered = cluster_times_consume(
        UndecidedDynamics,
        &start,
        trials,
        9200,
        WireMode::Batched,
        ConsumeMode::Ordered,
    );
    assert_means_agree("Undecided native vs ordered", &native, &ordered);
}

#[test]
fn native_two_median_cluster_matches_vector_engine() {
    // 2-Median now runs multiset-native on the wire; pin it against the
    // exact one-step law (its own-state dependence makes it the rule
    // most sensitive to a mis-dealt window).
    let start = Configuration::from_counts(vec![40, 20, 30, 38]);
    let trials = 48;
    let cluster = cluster_times(TwoMedian, &start, trials, 8800);
    let engine = engine_times(TwoMedian, &start, trials, 8900);
    assert_means_agree("2-Median native cluster", &cluster, &engine);
}

#[test]
fn batched_wire_matches_per_entry_wire_from_singleton_start() {
    // Voter from k = n singletons: h = 1, long trajectories, maximal
    // color diversity — the palette/shuffle path with the fattest
    // histograms.
    let start = Configuration::singletons(64);
    let trials = 48;
    let batched = cluster_times_wire(Voter, &start, trials, 7900, WireMode::Batched);
    let per_entry = cluster_times_wire(Voter, &start, trials, 8000, WireMode::PerEntry);
    assert_means_agree("Voter batched vs per-entry", &batched, &per_entry);
}
