//! Phase decomposition of Theorem 4's proof.
//!
//! The paper's analysis splits the 3-Majority run in two phases:
//!
//! * **Phase 1** — from up to `n` colors down to `n^{1/4} log^{1/8} n`
//!   colors, bounded via the Voter domination (Lemma 2 + Lemma 3) by
//!   `O(n^{3/4} log^{7/8} n)` rounds;
//! * **Phase 2** — from `n^{1/4} log^{1/8} n` colors to consensus, bounded
//!   via \[BCN+16, Theorem 3.1\] (Theorem 8) by the same order.
//!
//! [`measure_phases`] instruments a run with the exact split point the
//! proof uses, so the harness can check that *both* phases respect their
//! bounds (and observe which one dominates in practice).

use crate::engine::Engine;
use crate::theory::phase_split_colors;

/// Measured phase durations of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimes {
    /// The split point used (number of colors ending Phase 1).
    pub split_colors: u64,
    /// Rounds to reduce the colors to the split point.
    pub phase1_rounds: u64,
    /// Rounds from the split point to consensus.
    pub phase2_rounds: u64,
}

impl PhaseTimes {
    /// Total rounds to consensus.
    pub fn total(&self) -> u64 {
        self.phase1_rounds + self.phase2_rounds
    }
}

/// Runs `engine` to consensus, measuring the Theorem-4 phase split for
/// population size `n`. Returns `None` if `max_rounds` elapses first.
pub fn measure_phases(engine: &mut dyn Engine, n: u64, max_rounds: u64) -> Option<PhaseTimes> {
    let split = phase_split_colors(n);
    let start = engine.round();
    // Phase 1: until at most `split` colors remain.
    while engine.num_colors() as u64 > split {
        if engine.round() - start >= max_rounds {
            return None;
        }
        engine.step();
    }
    let phase1_rounds = engine.round() - start;
    // Phase 2: until consensus.
    while !engine.is_consensus() {
        if engine.round() - start >= max_rounds {
            return None;
        }
        engine.step();
    }
    Some(PhaseTimes {
        split_colors: split,
        phase1_rounds,
        phase2_rounds: engine.round() - start - phase1_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::engine::VectorEngine;
    use crate::rules::ThreeMajority;
    use crate::theory::theorem4_bound;

    #[test]
    fn phases_compose_to_consensus_time() {
        // Phase 2 can legitimately be empty on trajectories that crash
        // through the split point straight to consensus, so require a
        // positive phase 2 on at least one of a few seeds rather than
        // pinning one realized trajectory.
        let n = 4096u64;
        let mut saw_positive_phase2 = false;
        for seed in 1..=3 {
            let start = Configuration::singletons(n);
            let mut e = VectorEngine::new(ThreeMajority, start, seed).with_compaction();
            let phases = measure_phases(&mut e, n, 1_000_000).expect("consensus");
            assert!(phases.phase1_rounds > 0);
            assert_eq!(phases.total(), e.round());
            assert!(e.is_consensus());
            saw_positive_phase2 |= phases.phase2_rounds > 0;
        }
        assert!(saw_positive_phase2, "every seed ended phase 2 instantly");
    }

    #[test]
    fn both_phases_below_theorem4_bound() {
        let n = 2048u64;
        for seed in 0..5 {
            let start = Configuration::singletons(n);
            let mut e = VectorEngine::new(ThreeMajority, start, seed).with_compaction();
            let phases = measure_phases(&mut e, n, 1_000_000).expect("consensus");
            let bound = theorem4_bound(n);
            assert!((phases.phase1_rounds as f64) < bound, "phase 1 exceeded the bound");
            assert!((phases.phase2_rounds as f64) < bound, "phase 2 exceeded the bound");
        }
    }

    #[test]
    fn starting_below_the_split_makes_phase1_zero() {
        let n = 4096u64;
        // split ≈ 11 colors at n = 4096; start from 4.
        let start = Configuration::uniform(n, 4);
        let mut e = VectorEngine::new(ThreeMajority, start, 3).with_compaction();
        let phases = measure_phases(&mut e, n, 1_000_000).expect("consensus");
        assert_eq!(phases.phase1_rounds, 0);
        assert!(phases.phase2_rounds > 0);
    }

    #[test]
    fn cap_returns_none() {
        let n = 1u64 << 14;
        let start = Configuration::singletons(n);
        let mut e = VectorEngine::new(ThreeMajority, start, 4).with_compaction();
        assert_eq!(measure_phases(&mut e, n, 1), None);
    }
}
