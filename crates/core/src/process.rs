//! Process abstractions: anonymous consensus processes (Definition 1),
//! agent-level update rules, and expected one-step behaviour.
//!
//! The paper's key structural observation is that for an *AC-process* the
//! one-step law is multinomial: `P(c) ∼ Mult(n, α(c))`. Processes whose
//! update depends on the updating node's own opinion — notably 2-Choices —
//! are **not** AC-processes; they still implement [`UpdateRule`] (the
//! agent-level semantics) and [`ExpectedUpdate`] (the expectation, which
//! exists for every process), but not [`AcProcess`].

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;

/// An anonymous consensus process `P_α` (Definition 1): each node
/// independently adopts opinion `i` with probability `α_i(c)`.
pub trait AcProcess {
    /// The process function `α : C → [0,1]^k`, returned over the `k`
    /// slots of `c`. Must be a probability vector.
    fn alpha(&self, c: &Configuration) -> Vec<f64>;

    /// Writes `α` restricted to the occupied slots of `c` into `out`
    /// (cleared first), aligned with [`Configuration::occupied`].
    ///
    /// Every process in the paper has `α_i(c) = 0` whenever `c_i = 0`
    /// (dead colors stay dead), so the restriction loses nothing.
    /// Processes whose `α` has a per-slot closed form override this to be
    /// allocation-free; the default gathers from [`AcProcess::alpha`].
    fn alpha_into(&self, c: &Configuration, out: &mut Vec<f64>) {
        let dense = self.alpha(c);
        out.clear();
        out.extend(c.occupied().iter().map(|&i| dense[i as usize]));
    }
}

/// Agent-level (per-node) update semantics under Uniform Pull.
///
/// Every process in the paper is expressible this way, including non-AC
/// processes whose outcome depends on the node's own opinion.
pub trait UpdateRule {
    /// Short display name, e.g. `"3-Majority"`.
    fn name(&self) -> &'static str;

    /// Number of uniform samples each node pulls per round.
    fn sample_count(&self) -> usize;

    /// Computes the node's next opinion from its own opinion and the pulled
    /// samples (`samples.len() == self.sample_count()`).
    ///
    /// The extra `rng` supports rules with internal randomness (e.g.
    /// 3-Majority's random tie-break). Implementations must not assume
    /// anything about node identity — only opinions are visible.
    fn update(&self, own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion;
}

impl UpdateRule for Box<dyn UpdateRule> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn sample_count(&self) -> usize {
        (**self).sample_count()
    }

    fn update(&self, own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion {
        (**self).update(own, samples, rng)
    }
}

/// The expected next configuration, as fractions.
///
/// For an AC-process this equals `α(c)`; for 2-Choices it is computed
/// directly. Footnote 2 of the paper: 2-Choices and 3-Majority have the
/// *same* expectation `x_i² + (1 − Σ x_j²)·x_i`.
pub trait ExpectedUpdate {
    /// Expected fractions after one round from configuration `c`.
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64>;
}

/// Blanket: every AC-process's expectation is its process function.
impl<P: AcProcess> ExpectedUpdate for P {
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64> {
        self.alpha(c)
    }
}

/// A process with a vectorized one-step sampler.
///
/// For AC-processes this is `Mult(n, α(c))`; 2-Choices and the undecided
/// dynamics have bespoke decompositions. The vector step must be
/// distributionally identical to one synchronous agent-level round — the
/// test-suite cross-validates this (Experiment E7).
///
/// [`VectorStep::vector_step`] allocates a fresh configuration per round
/// (`O(k)` over all slots); [`VectorStep::vector_step_into`] advances a
/// configuration in place, and the rules in this crate override it with
/// allocation-free `O(#occupied)` samplers — with identical draws for the
/// same RNG state, which the sparse-equivalence tests pin down.
pub trait VectorStep {
    /// Samples the next configuration from `c`.
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration;

    /// Advances `c` to the next configuration in place.
    ///
    /// The default shim routes through the allocating
    /// [`VectorStep::vector_step`]; implementations override it to step
    /// without touching empty slots or the allocator.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        *c = self.vector_step(c, rng);
    }
}

/// Reusable per-thread buffers for allocation-free sparse steps.
///
/// A rule's `vector_step_into` takes `&self` and `&mut Configuration`,
/// so per-step working memory cannot live in either; it lives here,
/// borrowed for the duration of one step via [`with_step_scratch`].
#[derive(Debug, Default)]
pub(crate) struct StepScratch {
    /// Old per-occupied-slot counts (snapshot taken before rewriting).
    pub counts: Vec<u64>,
    /// Secondary count buffer (e.g. the undecided dynamics' adoption
    /// draw).
    pub aux_counts: Vec<u64>,
    /// Per-occupied-slot weights for the one-step sampler.
    pub weights: Vec<f64>,
    /// Secondary float buffer (e.g. 2-Median's CDF over occupied values).
    pub aux: Vec<f64>,
}

/// Runs `f` with this thread's step scratch. Re-entrant calls (a rule
/// stepping inside another rule's scratch closure) fall back to fresh
/// buffers rather than panicking.
pub(crate) fn with_step_scratch<T>(f: impl FnOnce(&mut StepScratch) -> T) -> T {
    thread_local! {
        static SCRATCH: std::cell::RefCell<StepScratch> =
            std::cell::RefCell::new(StepScratch::default());
    }
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut StepScratch::default()),
    })
}

/// The shared sparse one-step sampler for AC-processes: draws
/// `P(c) ∼ Mult(n, α(c))` over the occupied slots only, in place.
pub(crate) fn ac_vector_step_into<P: AcProcess + ?Sized>(
    process: &P,
    c: &mut Configuration,
    rng: &mut dyn RngCore,
) {
    let n = c.n();
    with_step_scratch(|s| {
        process.alpha_into(c, &mut s.weights);
        c.rewrite_occupied(|occ, counts| {
            for &i in occ {
                counts[i as usize] = 0;
            }
            symbreak_sim::dist::sample_multinomial_sparse_into(n, &s.weights, occ, rng, counts);
        });
    });
    debug_assert_eq!(c.n(), n, "AC step must preserve the population");
}

/// Validates that `alpha` is a probability vector (panics otherwise).
/// Used in debug assertions and tests.
pub fn assert_probability_vector(alpha: &[f64]) {
    let mut total = 0.0;
    for (i, &a) in alpha.iter().enumerate() {
        assert!(a.is_finite() && (-1e-12..=1.0 + 1e-9).contains(&a), "alpha[{i}] = {a} invalid");
        total += a;
    }
    assert!((total - 1.0).abs() < 1e-7, "alpha sums to {total}, expected 1");
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstantProcess;

    impl AcProcess for ConstantProcess {
        fn alpha(&self, c: &Configuration) -> Vec<f64> {
            let k = c.num_slots();
            vec![1.0 / k as f64; k]
        }
    }

    #[test]
    fn blanket_expected_update_for_ac() {
        let c = Configuration::uniform(10, 4);
        let p = ConstantProcess;
        assert_eq!(p.expected_fractions(&c), p.alpha(&c));
    }

    #[test]
    fn probability_vector_validation_accepts_valid() {
        assert_probability_vector(&[0.25, 0.75]);
        assert_probability_vector(&[1.0]);
        assert_probability_vector(&[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn probability_vector_validation_rejects_bad_sum() {
        assert_probability_vector(&[0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn probability_vector_validation_rejects_negative() {
        assert_probability_vector(&[-0.5, 1.5]);
    }
}
