//! Process abstractions: anonymous consensus processes (Definition 1),
//! agent-level update rules, and expected one-step behaviour.
//!
//! The paper's key structural observation is that for an *AC-process* the
//! one-step law is multinomial: `P(c) ∼ Mult(n, α(c))`. Processes whose
//! update depends on the updating node's own opinion — notably 2-Choices —
//! are **not** AC-processes; they still implement [`UpdateRule`] (the
//! agent-level semantics) and [`ExpectedUpdate`] (the expectation, which
//! exists for every process), but not [`AcProcess`].

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;

/// An anonymous consensus process `P_α` (Definition 1): each node
/// independently adopts opinion `i` with probability `α_i(c)`.
pub trait AcProcess {
    /// The process function `α : C → [0,1]^k`, returned over the `k`
    /// slots of `c`. Must be a probability vector.
    fn alpha(&self, c: &Configuration) -> Vec<f64>;

    /// Writes `α` restricted to the occupied slots of `c` into `out`
    /// (cleared first), aligned with [`Configuration::occupied`].
    ///
    /// Every process in the paper has `α_i(c) = 0` whenever `c_i = 0`
    /// (dead colors stay dead), so the restriction loses nothing.
    /// Processes whose `α` has a per-slot closed form override this to be
    /// allocation-free; the default gathers from [`AcProcess::alpha`].
    fn alpha_into(&self, c: &Configuration, out: &mut Vec<f64>) {
        let dense = self.alpha(c);
        out.clear();
        out.extend(c.occupied().iter().map(|&i| dense[i as usize]));
    }
}

/// What a rule actually reads of its per-round sample window — the
/// sample-consumption taxonomy the engine stack dispatches on.
///
/// `UpdateRule::update` hands every rule an *ordered* window, but most
/// rules consume strictly less, and every layer that materializes,
/// ships, or deals individual sample draws for them is doing wasted
/// per-draw work. The classification is a **contract**, not a hint:
/// engines are free to (and do) deliver the declared access form
/// through samplers that never materialize the window, so a rule that
/// over-declares would silently change the process law.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleAccess {
    /// Reads the ordered sample sequence (or interleaves own-state with
    /// sample positions, like 2-Choices' "first two agree" test). The
    /// engines must materialize a window distributed as i.i.d. Uniform
    /// Pull draws. The default, and always safe.
    #[default]
    OrderedWindow,
    /// Reads only the **multiset** of the window: the rule implements
    /// [`MultisetRule`] and engines may deliver per-node count vectors
    /// drawn by window-splitting samplers instead of dealt sample
    /// sequences (lawful because i.i.d. windows are exchangeable).
    Multiset,
    /// Adopts a single uniform peer's opinion, ignoring its own state:
    /// `update(own, [s], _) == s` for every `own` and `s`. Engines may
    /// skip sample materialization entirely and write the drawn opinion
    /// (or a lawful dealing of a drawn opinion *multiset*) straight
    /// into the node state.
    SinglePeer,
}

/// Agent-level (per-node) update semantics under Uniform Pull.
///
/// Every process in the paper is expressible this way, including non-AC
/// processes whose outcome depends on the node's own opinion.
pub trait UpdateRule {
    /// Short display name, e.g. `"3-Majority"`.
    fn name(&self) -> &'static str;

    /// Number of uniform samples each node pulls per round.
    fn sample_count(&self) -> usize;

    /// Computes the node's next opinion from its own opinion and the pulled
    /// samples (`samples.len() == self.sample_count()`).
    ///
    /// The extra `rng` supports rules with internal randomness (e.g.
    /// 3-Majority's random tie-break). Implementations must not assume
    /// anything about node identity — only opinions are visible.
    fn update(&self, own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion;

    /// How this rule consumes its window — see [`SampleAccess`].
    ///
    /// Rules declaring [`SampleAccess::Multiset`] must also override
    /// [`UpdateRule::as_multiset`]; the engines assert the pairing.
    fn sample_access(&self) -> SampleAccess {
        SampleAccess::OrderedWindow
    }

    /// The multiset entry point, for rules declaring
    /// [`SampleAccess::Multiset`]. Returns `None` otherwise (the
    /// default).
    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        None
    }
}

/// A rule whose update depends on the window only through its multiset.
///
/// This is the agent-level analogue of tracking configurations instead
/// of agents: collapsing a window to its histogram is lawful exactly
/// because i.i.d. windows are exchangeable, and it converts every layer
/// that delivers samples from per-draw to per-(node, distinct-color)
/// work. Implementations must agree **in law** with
/// [`UpdateRule::update`] over any window with the given histogram —
/// pinned for every rule in this crate by the exchangeability proptest
/// in `tests/multiset_law.rs`.
pub trait MultisetRule: UpdateRule {
    /// Computes the node's next opinion from its own opinion and the
    /// window's histogram: `counts` lists `(opinion, multiplicity)`
    /// pairs with distinct opinions (order unspecified) whose
    /// multiplicities sum to [`UpdateRule::sample_count`]. Entries may
    /// include [`Opinion::UNDECIDED`]
    /// (for the undecided-state dynamics).
    fn update_from_counts(
        &self,
        own: Opinion,
        counts: &[(Opinion, u32)],
        rng: &mut dyn RngCore,
    ) -> Opinion;

    /// One synchronous push-gear round over a *condensed* shard: every
    /// node draws an i.i.d. `Mult(h, θ)` window from the categorical
    /// with `values`/`weights` support and updates, but only the
    /// resulting opinion **multiset** is produced.
    ///
    /// `groups` lists the stepping population as `(own, count)` pairs
    /// with distinct opinions ascending; `values` are the distinct
    /// sample opinions, strictly ascending (so [`Opinion::UNDECIDED`],
    /// when present, is last), with positive `weights` aligned to them.
    /// Appends `(opinion, count)` pairs to `out` — entries may repeat;
    /// callers tally.
    ///
    /// Must agree in law with `count` independent
    /// [`MultisetRule::update_from_counts`] calls over i.i.d.
    /// `Mult(h, θ)` windows per group. The default realizes exactly
    /// that, one node at a time; rules with a closed-form aggregate law
    /// (3-Majority's Equation-2 multinomial, the undecided dynamics'
    /// binomial splits, 2-Median's CDF cascade) override it to run in
    /// `O(#values)` instead of `O(Σ counts · h)`.
    fn condensed_push_step(
        &self,
        groups: &[(Opinion, u64)],
        values: &[Opinion],
        weights: &[f64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "values must be ascending");
        let nodes: u64 = groups.iter().map(|&(_, c)| c).sum();
        if nodes == 0 {
            return;
        }
        let walk = symbreak_sim::dist::WindowMultinomial::new(weights, self.sample_count());
        let mut window: Vec<(Opinion, u32)> = Vec::with_capacity(self.sample_count());
        for &(own, count) in groups {
            for _ in 0..count {
                window.clear();
                walk.sample_window(rng, |j, x| {
                    window.push((values[j], x as u32));
                });
                let next = self.update_from_counts(own, &window, rng);
                match out.iter_mut().find(|e| e.0 == next) {
                    Some(e) => e.1 += 1,
                    None => out.push((next, 1)),
                }
            }
        }
    }

    /// Whether [`MultisetRule::update_from_counts`] ignores `own` — the
    /// rule is an AC-process at window level (3-Majority, h-Majority).
    ///
    /// Condensed pull consumers use this to collapse *all* opinion
    /// groups into one pooled block per round: when the outcome law
    /// doesn't depend on which group a window was dealt to, dealing
    /// per-group blocks first is wasted work, and one
    /// [`MultisetRule::condensed_window_step`] call over the whole pool
    /// realizes the identical law. Defaults to `false` (always safe).
    fn own_insensitive(&self) -> bool {
        false
    }

    /// One opinion group's share of a synchronous *pull*-gear round over
    /// a condensed shard — the without-replacement sibling of
    /// [`MultisetRule::condensed_push_step`]: `count` nodes of opinion
    /// `own` jointly consume `block`, the exact histogram of their
    /// `count·h` pooled sample draws, and only the resulting opinion
    /// **multiset** is produced.
    ///
    /// `values` are the distinct sample opinions, strictly ascending (so
    /// [`Opinion::UNDECIDED`], when present, is last), with `block`
    /// aligned to them; `block` sums to `count · h` and is destroyed by
    /// the call (left in an unspecified state). Appends
    /// `(opinion, count)` pairs to `out` — entries may repeat; callers
    /// tally.
    ///
    /// Must agree **in law** with dealing `block` into `count` uniform
    /// without-replacement `h`-windows ([`WindowSplitter`]'s
    /// multivariate-hypergeometric law) and applying
    /// [`MultisetRule::update_from_counts`] per window — the default
    /// realizes exactly that, one window at a time. Rules with an exact
    /// aggregate law override it to run in `O(#values)`-ish instead of
    /// `O(count · h)`, which is what makes condensed pull rounds as
    /// cheap as push rounds.
    ///
    /// [`WindowSplitter`]: symbreak_sim::dist::WindowSplitter
    fn condensed_window_step(
        &self,
        own: Opinion,
        count: u64,
        values: &[Opinion],
        block: &mut [u64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        condensed_window_step_by_dealing(self, own, count, values, block, rng, out);
    }
}

/// The reference realization of [`MultisetRule::condensed_window_step`]:
/// deal the pooled block into `count` uniform without-replacement
/// `h`-windows and update each — exact for every multiset rule, and the
/// law every aggregate override must match. Public so overrides can fall
/// back to it for parameters outside their closed form (h-Majority at
/// `h ≥ 4`) and so law tests can pin aggregate paths against it.
pub fn condensed_window_step_by_dealing<M: MultisetRule + ?Sized>(
    rule: &M,
    own: Opinion,
    count: u64,
    values: &[Opinion],
    block: &mut [u64],
    rng: &mut dyn RngCore,
    out: &mut Vec<(Opinion, u64)>,
) {
    debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "values must be ascending");
    debug_assert_eq!(values.len(), block.len(), "block must align with values");
    if count == 0 {
        return;
    }
    let h = rule.sample_count() as u64;
    debug_assert_eq!(block.iter().sum::<u64>(), count * h, "block mass must be count·h");
    let mut splitter = symbreak_sim::dist::WindowSplitter::new(block);
    let mut window: Vec<(Opinion, u32)> = Vec::with_capacity(h as usize);
    for _ in 0..count {
        window.clear();
        splitter.draw_window(h, rng, |j, x| window.push((values[j], x as u32)));
        let next = rule.update_from_counts(own, &window, rng);
        match out.iter_mut().find(|e| e.0 == next) {
            Some(e) => e.1 += 1,
            None => out.push((next, 1)),
        }
    }
}

impl UpdateRule for Box<dyn UpdateRule> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn sample_count(&self) -> usize {
        (**self).sample_count()
    }

    fn update(&self, own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion {
        (**self).update(own, samples, rng)
    }

    fn sample_access(&self) -> SampleAccess {
        (**self).sample_access()
    }

    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        (**self).as_multiset()
    }
}

/// The expected next configuration, as fractions.
///
/// For an AC-process this equals `α(c)`; for 2-Choices it is computed
/// directly. Footnote 2 of the paper: 2-Choices and 3-Majority have the
/// *same* expectation `x_i² + (1 − Σ x_j²)·x_i`.
pub trait ExpectedUpdate {
    /// Expected fractions after one round from configuration `c`.
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64>;
}

/// Blanket: every AC-process's expectation is its process function.
impl<P: AcProcess> ExpectedUpdate for P {
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64> {
        self.alpha(c)
    }
}

/// A process with a vectorized one-step sampler.
///
/// For AC-processes this is `Mult(n, α(c))`; 2-Choices and the undecided
/// dynamics have bespoke decompositions. The vector step must be
/// distributionally identical to one synchronous agent-level round — the
/// test-suite cross-validates this (Experiment E7).
///
/// [`VectorStep::vector_step`] allocates a fresh configuration per round
/// (`O(k)` over all slots); [`VectorStep::vector_step_into`] advances a
/// configuration in place, and the rules in this crate override it with
/// allocation-free `O(#occupied)` samplers — with identical draws for the
/// same RNG state, which the sparse-equivalence tests pin down.
pub trait VectorStep {
    /// Samples the next configuration from `c`.
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration;

    /// Advances `c` to the next configuration in place.
    ///
    /// The default shim routes through the allocating
    /// [`VectorStep::vector_step`]; implementations override it to step
    /// without touching empty slots or the allocator.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        *c = self.vector_step(c, rng);
    }
}

/// Reusable per-thread buffers for allocation-free sparse steps.
///
/// A rule's `vector_step_into` takes `&self` and `&mut Configuration`,
/// so per-step working memory cannot live in either; it lives here,
/// borrowed for the duration of one step via [`with_step_scratch`].
#[derive(Debug, Default)]
pub(crate) struct StepScratch {
    /// Old per-occupied-slot counts (snapshot taken before rewriting).
    pub counts: Vec<u64>,
    /// Secondary count buffer (e.g. the undecided dynamics' adoption
    /// draw).
    pub aux_counts: Vec<u64>,
    /// Tertiary count buffer (e.g. 2-Median's per-group up-mover
    /// counts, drawn in the trinomial pass before the ascending cascade
    /// consumes them).
    pub aux_counts2: Vec<u64>,
    /// Per-occupied-slot weights for the one-step sampler.
    pub weights: Vec<f64>,
    /// Secondary float buffer (e.g. 2-Median's CDF over occupied values).
    pub aux: Vec<f64>,
    /// Reusable alias table for the ball-drop multinomial form (built
    /// lazily; `rebuild` keeps its buffers across rounds).
    pub alias: Option<symbreak_sim::dist::Categorical>,
}

/// Times the thread-local scratch fallback allocated fresh buffers
/// because both slots were already borrowed (three-deep nesting). Debug
/// builds count it so a hot loop cannot hide in the fallback; release
/// builds keep the counter at zero cost by not maintaining it.
#[cfg(debug_assertions)]
static SCRATCH_FALLBACKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of fresh-buffer scratch fallbacks so far on any thread
/// (debug builds only; always 0 in release builds). Read by the
/// scratch-nesting test; dead in non-test builds by design.
#[cfg(debug_assertions)]
#[allow(dead_code)]
pub(crate) fn scratch_fallback_count() -> u64 {
    SCRATCH_FALLBACKS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Runs `f` with one of this thread's **two** step-scratch slots. A
/// nested step (a rule stepping inside another rule's scratch closure —
/// e.g. a composite rule delegating mid-step) gets the second slot with
/// its buffers intact across calls, so one level of re-entrancy stays
/// allocation-free. Deeper nesting falls back to fresh buffers; debug
/// builds count those fallbacks ([`scratch_fallback_count`]) so a hot
/// loop cannot silently hide in the fallback.
pub(crate) fn with_step_scratch<T>(f: impl FnOnce(&mut StepScratch) -> T) -> T {
    thread_local! {
        static SCRATCH: [std::cell::RefCell<StepScratch>; 2] =
            [std::cell::RefCell::new(StepScratch::default()),
             std::cell::RefCell::new(StepScratch::default())];
    }
    SCRATCH.with(|slots| {
        for slot in slots {
            if let Ok(mut scratch) = slot.try_borrow_mut() {
                return f(&mut scratch);
            }
        }
        #[cfg(debug_assertions)]
        SCRATCH_FALLBACKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        f(&mut StepScratch::default())
    })
}

/// `Mult(n, θ)` over `d` positive categories is drawn by ball-drop
/// tally when `n < BALL_DROP_FACTOR · d`, by the conditional-binomial
/// walk otherwise. The walk pays one binomial construction
/// (transcendentals included) per category; a tally pays one `O(1)`
/// alias draw per trial plus an `O(d)` table build — so the tally wins
/// until trials outnumber categories by roughly the cost ratio of those
/// two units.
pub(crate) const BALL_DROP_FACTOR: u64 = 8;

/// Whether the ball-drop form wins for `n` trials over `d` positive
/// categories. Deterministic in round state, so dispatching on it keeps
/// trajectories seed-reproducible — and the dense/sparse AC paths apply
/// it to identical `(n, d)`, which keeps them seed-*exact*.
pub(crate) fn ball_drop_wins(n: u64, d: usize) -> bool {
    n < BALL_DROP_FACTOR * d as u64
}

/// The shared sparse one-step sampler for AC-processes: draws
/// `P(c) ∼ Mult(n, α(c))` over the occupied slots only, in place.
///
/// The draw form is dispatched per round: the conditional-binomial walk
/// when trials dominate the occupancy, the ball-drop tally otherwise
/// ([`ball_drop_wins`]) — which is what keeps the `k = n` singleton
/// start's early rounds from paying one binomial construction per
/// occupied slot. Both forms are exactly `Mult(n, α)`; the dense
/// [`ac_vector_step`] dispatches on the same predicate with the same
/// table, so dense and sparse stay seed-exact.
pub(crate) fn ac_vector_step_into<P: AcProcess + ?Sized>(
    process: &P,
    c: &mut Configuration,
    rng: &mut dyn RngCore,
) {
    let n = c.n();
    with_step_scratch(|s| {
        process.alpha_into(c, &mut s.weights);
        let ball_drop = ball_drop_wins(n, c.num_colors());
        if ball_drop {
            let table = match &mut s.alias {
                Some(table) => {
                    table.rebuild(&s.weights);
                    table
                }
                none => none.insert(symbreak_sim::dist::Categorical::new(&s.weights)),
            };
            c.rewrite_occupied(|occ, counts| {
                for &i in occ {
                    counts[i as usize] = 0;
                }
                symbreak_sim::dist::sample_multinomial_tally_into(n, table, occ, rng, counts);
            });
        } else {
            c.rewrite_occupied(|occ, counts| {
                for &i in occ {
                    counts[i as usize] = 0;
                }
                symbreak_sim::dist::sample_multinomial_sparse_into(n, &s.weights, occ, rng, counts);
            });
        }
    });
    debug_assert_eq!(c.n(), n, "AC step must preserve the population");
}

/// The dense sibling of [`ac_vector_step_into`]: allocates a fresh
/// configuration, but dispatches between the same two draw forms on the
/// same predicate — over the same occupied-slot weights — so the two
/// paths consume the RNG identically and stay seed-exact (pinned by the
/// sparse-equivalence proptests).
pub(crate) fn ac_vector_step<P: AcProcess + ?Sized>(
    process: &P,
    c: &Configuration,
    rng: &mut dyn RngCore,
) -> Configuration {
    let alpha = process.alpha(c);
    let mut out = vec![0u64; alpha.len()];
    if ball_drop_wins(c.n(), c.num_colors()) {
        let weights: Vec<f64> = c.occupied().iter().map(|&i| alpha[i as usize]).collect();
        let table = symbreak_sim::dist::Categorical::new(&weights);
        symbreak_sim::dist::sample_multinomial_tally_into(
            c.n(),
            &table,
            c.occupied(),
            rng,
            &mut out,
        );
    } else {
        symbreak_sim::dist::sample_multinomial_into(c.n(), &alpha, rng, &mut out);
    }
    Configuration::from_counts(out)
}

/// Validates that `alpha` is a probability vector (panics otherwise).
/// Used in debug assertions and tests.
pub fn assert_probability_vector(alpha: &[f64]) {
    let mut total = 0.0;
    for (i, &a) in alpha.iter().enumerate() {
        assert!(a.is_finite() && (-1e-12..=1.0 + 1e-9).contains(&a), "alpha[{i}] = {a} invalid");
        total += a;
    }
    assert!((total - 1.0).abs() < 1e-7, "alpha sums to {total}, expected 1");
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ConstantProcess;

    impl AcProcess for ConstantProcess {
        fn alpha(&self, c: &Configuration) -> Vec<f64> {
            let k = c.num_slots();
            vec![1.0 / k as f64; k]
        }
    }

    #[test]
    fn blanket_expected_update_for_ac() {
        let c = Configuration::uniform(10, 4);
        let p = ConstantProcess;
        assert_eq!(p.expected_fractions(&c), p.alpha(&c));
    }

    #[test]
    fn probability_vector_validation_accepts_valid() {
        assert_probability_vector(&[0.25, 0.75]);
        assert_probability_vector(&[1.0]);
        assert_probability_vector(&[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn probability_vector_validation_rejects_bad_sum() {
        assert_probability_vector(&[0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn probability_vector_validation_rejects_negative() {
        assert_probability_vector(&[-0.5, 1.5]);
    }

    #[test]
    fn default_sample_access_is_ordered_without_multiset_entry() {
        struct Plain;
        impl UpdateRule for Plain {
            fn name(&self) -> &'static str {
                "plain"
            }
            fn sample_count(&self) -> usize {
                1
            }
            fn update(&self, own: Opinion, _s: &[Opinion], _r: &mut dyn RngCore) -> Opinion {
                own
            }
        }
        assert_eq!(Plain.sample_access(), SampleAccess::OrderedWindow);
        assert!(Plain.as_multiset().is_none());
    }

    #[test]
    fn nested_step_scratch_uses_second_slot_without_fallback() {
        // One level of nesting must be served by the second thread-local
        // slot; only a third simultaneous borrow takes the counted
        // fresh-buffer fallback.
        #[cfg(debug_assertions)]
        let before = scratch_fallback_count();
        with_step_scratch(|outer| {
            outer.counts.push(1);
            with_step_scratch(|inner| {
                inner.counts.push(2);
                assert_ne!(outer.counts.as_ptr(), inner.counts.as_ptr());
            });
        });
        #[cfg(debug_assertions)]
        assert_eq!(scratch_fallback_count(), before, "two-deep nesting must not fall back");
        #[cfg(debug_assertions)]
        {
            with_step_scratch(|_| {
                with_step_scratch(|_| {
                    with_step_scratch(|_| {});
                });
            });
            assert_eq!(scratch_fallback_count(), before + 1, "three-deep nesting is counted");
        }
    }

    #[test]
    fn ball_drop_predicate_flips_with_occupancy() {
        // Singleton start: trials == occupancy, tally form.
        assert!(ball_drop_wins(1000, 1000));
        // Concentrated: trials dwarf occupancy, walk form.
        assert!(!ball_drop_wins(1000, 2));
        assert!(!ball_drop_wins(0, 0));
    }
}
