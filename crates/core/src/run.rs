//! Consensus runners: drive an [`Engine`] to consensus (or a round cap),
//! recording trajectories and the hitting times `T^κ` of Section 2.2.

use crate::config::Configuration;
use crate::engine::Engine;
use crate::opinion::Opinion;
use symbreak_sim::trace::{RoundStats, Trace};

/// Options controlling a consensus run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Hard cap on simulated rounds.
    pub max_rounds: u64,
    /// Record a full per-round [`Trace`] (`O(1)` per round: the
    /// observables are cached on the configuration).
    pub record_trace: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { max_rounds: 1_000_000, record_trace: false }
    }
}

/// Outcome of a consensus run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Round at which consensus was first observed, if reached.
    pub consensus_round: Option<u64>,
    /// Number of rounds actually simulated.
    pub rounds_run: u64,
    /// The final configuration.
    pub final_config: Configuration,
    /// The winning color if consensus was reached.
    pub winner: Option<Opinion>,
    /// Per-round trajectory (present iff requested).
    pub trace: Option<Trace>,
}

impl RunOutcome {
    /// Whether the run reached consensus within the round cap.
    pub fn reached_consensus(&self) -> bool {
        self.consensus_round.is_some()
    }
}

fn snapshot(engine: &dyn Engine) -> RoundStats {
    // The engine observables are O(1) reads off the configuration cache —
    // no per-round clone even when a trace is recorded.
    RoundStats {
        round: engine.round(),
        num_colors: engine.num_colors(),
        max_support: engine.max_support(),
        bias: engine.bias(),
    }
}

/// Runs `engine` until consensus or `opts.max_rounds`.
pub fn run_to_consensus(engine: &mut dyn Engine, opts: &RunOptions) -> RunOutcome {
    let mut trace = opts.record_trace.then(Trace::new);
    if let Some(t) = trace.as_mut() {
        t.push(snapshot(engine));
    }
    let start_round = engine.round();
    let mut consensus_round = engine.is_consensus().then(|| engine.round());
    while consensus_round.is_none() && engine.round() - start_round < opts.max_rounds {
        engine.step();
        if let Some(t) = trace.as_mut() {
            t.push(snapshot(engine));
        }
        if engine.is_consensus() {
            consensus_round = Some(engine.round());
        }
    }
    let final_config = engine.configuration();
    let winner =
        (consensus_round.is_some() && final_config.n() > 0).then(|| final_config.plurality());
    RunOutcome {
        consensus_round,
        rounds_run: engine.round() - start_round,
        final_config,
        winner,
        trace,
    }
}

/// Runs `engine` until at most `kappa` colors remain, returning the hitting
/// time `T^κ`, or `None` if the cap was reached first.
///
/// This is the observable Theorem 2 is about.
pub fn hitting_time_colors(engine: &mut dyn Engine, kappa: usize, max_rounds: u64) -> Option<u64> {
    let start = engine.round();
    loop {
        if engine.num_colors() <= kappa {
            return Some(engine.round() - start);
        }
        if engine.round() - start >= max_rounds {
            return None;
        }
        engine.step();
    }
}

/// Runs `engine` until the maximum support exceeds `threshold`, returning
/// that round (the observable of Theorem 5), or `None` at the cap.
pub fn first_support_above(
    engine: &mut dyn Engine,
    threshold: u64,
    max_rounds: u64,
) -> Option<u64> {
    let start = engine.round();
    loop {
        if engine.max_support() > threshold {
            return Some(engine.round() - start);
        }
        if engine.round() - start >= max_rounds {
            return None;
        }
        engine.step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::VectorEngine;
    use crate::rules::{ThreeMajority, Voter};

    #[test]
    fn voter_run_reaches_consensus_with_trace() {
        let c = Configuration::uniform(64, 8);
        let mut e = VectorEngine::new(Voter, c, 1);
        let out = run_to_consensus(&mut e, &RunOptions { max_rounds: 100_000, record_trace: true });
        assert!(out.reached_consensus());
        let trace = out.trace.expect("requested");
        assert_eq!(trace.rounds()[0].round, 0);
        assert_eq!(trace.last().map(|r| r.num_colors), Some(1));
        assert!(out.winner.is_some());
        assert_eq!(out.final_config.n(), 64);
    }

    #[test]
    fn round_cap_is_respected() {
        let c = Configuration::singletons(4096);
        let mut e = VectorEngine::new(Voter, c, 2);
        let out = run_to_consensus(&mut e, &RunOptions { max_rounds: 3, record_trace: false });
        assert!(!out.reached_consensus());
        assert_eq!(out.rounds_run, 3);
        assert!(out.winner.is_none());
        assert!(out.trace.is_none());
    }

    #[test]
    fn already_consensus_returns_round_zero() {
        let c = Configuration::consensus(10, 2);
        let mut e = VectorEngine::new(ThreeMajority, c, 3);
        let out = run_to_consensus(&mut e, &RunOptions::default());
        assert_eq!(out.consensus_round, Some(0));
        assert_eq!(out.rounds_run, 0);
        assert_eq!(out.winner, Some(Opinion::new(0)));
    }

    #[test]
    fn hitting_time_is_monotone_in_kappa() {
        let c = Configuration::singletons(256);
        let mut e = VectorEngine::new(ThreeMajority, c.clone(), 4);
        let t16 = hitting_time_colors(&mut e, 16, 1_000_000).expect("reaches 16 colors");
        // Continue the same engine down to 4 colors: must take extra rounds.
        let t4_extra = hitting_time_colors(&mut e, 4, 1_000_000).expect("reaches 4 colors");
        assert!(t16 > 0);
        // Restarting from scratch, T^4 >= T^16 in the same realization.
        let mut e2 = VectorEngine::new(ThreeMajority, c, 4);
        let t4 = hitting_time_colors(&mut e2, 4, 1_000_000).expect("reaches 4");
        assert_eq!(t4, t16 + t4_extra, "same seed: nested hitting times compose");
    }

    #[test]
    fn hitting_time_none_at_cap() {
        let c = Configuration::singletons(1024);
        let mut e = VectorEngine::new(Voter, c, 5);
        assert_eq!(hitting_time_colors(&mut e, 1, 2), None);
    }

    #[test]
    fn first_support_above_triggers() {
        let c = Configuration::uniform(100, 2);
        let mut e = VectorEngine::new(ThreeMajority, c, 6);
        // Threshold 0 triggers immediately.
        assert_eq!(first_support_above(&mut e, 0, 10), Some(0));
        // Threshold n can never trigger.
        assert_eq!(first_support_above(&mut e, 100, 5), None);
    }
}
