//! Closed-form bound curves from the paper, used by the experiment harness
//! to plot measured times against the claimed asymptotics.
//!
//! All logarithms are natural; the bounds are asymptotic shapes (constants
//! chosen as in the paper where it gives them, e.g. `20·n/k` in Lemma 3's
//! proof), so harness comparisons are about *shape*, not absolute values.

/// Theorem 4: 3-Majority consensus-time bound `n^{3/4} · log^{7/8} n`.
pub fn theorem4_bound(n: u64) -> f64 {
    let nf = n as f64;
    nf.powf(0.75) * nf.ln().max(1.0).powf(7.0 / 8.0)
}

/// The Phase-1 / Phase-2 split point of Theorem 4's proof:
/// `n^{1/4} · log^{1/8} n` colors.
pub fn phase_split_colors(n: u64) -> u64 {
    let nf = n as f64;
    (nf.powf(0.25) * nf.ln().max(1.0).powf(1.0 / 8.0)).ceil() as u64
}

/// Lemma 3 (w.h.p. form): Voter reaches `k` colors within
/// `O((n/k) · log n)` rounds.
pub fn lemma3_whp_bound(n: u64, k: u64) -> f64 {
    let nf = n as f64;
    (nf / k as f64) * nf.ln().max(1.0)
}

/// Lemma 3 / Equation (19): `E[T^k_C] ≤ 20·n/k` — the expectation bound on
/// the coalescence (equivalently Voter) time, with the paper's constant.
pub fn lemma3_expectation_bound(n: u64, k: u64) -> f64 {
    20.0 * n as f64 / k as f64
}

/// Theorem 5's support cap `ℓ' = max(2ℓ, γ·log n)`.
pub fn theorem5_support_cap(ell: u64, gamma: f64, n: u64) -> u64 {
    let log_term = (gamma * (n as f64).ln()).ceil() as u64;
    (2 * ell).max(log_term)
}

/// Theorem 5's horizon: with high probability no color exceeds `ℓ'` for
/// `n / (γ·ℓ')` rounds.
pub fn theorem5_horizon(n: u64, ell_prime: u64, gamma: f64) -> f64 {
    n as f64 / (gamma * ell_prime as f64)
}

/// Theorem 1's lower-bound shape for 2-Choices from low-support
/// configurations: `n / log n`.
pub fn two_choices_lower_bound(n: u64) -> f64 {
    n as f64 / (n as f64).ln().max(1.0)
}

/// Theorem 8 (\[BCN+16, Theorem 3.1\]): 3-Majority from `k ≤ n^{1/3−ε}`
/// colors reaches consensus w.h.p. in
/// `O((k² log^{1/2} n + k log n) · (k + log n))` rounds.
pub fn theorem8_bound(n: u64, k: u64) -> f64 {
    let ln_n = (n as f64).ln().max(1.0);
    let kf = k as f64;
    (kf * kf * ln_n.sqrt() + kf * ln_n) * (kf + ln_n)
}

/// The biased-regime sufficient bias for 3-Majority's plurality
/// convergence (\[BCN+14\]): `√(k) · √(n log n)` up to constants.
pub fn three_majority_bias_threshold(n: u64, k: u64) -> f64 {
    (k as f64).sqrt() * ((n as f64) * (n as f64).ln().max(1.0)).sqrt()
}

/// The biased-regime sufficient bias for 2-Choices (\[BGKMT16\], see
/// footnote 4): `√(n log n)` up to constants.
pub fn two_choices_bias_threshold(n: u64) -> f64 {
    ((n as f64) * (n as f64).ln().max(1.0)).sqrt()
}

/// Fault tolerance (§5, citing \[BCN+16\]): 3-Majority with `k = o(n^{1/3})`
/// tolerates `O(√n / (k^{5/2} · log n))` corruptions per round.
pub fn three_majority_tolerated_corruptions(n: u64, k: u64) -> f64 {
    (n as f64).sqrt() / ((k as f64).powf(2.5) * (n as f64).ln().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem4_is_sublinear() {
        for exp in 10..24 {
            let n = 1u64 << exp;
            assert!(theorem4_bound(n) < n as f64, "bound must be sublinear at n = 2^{exp}");
        }
    }

    #[test]
    fn theorem4_grows_with_n() {
        assert!(theorem4_bound(1 << 20) > theorem4_bound(1 << 10));
    }

    #[test]
    fn phase_split_is_well_below_n() {
        let n = 1u64 << 20;
        let split = phase_split_colors(n);
        assert!(split as f64 >= (n as f64).powf(0.25));
        assert!((split as f64) < (n as f64).powf(0.34), "split must stay o(n^{{1/3}})");
    }

    #[test]
    fn lemma3_bounds_scale_inversely_with_k() {
        let n = 1 << 16;
        assert!(lemma3_whp_bound(n, 2) > lemma3_whp_bound(n, 64));
        assert!((lemma3_expectation_bound(n, 4) - 20.0 * n as f64 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn theorem5_cap_takes_the_max() {
        // Small initial support: the log term dominates.
        let n = 1 << 16;
        let gamma = 18.0;
        let cap = theorem5_support_cap(1, gamma, n);
        assert_eq!(cap, (gamma * (n as f64).ln()).ceil() as u64);
        // Large initial support: doubling dominates.
        assert_eq!(theorem5_support_cap(10_000, gamma, n), 20_000);
    }

    #[test]
    fn theorem5_horizon_shrinks_with_support_cap() {
        let n = 1u64 << 20;
        let gamma = 18.0;
        let small_cap = theorem5_support_cap(1, gamma, n);
        let big_cap = theorem5_support_cap(10_000, gamma, n);
        assert!(
            theorem5_horizon(n, small_cap, gamma) > theorem5_horizon(n, big_cap, gamma),
            "larger caps are reached in proportionally fewer rounds"
        );
    }

    #[test]
    fn separation_widens_with_n() {
        // ratio = n^{1/4} / log^{15/8} n grows without bound; the constants
        // only push it past 1 at very large n, so test monotone growth at
        // simulable sizes and openness asymptotically.
        let ratio = |n: u64| two_choices_lower_bound(n) / theorem4_bound(n);
        assert!(ratio(1 << 22) > ratio(1 << 14), "gap must widen with n");
        assert!(ratio(1 << 62) > 1.0, "gap must be open asymptotically");
    }

    #[test]
    fn theorem8_polynomial_in_k() {
        let n = 1 << 20;
        assert!(theorem8_bound(n, 64) > theorem8_bound(n, 8));
    }

    #[test]
    fn bias_thresholds_ordering() {
        // 3-Majority needs a √k-factor more bias than 2-Choices (footnote 4).
        let n = 1 << 16;
        assert!(three_majority_bias_threshold(n, 9) > two_choices_bias_threshold(n));
        assert!(
            (three_majority_bias_threshold(n, 9) / two_choices_bias_threshold(n) - 3.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn tolerated_corruptions_shrink_with_k() {
        let n = 1 << 20;
        assert!(
            three_majority_tolerated_corruptions(n, 2) > three_majority_tolerated_corruptions(n, 8)
        );
    }
}
