//! Potential functions and one-step drift measurement.
//!
//! The paper's analyses revolve around a handful of scalar observables of
//! the configuration: the collision probability `‖x‖₂²` (which appears in
//! the 3-Majority process function and governs how often 2-Choices
//! samples match), the number of remaining colors, and the bias. This
//! module computes them plus the *exact* expected one-step drift of the
//! collision potential under any [`ExpectedUpdate`] process, and a
//! Monte-Carlo drift estimator to validate it.
//!
//! The collision potential is Schur-convex, so by Lemma 2 machinery it
//! can only grow in expectation faster under 3-Majority than under Voter
//! — the quantitative engine behind the drift intuition of Section 1.

use rand::RngCore;

use crate::config::Configuration;
use crate::process::{ExpectedUpdate, VectorStep};

/// Scalar observables of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observables {
    /// Collision probability `‖x‖₂² = Σ (cᵢ/n)²` — the probability two
    /// uniform samples share a color.
    pub collision: f64,
    /// Shannon entropy of the color distribution (nats).
    pub entropy: f64,
    /// Number of remaining colors.
    pub num_colors: usize,
    /// Bias (gap between the two largest supports).
    pub bias: u64,
}

/// Computes all observables of `c`.
pub fn observables(c: &Configuration) -> Observables {
    let x = c.fractions();
    let entropy = -x.iter().filter(|&&v| v > 0.0).map(|&v| v * v.ln()).sum::<f64>();
    Observables { collision: c.l2_norm_sq(), entropy, num_colors: c.num_colors(), bias: c.bias() }
}

/// The collision probability of the *expected* next configuration,
/// `‖E[x']‖₂²`, under process `p`.
///
/// Note this is a lower bound on `E[‖x'‖₂²]` (Jensen, since `‖·‖₂²` is
/// convex); the gap is the variance contribution that actually drives
/// symmetry breaking for 2-Choices.
pub fn expected_collision_lower_bound(p: &dyn ExpectedUpdate, c: &Configuration) -> f64 {
    p.expected_fractions(c).iter().map(|v| v * v).sum()
}

/// Monte-Carlo estimate of `E[‖x'‖₂²]` after one step of `p` from `c`.
pub fn sampled_collision_mean(
    p: &dyn VectorStep,
    c: &Configuration,
    trials: u64,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mut total = 0.0;
    for _ in 0..trials {
        total += p.vector_step(c, rng).l2_norm_sq();
    }
    total / trials as f64
}

/// The exact expected collision drift of an AC-process in one step:
///
/// `E[‖x'‖₂²] = Σᵢ Var[x'ᵢ] + αᵢ² = Σᵢ αᵢ(1−αᵢ)/n + αᵢ²`
///
/// since `c'ᵢ ∼ Bin(n, αᵢ)` marginally under `Mult(n, α)`.
pub fn ac_expected_collision(alpha: &[f64], n: u64) -> f64 {
    let nf = n as f64;
    alpha.iter().map(|&a| a * (1.0 - a) / nf + a * a).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::AcProcess;
    use crate::rules::{ThreeMajority, TwoChoices, Voter};
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn observables_of_extremes() {
        let consensus = Configuration::consensus(100, 4);
        let o = observables(&consensus);
        assert!((o.collision - 1.0).abs() < 1e-12);
        assert!((o.entropy - 0.0).abs() < 1e-12);
        assert_eq!(o.num_colors, 1);

        let uniform = Configuration::uniform(100, 4);
        let u = observables(&uniform);
        assert!((u.collision - 0.25).abs() < 1e-12);
        assert!((u.entropy - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ac_expected_collision_matches_sampling_voter() {
        let c = Configuration::from_counts(vec![50, 30, 20]);
        let alpha = Voter.alpha(&c);
        let exact = ac_expected_collision(&alpha, c.n());
        let mut rng = Pcg64::seed_from_u64(1);
        let sampled = sampled_collision_mean(&Voter, &c, 40_000, &mut rng);
        assert!((exact - sampled).abs() < 5e-4, "exact {exact} vs sampled {sampled}");
    }

    #[test]
    fn ac_expected_collision_matches_sampling_three_majority() {
        let c = Configuration::from_counts(vec![40, 30, 20, 10]);
        let alpha = ThreeMajority.alpha(&c);
        let exact = ac_expected_collision(&alpha, c.n());
        let mut rng = Pcg64::seed_from_u64(2);
        let sampled = sampled_collision_mean(&ThreeMajority, &c, 40_000, &mut rng);
        assert!((exact - sampled).abs() < 5e-4, "exact {exact} vs sampled {sampled}");
    }

    #[test]
    fn voter_collision_drifts_upward() {
        // Voter has no mean drift on x but strictly positive drift on the
        // (convex) collision potential — the engine of coalescence.
        let c = Configuration::uniform(64, 8);
        let alpha = Voter.alpha(&c);
        let next = ac_expected_collision(&alpha, c.n());
        assert!(next > c.l2_norm_sq() + 1e-6, "collision must grow: {next} vs {}", c.l2_norm_sq());
    }

    #[test]
    fn three_majority_drifts_at_least_as_fast_as_voter() {
        // Quantitative form of the Lemma-2 intuition at one step.
        for counts in [vec![16, 16, 16, 16], vec![30, 20, 10, 4], vec![50, 9, 5]] {
            let c = Configuration::from_counts(counts);
            let v = ac_expected_collision(&Voter.alpha(&c), c.n());
            let m = ac_expected_collision(&ThreeMajority.alpha(&c), c.n());
            assert!(m >= v - 1e-12, "3M drift {m} below Voter drift {v} on {c}");
        }
    }

    #[test]
    fn jensen_gap_is_nonnegative() {
        let c = Configuration::from_counts(vec![40, 30, 20, 10]);
        let mut rng = Pcg64::seed_from_u64(3);
        {
            let p = &TwoChoices as &dyn VectorStep;
            let sampled = sampled_collision_mean(p, &c, 20_000, &mut rng);
            let lower = expected_collision_lower_bound(&TwoChoices, &c);
            assert!(sampled >= lower - 1e-3, "Jensen violated: {sampled} < {lower}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let c = Configuration::uniform(10, 2);
        let mut rng = Pcg64::seed_from_u64(4);
        sampled_collision_mean(&Voter, &c, 0, &mut rng);
    }
}
