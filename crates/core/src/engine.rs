//! Synchronous round engines.
//!
//! Two implementations of the same semantics:
//!
//! * [`AgentEngine`] — the literal model: every node pulls uniform samples
//!   and applies its [`UpdateRule`]. `O(n·h)` per round; works for *every*
//!   rule, including non-AC processes.
//! * [`VectorEngine`] — the distributional shortcut: one draw from the
//!   exact one-step law, taken in place via
//!   [`VectorStep::vector_step_into`]. `O(#occupied colors)` per round and
//!   allocation-free; this is what makes the large-`n` sweeps — including
//!   the `k = n` singleton starts of Theorem 5 — feasible.
//!
//! Experiment E7 (and the cross-validation tests below) confirm the two
//! agree distributionally, which is exactly the paper's observation that an
//! AC-process's one-step law is `Mult(n, α(c))`.

use rand::{Rng, SeedableRng};

use crate::config::{ChangeLog, Configuration};
use crate::opinion::Opinion;
use crate::process::{SampleAccess, UpdateRule, VectorStep};
use symbreak_sim::dist::{
    expected_window_visits, Categorical, Geometric, UpdatableSampler, WindowMultinomial,
    WALK_CANDIDATE_CAP,
};
use symbreak_sim::rng::{Pcg64, SplitMix64};

/// A synchronous consensus-process engine.
pub trait Engine {
    /// Borrowed view of the current configuration (decided colors only).
    ///
    /// This is the cheap accessor the runners poll every round; cloning
    /// via [`Engine::configuration`] is only needed when the snapshot
    /// must outlive the engine.
    fn config_ref(&self) -> &Configuration;

    /// The current configuration (decided colors only), cloned.
    fn configuration(&self) -> Configuration {
        self.config_ref().clone()
    }

    /// Number of completed rounds.
    fn round(&self) -> u64;

    /// Advances one synchronous round.
    fn step(&mut self);

    /// Number of undecided nodes (0 for processes without an undecided
    /// state).
    fn undecided(&self) -> u64 {
        0
    }

    /// Number of remaining colors — `O(1)` from the configuration cache.
    fn num_colors(&self) -> usize {
        self.config_ref().num_colors()
    }

    /// Largest support — `O(1)` from the configuration cache.
    fn max_support(&self) -> u64 {
        self.config_ref().max_support()
    }

    /// Bias (gap between the two largest supports) — `O(1)` from the
    /// configuration cache.
    fn bias(&self) -> u64 {
        self.config_ref().bias()
    }

    /// Whether the system has reached consensus: all nodes decided on one
    /// color.
    fn is_consensus(&self) -> bool {
        self.undecided() == 0 && self.config_ref().is_consensus()
    }
}

/// How [`AgentEngine`] draws the Uniform-Pull samples of a round.
///
/// Every mode realizes the same law: a pulled sample is the opinion of a
/// uniformly random node, i.i.d. with replacement. Since only opinions
/// are observable, drawing `opinions[uniform node]` is distributionally
/// identical to drawing the opinion *category* from the current count
/// distribution (undecided included) — which one alias table per round
/// answers in `O(1)` per sample, cache-resident, instead of `n·h`
/// random-access reads of `opinions[]`. The default mode additionally
/// dispatches on what the rule *consumes*
/// ([`crate::process::SampleAccess`]): rules reading only their window's
/// multiset get per-node count vectors from a window-splitting sampler
/// (no window buffer at all), and single-peer rules get exactly one
/// categorical draw per node. The modes consume randomness differently,
/// so they realize different (equally lawful) trajectories — pinned
/// distributionally by the E7-style crossval tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingMode {
    /// Dispatch on the rule's [`crate::process::SampleAccess`]: multiset
    /// rules take per-node window splits, single-peer rules one draw per
    /// node, ordered-window rules the alias path. The default.
    #[default]
    Native,
    /// One alias table per round over the opinion counts; `O(k)` build,
    /// `O(1)` per draw, every rule fed an ordered window. The paired
    /// baseline for the native dispatch (and the pre-taxonomy default).
    AliasTable,
    /// The literal model: `gen_range(0..n)` plus a random-access read per
    /// sample. Kept for cross-validation (E7) and as the bench baseline.
    PerNode,
}

/// How [`AgentEngine`] maintains its per-round state (the opinion
/// sampler and the configuration's derived caches) between rounds.
///
/// Both modes realize the identical process law. They consume the
/// generator differently — the incremental sampler arbitrates its draw
/// backend per round where the rebuild path always builds one
/// [`RoundSampler`] form — so trajectories diverge per seed, exactly
/// like the [`SamplingMode`]s; crossval tests pin the laws against each
/// other, and the default keeps every historical trajectory byte-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundStateMode {
    /// From-scratch per round: dense `O(k)` weight snapshot, fresh
    /// sampler build, dense `O(k)` cache rebuild. The byte-exact
    /// paired baseline (and the pre-incremental default).
    #[default]
    Rebuild,
    /// Persistent round state: a [`UpdatableSampler`] patched from the
    /// round's touched-slot [`ChangeLog`] (`O(#changed·log k)`), cached
    /// observables re-derived by [`Configuration::apply_change_log`]
    /// (`O(#changed)` amortized) — no dense per-round pass at all.
    Incremental,
}

/// Agent-level engine: simulates each node explicitly.
#[derive(Debug, Clone)]
pub struct AgentEngine<R> {
    rule: R,
    opinions: Vec<Opinion>,
    next_opinions: Vec<Opinion>,
    /// Decided-color counts as a full [`Configuration`], kept in sync
    /// incrementally by [`AgentEngine::record`] so the [`Engine`]
    /// observables need no per-round recount or clone.
    config: Configuration,
    undecided: u64,
    round: u64,
    rng: Pcg64,
    /// Fast stream for the alias-table path. SplitMix64's state update is
    /// a single add, so its serial dependency chain is one cycle per
    /// draw — unlike Pcg64's 128-bit multiply, which dominates the
    /// per-node path's round time.
    fast_rng: SplitMix64,
    mode: SamplingMode,
    /// Scratch for the per-round alias-table weights (`k + 1` slots, the
    /// last one for the undecided pseudo-opinion).
    weights: Vec<f64>,
    /// Native-mode scratch: one node's window histogram (≤ `h` entries).
    window: Vec<(Opinion, u32)>,
    /// Native-mode scratch: positive-weight opinions, decreasing weight.
    native_ops: Vec<Opinion>,
    /// Native-mode scratch: the weights of `native_ops`, same order.
    native_weights: Vec<f64>,
    /// Native-mode scratch: `(weight, category)` pairs for the
    /// decreasing-weight qualifying sort.
    native_order: Vec<(f64, u32)>,
    /// How round state is maintained between rounds.
    round_state: RoundStateMode,
    /// Rebuild-mode persistent sampler: taken out for the round, put
    /// back after — the table buffers survive even though the form is
    /// re-derived per round.
    round_sampler: Option<RoundSampler>,
    /// Incremental-mode persistent sampler over `k + 1` slots (the last
    /// one the undecided pseudo-opinion); patched per round from the
    /// change log. Lazily seeded on first use.
    usampler: Option<UpdatableSampler>,
    /// Incremental-mode touched-slot log feeding
    /// [`Configuration::apply_change_log`] and the sampler patch.
    change_log: ChangeLog,
}

impl<R: UpdateRule> AgentEngine<R> {
    /// Creates an engine with all nodes decided per `config`, using the
    /// default alias-table sampling.
    pub fn new(rule: R, config: &Configuration, seed: u64) -> Self {
        Self::with_sampling(rule, config, seed, SamplingMode::default())
    }

    /// Creates an engine with an explicit [`SamplingMode`].
    pub fn with_sampling(rule: R, config: &Configuration, seed: u64, mode: SamplingMode) -> Self {
        let opinions = config.to_opinions();
        let next_opinions = opinions.clone();
        Self {
            rule,
            opinions,
            next_opinions,
            config: config.clone(),
            undecided: 0,
            round: 0,
            rng: Pcg64::seed_from_u64(seed),
            fast_rng: SplitMix64::seed_from_u64(seed ^ 0x6A09_E667_F3BC_C909),
            mode,
            weights: Vec::new(),
            window: Vec::new(),
            native_ops: Vec::new(),
            native_weights: Vec::new(),
            native_order: Vec::new(),
            round_state: RoundStateMode::default(),
            round_sampler: None,
            usampler: None,
            change_log: ChangeLog::new(),
        }
    }

    /// Selects how round state is maintained between rounds (builder
    /// style). The default [`RoundStateMode::Rebuild`] is the byte-exact
    /// baseline; [`RoundStateMode::Incremental`] patches persistent
    /// state in `O(#changed·log k)` per round.
    pub fn with_round_state(mut self, mode: RoundStateMode) -> Self {
        self.round_state = mode;
        if mode == RoundStateMode::Incremental {
            self.change_log.ensure_slots(self.config.num_slots());
        }
        self
    }

    /// The round-state mode in use.
    pub fn round_state(&self) -> RoundStateMode {
        self.round_state
    }

    /// The per-node opinions of the current round.
    pub fn opinions(&self) -> &[Opinion] {
        &self.opinions
    }

    /// The rule driving this engine.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The sampling mode in use.
    pub fn sampling_mode(&self) -> SamplingMode {
        self.mode
    }

    /// Records node `u`'s transition `own → new`, maintaining the
    /// incremental count/undecided bookkeeping (the configuration's
    /// derived caches are refreshed once per round in [`Engine::step`]).
    #[inline]
    fn record(&mut self, u: usize, own: Opinion, new: Opinion) {
        self.next_opinions[u] = new;
        if new != own {
            if self.round_state == RoundStateMode::Incremental {
                // Note round-start counts before the shift (first touch
                // wins inside the log); the undecided pool is not a
                // configuration slot and is tracked separately.
                if !own.is_undecided() {
                    self.change_log.note(own.index(), self.config.support(own.index()));
                }
                if !new.is_undecided() {
                    self.change_log.note(new.index(), self.config.support(new.index()));
                }
            }
            match (own.is_undecided(), new.is_undecided()) {
                (false, false) => {
                    self.config.shift_unit(Some(own.index()), Some(new.index()));
                }
                (false, true) => {
                    self.config.shift_unit(Some(own.index()), None);
                    self.undecided += 1;
                }
                (true, false) => {
                    self.undecided -= 1;
                    self.config.shift_unit(None, Some(new.index()));
                }
                (true, true) => unreachable!("new == own was excluded"),
            }
        }
    }

    /// The literal sampling path: `n·h` uniform node draws with
    /// random-access opinion reads.
    fn step_per_node(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let mut samples = vec![Opinion::new(0); h];
        for u in 0..n {
            for s in samples.iter_mut() {
                // Uniform Pull: sample a uniformly random node (with
                // replacement, possibly u itself) and read its opinion.
                *s = self.opinions[self.rng.gen_range(0..n)];
            }
            let own = self.opinions[u];
            let new = self.rule.update(own, &samples, &mut self.rng);
            self.record(u, own, new);
        }
    }

    /// The alias-table path: one `O(k)` sampler build per round, then
    /// each of the `n·h` samples is an `O(1)` draw from the opinion
    /// distribution — no random-access reads of `opinions[]`.
    ///
    /// When one opinion holds at least half the population — true for
    /// the vast majority of any consensus trajectory — the sampler
    /// switches to run-length form: the i.i.d. stream is generated as
    /// geometric runs of the plurality opinion punctuated by draws from
    /// the conditional distribution, which is distributionally identical
    /// and makes concentrated rounds nearly free.
    fn step_alias(&mut self) {
        // Snapshot the round-start distribution (counts mutate as nodes
        // update, but synchronous semantics sample the old round).
        self.snapshot_weights();
        self.step_alias_with_weights();
    }

    /// The alias-path round body, assuming [`AgentEngine::snapshot_weights`]
    /// already ran this round — shared with the multiset path's diverse
    /// fallback so a fallback round snapshots only once.
    fn step_alias_with_weights(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let k = self.config.num_slots();
        // The sampler is persistent: the rebuild re-derives the form but
        // reuses every table buffer, and consumes the stream exactly as
        // the historical from-scratch build did.
        let mut sampler = self.round_sampler.take().unwrap_or_default();
        sampler.rebuild(&self.weights, n as u64, &mut self.fast_rng);
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        if let SamplerKind::Constant(top) = sampler.kind {
            // Absorbed (or all-undecided) rounds: every pull returns the
            // same opinion, so the sample vector is hoisted out of the
            // node loop entirely — the round is pure rule evaluation.
            let samples = vec![decode(top); h];
            for u in 0..n {
                let own = self.opinions[u];
                let new = self.rule.update(own, &samples, &mut self.fast_rng);
                self.record(u, own, new);
            }
        } else {
            let mut samples = vec![Opinion::new(0); h];
            for u in 0..n {
                for s in samples.iter_mut() {
                    *s = decode(sampler.draw(&mut self.fast_rng));
                }
                let own = self.opinions[u];
                // The rule's internal randomness rides the same fast
                // stream: a Pcg64 draw per tie-break would put the
                // 128-bit multiply latency right back on the critical
                // path.
                let new = self.rule.update(own, &samples, &mut self.fast_rng);
                self.record(u, own, new);
            }
        }
        self.round_sampler = Some(sampler);
    }

    /// Snapshots the round-start opinion distribution into
    /// `self.weights`: `k + 1` categories, the last one the undecided
    /// pseudo-opinion.
    fn snapshot_weights(&mut self) {
        self.weights.clear();
        self.weights.extend(self.config.counts().iter().map(|&c| c as f64));
        self.weights.push(self.undecided as f64);
    }

    /// The single-peer path: one categorical draw per node, no window
    /// buffer. [`SampleAccess::SinglePeer`] guarantees
    /// `update(own, [s], _) == s`, but the (statically dispatched,
    /// trivially inlined) rule call is kept so the path needs no trust
    /// beyond the declared window size.
    fn step_single_peer(&mut self) {
        debug_assert_eq!(self.rule.sample_count(), 1, "single-peer rules pull one sample");
        let n = self.opinions.len();
        let k = self.config.num_slots();
        self.snapshot_weights();
        let mut sampler = self.round_sampler.take().unwrap_or_default();
        sampler.rebuild(&self.weights, n as u64, &mut self.fast_rng);
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        for u in 0..n {
            let s = decode(sampler.draw(&mut self.fast_rng));
            let own = self.opinions[u];
            let new = self.rule.update(own, &[s], &mut self.fast_rng);
            self.record(u, own, new);
        }
        self.round_sampler = Some(sampler);
    }

    /// The multiset path: rules declaring [`SampleAccess::Multiset`] get
    /// per-node window *histograms* instead of dealt sample sequences —
    /// lawful because i.i.d. windows are exchangeable, and per-node
    /// windows under Uniform Pull are independent `Mult(h, p)` draws.
    ///
    /// A [`WindowMultinomial`] walk with all conditional binomials
    /// cached delivers a window in [`expected_window_visits`] draws —
    /// ~one once a category dominates, versus `h` draws plus window
    /// writes on the ordered path — so the walk runs exactly when that
    /// statistic beats `h`; otherwise the round takes the ordered alias
    /// path unchanged (a multiset rule consumes an ordered window just
    /// fine, so the fallback costs nothing over the pre-taxonomy
    /// behaviour).
    fn step_multiset(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let k = self.config.num_slots();
        if h <= 1 {
            // A one-draw window walk can never beat one draw: with d ≥ 2
            // live categories the expected visit count exceeds 1, so the
            // walk statistic would reject every round — skip straight to
            // the alias path (h = 1 multiset rules like the undecided
            // dynamics consume an ordered 1-window identically).
            return self.step_alias();
        }
        self.snapshot_weights();

        // Positive categories, by decreasing weight so the window walk's
        // early exit bites.
        let d = self.weights.iter().filter(|&&w| w > 0.0).count();
        if d > WALK_CANDIDATE_CAP {
            return self.step_alias_with_weights();
        }
        self.native_ops.clear();
        self.native_weights.clear();
        self.native_order.clear();
        self.native_order.extend(
            self.weights.iter().enumerate().filter(|&(_, &w)| w > 0.0).map(|(i, &w)| (w, i as u32)),
        );
        self.native_order.sort_by(|a, b| b.0.total_cmp(&a.0));
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        for &(w, i) in &self.native_order {
            self.native_ops.push(decode(i as usize));
            self.native_weights.push(w);
        }

        if d == 1 {
            // Absorbed round: every window is h copies of the one
            // surviving opinion — pure rule evaluation.
            self.window.clear();
            self.window.push((self.native_ops[0], h as u32));
            for u in 0..n {
                let own = self.opinions[u];
                let new = self
                    .rule
                    .as_multiset()
                    .expect("Multiset access requires a MultisetRule impl")
                    .update_from_counts(own, &self.window, &mut self.fast_rng);
                self.record(u, own, new);
            }
            return;
        }

        if expected_window_visits(&self.native_weights, h) > h as f64 {
            // Too diverse for the walk to pay: the ordered path is the
            // better delivery of the same law.
            return self.step_alias_with_weights();
        }

        let walk = WindowMultinomial::new(&self.native_weights, h);
        for u in 0..n {
            self.window.clear();
            let ops = &self.native_ops;
            let window = &mut self.window;
            walk.sample_window(&mut self.fast_rng, |j, x| window.push((ops[j], x as u32)));
            let own = self.opinions[u];
            let new = self
                .rule
                .as_multiset()
                .expect("Multiset access requires a MultisetRule impl")
                .update_from_counts(own, &self.window, &mut self.fast_rng);
            self.record(u, own, new);
        }
    }

    /// The incremental ordered/single-peer path: draws every sample from
    /// the persistent [`UpdatableSampler`], which was patched to the
    /// round-start counts at the end of the previous round — no dense
    /// weight snapshot, no sampler build. [`UpdatableSampler::prepare`]
    /// arbitrates the draw backend for the round's `n·h` draws.
    fn step_updatable(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let k = self.config.num_slots();
        let mut sampler = match self.usampler.take() {
            Some(s) => s,
            None => {
                // First use: seed from the occupied slots, O(#occupied·log k).
                let mut s = UpdatableSampler::with_slots(k + 1);
                for &slot in self.config.occupied() {
                    s.set(slot as usize, self.config.support(slot as usize));
                }
                s.set(k, self.undecided);
                s
            }
        };
        sampler.prepare((n as u64).saturating_mul(h as u64));
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        if let Some(top) = sampler.constant() {
            // Absorbed (or all-undecided) rounds: pure rule evaluation.
            let samples = vec![decode(top); h];
            for u in 0..n {
                let own = self.opinions[u];
                let new = self.rule.update(own, &samples, &mut self.fast_rng);
                self.record(u, own, new);
            }
        } else {
            let mut samples = vec![Opinion::new(0); h];
            for u in 0..n {
                for s in samples.iter_mut() {
                    *s = decode(sampler.sample(&mut self.fast_rng));
                }
                let own = self.opinions[u];
                let new = self.rule.update(own, &samples, &mut self.fast_rng);
                self.record(u, own, new);
            }
        }
        self.usampler = Some(sampler);
    }

    /// The incremental multiset path: identical window-walk dispatch to
    /// [`AgentEngine::step_multiset`], but the occupancy `d` comes from
    /// the configuration's exact occupied list (`O(1)`) instead of a
    /// dense weight scan, the qualifying sort runs over the occupied
    /// slots only, and the diverse/one-draw fallbacks go through the
    /// persistent sampler instead of a fresh alias build.
    fn step_multiset_incremental(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let k = self.config.num_slots();
        let d = self.config.num_colors() + usize::from(self.undecided > 0);
        if h <= 1 || d > WALK_CANDIDATE_CAP {
            // One-draw windows can't beat one draw, and past the cap the
            // qualifying sort costs more than a walk round saves.
            return self.step_updatable();
        }
        // Positive categories by decreasing weight, from the occupied
        // list: same enumeration order as the dense scan (ascending
        // slots, undecided last), so the stable sort ties break alike.
        self.native_ops.clear();
        self.native_weights.clear();
        self.native_order.clear();
        self.native_order.extend(
            self.config.occupied().iter().map(|&i| (self.config.support(i as usize) as f64, i)),
        );
        if self.undecided > 0 {
            self.native_order.push((self.undecided as f64, k as u32));
        }
        self.native_order.sort_by(|a, b| b.0.total_cmp(&a.0));
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        for &(w, i) in &self.native_order {
            self.native_ops.push(decode(i as usize));
            self.native_weights.push(w);
        }

        if d == 1 {
            // Absorbed round: every window is h copies of the one
            // surviving opinion — pure rule evaluation.
            self.window.clear();
            self.window.push((self.native_ops[0], h as u32));
            for u in 0..n {
                let own = self.opinions[u];
                let new = self
                    .rule
                    .as_multiset()
                    .expect("Multiset access requires a MultisetRule impl")
                    .update_from_counts(own, &self.window, &mut self.fast_rng);
                self.record(u, own, new);
            }
            return;
        }

        if expected_window_visits(&self.native_weights, h) > h as f64 {
            return self.step_updatable();
        }

        let walk = WindowMultinomial::new(&self.native_weights, h);
        for u in 0..n {
            self.window.clear();
            let ops = &self.native_ops;
            let window = &mut self.window;
            walk.sample_window(&mut self.fast_rng, |j, x| window.push((ops[j], x as u32)));
            let own = self.opinions[u];
            let new = self
                .rule
                .as_multiset()
                .expect("Multiset access requires a MultisetRule impl")
                .update_from_counts(own, &self.window, &mut self.fast_rng);
            self.record(u, own, new);
        }
    }
}

impl<R: UpdateRule> Engine for AgentEngine<R> {
    fn config_ref(&self) -> &Configuration {
        &self.config
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn undecided(&self) -> u64 {
        self.undecided
    }

    fn step(&mut self) {
        if !self.opinions.is_empty() {
            let incremental = self.round_state == RoundStateMode::Incremental;
            match self.mode {
                SamplingMode::Native => match (self.rule.sample_access(), incremental) {
                    (SampleAccess::OrderedWindow, false) => self.step_alias(),
                    (SampleAccess::Multiset, false) => self.step_multiset(),
                    (SampleAccess::SinglePeer, false) => self.step_single_peer(),
                    (SampleAccess::Multiset, true) => self.step_multiset_incremental(),
                    (_, true) => self.step_updatable(),
                },
                SamplingMode::AliasTable if incremental => self.step_updatable(),
                SamplingMode::AliasTable => self.step_alias(),
                SamplingMode::PerNode => self.step_per_node(),
            }
            std::mem::swap(&mut self.opinions, &mut self.next_opinions);
            if incremental {
                // Patch the persistent sampler from the touched slots
                // (the log still holds them), then re-derive the cached
                // observables in O(#changed) — no dense pass at all.
                if let Some(s) = self.usampler.as_mut() {
                    for &slot in self.change_log.touched() {
                        s.set(slot as usize, self.config.support(slot as usize));
                    }
                    let k = self.config.num_slots();
                    s.set(k, self.undecided);
                }
                self.config.apply_change_log(&mut self.change_log);
            } else {
                // `record` defers every derived cache (an exact per-shift
                // occupancy list would make many-color rounds quadratic);
                // one O(k) rebuild per round keeps the observables exact
                // and is dominated by the O(n·h) round itself.
                self.config.rebuild_caches();
            }
        }
        self.round += 1;
    }
}

/// Plurality mass above which [`RoundSampler`] uses run-length form.
const RUN_LENGTH_THRESHOLD: f64 = 0.5;

/// Truncation point of the run-length alias table: run lengths `0..L`
/// draw in `O(1)`; the `≥ L` tail (probability `p_top^L`) falls back to
/// the logarithm-based geometric sampler, shifted by `L`.
const RUN_TABLE_LEN: usize = 64;

/// Per-round sampler over the opinion distribution (categories `0..k`
/// are decided colors, category `k` is undecided).
///
/// All three forms realize the same i.i.d. law; the form is chosen from
/// the round-start counts:
///
/// * `Constant` — one opinion holds everything (absorbed state): no
///   randomness needed at all.
/// * `RunLength` — an opinion holds ≥ half the mass: emit geometric
///   runs of it, punctuated by conditional draws. A run of length `G ∼
///   Geom(1−p)` followed by one conditional draw is exactly the
///   run-length encoding of i.i.d. categorical draws with an atom `p`.
///   Run lengths come from an alias table over the truncated geometric
///   pmf (`O(1)` per run) — the logarithm-based [`Geometric`] inversion
///   costs tens of nanoseconds and would otherwise run once per
///   non-plurality sample; it serves only the `≥ RUN_TABLE_LEN` tail,
///   which is exact by memorylessness.
/// * `Alias` — the general case: Vose alias table, `O(1)` per draw.
///
/// The struct persists across rounds in the engine: the per-round
/// [`rebuild`](Self::rebuild) re-derives the *form* from the fresh
/// weights but routes every table through [`Categorical::rebuild`], so
/// no round allocates — and it consumes the generator exactly as the
/// historical from-scratch build did (the only draw is the opening run
/// length, in the same stream position), keeping rebuild-mode
/// trajectories byte-exact.
#[derive(Debug, Clone)]
struct RoundSampler {
    kind: SamplerKind,
    run_table: Categorical,
    tail: Geometric,
    conditional: Categorical,
    alias: Categorical,
    /// Scratch for the truncated-geometric run-length pmf.
    run_weights: Vec<f64>,
    /// Scratch for the conditional (plurality-zeroed) weights.
    conditional_weights: Vec<f64>,
}

/// The form [`RoundSampler::rebuild`] chose for the current round.
#[derive(Debug, Clone, Copy)]
enum SamplerKind {
    Constant(usize),
    RunLength { top: usize, run: u64 },
    Alias,
}

impl Default for RoundSampler {
    fn default() -> Self {
        Self {
            kind: SamplerKind::Constant(0),
            run_table: Categorical::new(&[1.0]),
            tail: Geometric::new(1.0),
            conditional: Categorical::new(&[1.0]),
            alias: Categorical::new(&[1.0]),
            run_weights: Vec::new(),
            conditional_weights: Vec::new(),
        }
    }
}

impl RoundSampler {
    fn rebuild(&mut self, weights: &[f64], total: u64, rng: &mut SplitMix64) {
        let mut top = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if w > weights[top] {
                top = i;
            }
        }
        let p_top = weights[top] / total as f64;
        if p_top >= 1.0 {
            self.kind = SamplerKind::Constant(top);
            return;
        }
        if p_top >= RUN_LENGTH_THRESHOLD {
            self.conditional_weights.clear();
            self.conditional_weights.extend_from_slice(weights);
            self.conditional_weights[top] = 0.0;
            let q = 1.0 - p_top;
            // P(run = g) = q·p^g for g < L, P(run ≥ L) = p^L.
            self.run_weights.clear();
            let mut pg = 1.0f64;
            for _ in 0..RUN_TABLE_LEN {
                self.run_weights.push(q * pg);
                pg *= p_top;
            }
            self.run_weights.push(pg);
            self.run_table.rebuild(&self.run_weights);
            self.tail = Geometric::new(q);
            let run = Self::draw_run(&self.run_table, &self.tail, rng);
            self.conditional.rebuild(&self.conditional_weights);
            self.kind = SamplerKind::RunLength { top, run };
            return;
        }
        self.alias.rebuild(weights);
        self.kind = SamplerKind::Alias;
    }

    /// Draws one run length: `O(1)` from the truncated table, with the
    /// geometric tail handled exactly via memorylessness.
    #[inline]
    fn draw_run(run_table: &Categorical, tail: &Geometric, rng: &mut SplitMix64) -> u64 {
        let g = run_table.sample(rng);
        if g < RUN_TABLE_LEN {
            g as u64
        } else {
            RUN_TABLE_LEN as u64 + tail.sample(rng)
        }
    }

    #[inline]
    fn draw(&mut self, rng: &mut SplitMix64) -> usize {
        match &mut self.kind {
            SamplerKind::Constant(top) => *top,
            SamplerKind::RunLength { top, run } => {
                if *run > 0 {
                    *run -= 1;
                    *top
                } else {
                    let s = self.conditional.sample(rng);
                    *run = Self::draw_run(&self.run_table, &self.tail, rng);
                    s
                }
            }
            SamplerKind::Alias => self.alias.sample(rng),
        }
    }
}

/// Vectorized engine: one exact draw from the one-step law per round,
/// taken in place via [`VectorStep::vector_step_into`] — allocation-free
/// and `O(#occupied)` for the rules in this crate.
#[derive(Debug, Clone)]
pub struct VectorEngine<R> {
    rule: R,
    config: Configuration,
    round: u64,
    rng: Pcg64,
    compact: bool,
}

impl<R: VectorStep> VectorEngine<R> {
    /// Creates an engine starting from `config`.
    pub fn new(rule: R, config: Configuration, seed: u64) -> Self {
        Self { rule, config, round: 0, rng: Pcg64::seed_from_u64(seed), compact: false }
    }

    /// Enables zero-slot compaction after every round.
    ///
    /// Historically this was what kept long runs at `O(remaining colors)`
    /// per round; the occupancy-aware configuration now does that by
    /// itself, so this is a thin wrapper around the `O(#occupied)`
    /// [`Configuration::compact_in_place`] — kept because it also trims
    /// the dense buffer (memory) and renumbers colors exactly as before.
    /// Renumbering means: use only with permutation-invariant observables
    /// (see [`Configuration::compacted`]).
    pub fn with_compaction(mut self) -> Self {
        self.compact = true;
        self.config.compact_in_place();
        self
    }

    /// The rule driving this engine.
    pub fn rule(&self) -> &R {
        &self.rule
    }
}

impl<R: VectorStep> Engine for VectorEngine<R> {
    fn config_ref(&self) -> &Configuration {
        &self.config
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn step(&mut self) {
        self.rule.vector_step_into(&mut self.config, &mut self.rng);
        if self.compact {
            self.config.compact_in_place();
        }
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{ThreeMajority, TwoChoices, UndecidedDynamics, Voter};

    #[test]
    fn agent_engine_preserves_population() {
        let c = Configuration::uniform(200, 8);
        let mut e = AgentEngine::new(ThreeMajority, &c, 1);
        for _ in 0..20 {
            e.step();
            let cfg = e.configuration();
            assert_eq!(cfg.n() + e.undecided(), 200);
        }
        assert_eq!(e.round(), 20);
    }

    #[test]
    fn vector_engine_preserves_population() {
        let c = Configuration::uniform(500, 10);
        let mut e = VectorEngine::new(Voter, c, 2);
        for _ in 0..20 {
            e.step();
            assert_eq!(e.configuration().n(), 500);
        }
    }

    #[test]
    fn consensus_detected_and_absorbing_agent() {
        let c = Configuration::consensus(50, 3);
        let mut e = AgentEngine::new(TwoChoices, &c, 3);
        assert!(e.is_consensus());
        e.step();
        assert!(e.is_consensus());
        assert_eq!(e.configuration().support(0), 50);
    }

    #[test]
    fn small_voter_run_reaches_consensus_both_engines() {
        let c = Configuration::uniform(40, 4);
        let mut agent = AgentEngine::new(Voter, &c, 4);
        let mut vector = VectorEngine::new(Voter, c, 5);
        for e in [&mut agent as &mut dyn Engine, &mut vector as &mut dyn Engine] {
            let mut rounds = 0;
            while !e.is_consensus() && rounds < 100_000 {
                e.step();
                rounds += 1;
            }
            assert!(e.is_consensus(), "no consensus after {rounds} rounds");
        }
    }

    #[test]
    fn incremental_counts_match_recount() {
        let c = Configuration::uniform(120, 6);
        let mut e = AgentEngine::new(ThreeMajority, &c, 6);
        for _ in 0..10 {
            e.step();
            let from_counts = e.configuration();
            let recounted = Configuration::from_opinions(e.opinions(), 6);
            assert_eq!(from_counts, recounted);
        }
    }

    #[test]
    fn undecided_tracked_by_agent_engine() {
        let c = Configuration::singletons(64);
        let mut e = AgentEngine::new(UndecidedDynamics, &c, 7);
        e.step();
        assert!(e.undecided() > 0, "singleton start must create undecided nodes");
        assert!(!e.is_consensus());
        assert_eq!(e.configuration().n() + e.undecided(), 64);
    }

    #[test]
    fn engines_deterministic_per_seed() {
        let c = Configuration::uniform(100, 5);
        let run = |seed: u64| {
            let mut e = AgentEngine::new(ThreeMajority, &c, seed);
            for _ in 0..5 {
                e.step();
            }
            e.configuration()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn compaction_keeps_slots_equal_to_colors() {
        let c = Configuration::singletons(200);
        let mut e = VectorEngine::new(Voter, c, 9).with_compaction();
        let mut rounds = 0;
        while !e.is_consensus() && rounds < 100_000 {
            e.step();
            rounds += 1;
            let cfg = e.configuration();
            assert_eq!(cfg.num_slots(), cfg.num_colors(), "no dead slots after compaction");
            assert_eq!(cfg.n(), 200, "population preserved");
        }
        assert!(e.is_consensus(), "compacting engine still reaches consensus");
        assert_eq!(e.configuration().num_slots(), 1);
    }

    #[test]
    fn compaction_mean_consensus_time_matches_plain() {
        // Compaction must not change the process law: compare mean
        // consensus times of plain vs compacting engines over trials.
        let c = Configuration::singletons(64);
        let trials = 400u64;
        let mut sum_plain = 0u64;
        let mut sum_compact = 0u64;
        for t in 0..trials {
            let mut plain = VectorEngine::new(ThreeMajority, c.clone(), 50_000 + t);
            let mut compact =
                VectorEngine::new(ThreeMajority, c.clone(), 90_000 + t).with_compaction();
            for e in [&mut plain as &mut dyn Engine, &mut compact as &mut dyn Engine] {
                while !e.is_consensus() {
                    e.step();
                }
            }
            sum_plain += plain.round();
            sum_compact += compact.round();
        }
        let mp = sum_plain as f64 / trials as f64;
        let mc = sum_compact as f64 / trials as f64;
        assert!(
            (mp - mc).abs() < 0.15 * mp,
            "compaction changed the consensus-time law: {mp} vs {mc}"
        );
    }

    #[test]
    fn incremental_round_state_matches_recount_per_rule() {
        // The O(#changed) path must keep counts and caches exact along
        // whole trajectories, for every SampleAccess flavor. (Debug
        // builds additionally recount the caches densely inside every
        // apply_change_log call.)
        let c = Configuration::singletons(150);
        let mut voter =
            AgentEngine::new(Voter, &c, 11).with_round_state(RoundStateMode::Incremental);
        let mut two =
            AgentEngine::new(TwoChoices, &c, 12).with_round_state(RoundStateMode::Incremental);
        let mut three =
            AgentEngine::new(ThreeMajority, &c, 13).with_round_state(RoundStateMode::Incremental);
        for _ in 0..30 {
            voter.step();
            assert_eq!(voter.configuration(), Configuration::from_opinions(voter.opinions(), 150));
            two.step();
            assert_eq!(two.configuration(), Configuration::from_opinions(two.opinions(), 150));
            three.step();
            assert_eq!(three.configuration(), Configuration::from_opinions(three.opinions(), 150));
        }
    }

    #[test]
    fn incremental_undecided_dynamics_conserves_mass() {
        let c = Configuration::singletons(64);
        let mut e = AgentEngine::new(UndecidedDynamics, &c, 17)
            .with_round_state(RoundStateMode::Incremental);
        for _ in 0..40 {
            e.step();
            assert_eq!(e.configuration().n() + e.undecided(), 64);
            assert_eq!(e.configuration(), Configuration::from_opinions(e.opinions(), 64));
        }
    }

    #[test]
    fn incremental_deterministic_per_seed_and_reaches_consensus() {
        let c = Configuration::uniform(80, 4);
        let run = |seed: u64| {
            let mut e =
                AgentEngine::new(Voter, &c, seed).with_round_state(RoundStateMode::Incremental);
            let mut rounds = 0;
            while !e.is_consensus() && rounds < 100_000 {
                e.step();
                rounds += 1;
            }
            assert!(e.is_consensus(), "no consensus after {rounds} rounds");
            (e.round(), e.configuration())
        };
        assert_eq!(run(23), run(23));
    }

    #[test]
    fn incremental_vs_rebuild_one_step_means_agree() {
        // Same law, different randomness consumption: the one-round mean
        // support of color 0 must agree across round-state modes.
        let c = Configuration::from_counts(vec![30, 20, 10]);
        let trials = 4_000;
        let mut sum_rebuild = 0u64;
        let mut sum_incr = 0u64;
        for t in 0..trials {
            let mut r = AgentEngine::new(ThreeMajority, &c, 3000 + t);
            r.step();
            sum_rebuild += r.configuration().support(0);
            let mut i = AgentEngine::new(ThreeMajority, &c, 4000 + t)
                .with_round_state(RoundStateMode::Incremental);
            i.step();
            sum_incr += i.configuration().support(0);
        }
        let mr = sum_rebuild as f64 / trials as f64;
        let mi = sum_incr as f64 / trials as f64;
        assert!((mr - mi).abs() < 0.5, "rebuild {mr} vs incremental {mi}");
    }

    #[test]
    fn agent_vs_vector_one_step_means_agree() {
        // E7 in miniature: the one-round mean support of color 0 must agree
        // between the two engines for an AC process.
        let c = Configuration::from_counts(vec![30, 20, 10]);
        let trials = 4_000;
        let mut sum_agent = 0u64;
        let mut sum_vector = 0u64;
        for t in 0..trials {
            let mut a = AgentEngine::new(ThreeMajority, &c, 1000 + t);
            a.step();
            sum_agent += a.configuration().support(0);
            let mut v = VectorEngine::new(ThreeMajority, c.clone(), 2000 + t);
            v.step();
            sum_vector += v.configuration().support(0);
        }
        let ma = sum_agent as f64 / trials as f64;
        let mv = sum_vector as f64 / trials as f64;
        assert!((ma - mv).abs() < 0.5, "agent {ma} vs vector {mv}");
    }
}
