//! Synchronous round engines.
//!
//! Two implementations of the same semantics:
//!
//! * [`AgentEngine`] — the literal model: every node pulls uniform samples
//!   and applies its [`UpdateRule`]. `O(n·h)` per round; works for *every*
//!   rule, including non-AC processes.
//! * [`VectorEngine`] — the distributional shortcut: one draw from the
//!   exact one-step law, taken in place via
//!   [`VectorStep::vector_step_into`]. `O(#occupied colors)` per round and
//!   allocation-free; this is what makes the large-`n` sweeps — including
//!   the `k = n` singleton starts of Theorem 5 — feasible.
//!
//! Experiment E7 (and the cross-validation tests below) confirm the two
//! agree distributionally, which is exactly the paper's observation that an
//! AC-process's one-step law is `Mult(n, α(c))`.

use rand::{Rng, SeedableRng};

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{SampleAccess, UpdateRule, VectorStep};
use symbreak_sim::dist::{
    expected_window_visits, Categorical, Geometric, WindowMultinomial, WALK_CANDIDATE_CAP,
};
use symbreak_sim::rng::{Pcg64, SplitMix64};

/// A synchronous consensus-process engine.
pub trait Engine {
    /// Borrowed view of the current configuration (decided colors only).
    ///
    /// This is the cheap accessor the runners poll every round; cloning
    /// via [`Engine::configuration`] is only needed when the snapshot
    /// must outlive the engine.
    fn config_ref(&self) -> &Configuration;

    /// The current configuration (decided colors only), cloned.
    fn configuration(&self) -> Configuration {
        self.config_ref().clone()
    }

    /// Number of completed rounds.
    fn round(&self) -> u64;

    /// Advances one synchronous round.
    fn step(&mut self);

    /// Number of undecided nodes (0 for processes without an undecided
    /// state).
    fn undecided(&self) -> u64 {
        0
    }

    /// Number of remaining colors — `O(1)` from the configuration cache.
    fn num_colors(&self) -> usize {
        self.config_ref().num_colors()
    }

    /// Largest support — `O(1)` from the configuration cache.
    fn max_support(&self) -> u64 {
        self.config_ref().max_support()
    }

    /// Bias (gap between the two largest supports) — `O(1)` from the
    /// configuration cache.
    fn bias(&self) -> u64 {
        self.config_ref().bias()
    }

    /// Whether the system has reached consensus: all nodes decided on one
    /// color.
    fn is_consensus(&self) -> bool {
        self.undecided() == 0 && self.config_ref().is_consensus()
    }
}

/// How [`AgentEngine`] draws the Uniform-Pull samples of a round.
///
/// Every mode realizes the same law: a pulled sample is the opinion of a
/// uniformly random node, i.i.d. with replacement. Since only opinions
/// are observable, drawing `opinions[uniform node]` is distributionally
/// identical to drawing the opinion *category* from the current count
/// distribution (undecided included) — which one alias table per round
/// answers in `O(1)` per sample, cache-resident, instead of `n·h`
/// random-access reads of `opinions[]`. The default mode additionally
/// dispatches on what the rule *consumes*
/// ([`crate::process::SampleAccess`]): rules reading only their window's
/// multiset get per-node count vectors from a window-splitting sampler
/// (no window buffer at all), and single-peer rules get exactly one
/// categorical draw per node. The modes consume randomness differently,
/// so they realize different (equally lawful) trajectories — pinned
/// distributionally by the E7-style crossval tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingMode {
    /// Dispatch on the rule's [`crate::process::SampleAccess`]: multiset
    /// rules take per-node window splits, single-peer rules one draw per
    /// node, ordered-window rules the alias path. The default.
    #[default]
    Native,
    /// One alias table per round over the opinion counts; `O(k)` build,
    /// `O(1)` per draw, every rule fed an ordered window. The paired
    /// baseline for the native dispatch (and the pre-taxonomy default).
    AliasTable,
    /// The literal model: `gen_range(0..n)` plus a random-access read per
    /// sample. Kept for cross-validation (E7) and as the bench baseline.
    PerNode,
}

/// Agent-level engine: simulates each node explicitly.
#[derive(Debug, Clone)]
pub struct AgentEngine<R> {
    rule: R,
    opinions: Vec<Opinion>,
    next_opinions: Vec<Opinion>,
    /// Decided-color counts as a full [`Configuration`], kept in sync
    /// incrementally by [`AgentEngine::record`] so the [`Engine`]
    /// observables need no per-round recount or clone.
    config: Configuration,
    undecided: u64,
    round: u64,
    rng: Pcg64,
    /// Fast stream for the alias-table path. SplitMix64's state update is
    /// a single add, so its serial dependency chain is one cycle per
    /// draw — unlike Pcg64's 128-bit multiply, which dominates the
    /// per-node path's round time.
    fast_rng: SplitMix64,
    mode: SamplingMode,
    /// Scratch for the per-round alias-table weights (`k + 1` slots, the
    /// last one for the undecided pseudo-opinion).
    weights: Vec<f64>,
    /// Native-mode scratch: one node's window histogram (≤ `h` entries).
    window: Vec<(Opinion, u32)>,
    /// Native-mode scratch: positive-weight opinions, decreasing weight.
    native_ops: Vec<Opinion>,
    /// Native-mode scratch: the weights of `native_ops`, same order.
    native_weights: Vec<f64>,
    /// Native-mode scratch: `(weight, category)` pairs for the
    /// decreasing-weight qualifying sort.
    native_order: Vec<(f64, u32)>,
}

impl<R: UpdateRule> AgentEngine<R> {
    /// Creates an engine with all nodes decided per `config`, using the
    /// default alias-table sampling.
    pub fn new(rule: R, config: &Configuration, seed: u64) -> Self {
        Self::with_sampling(rule, config, seed, SamplingMode::default())
    }

    /// Creates an engine with an explicit [`SamplingMode`].
    pub fn with_sampling(rule: R, config: &Configuration, seed: u64, mode: SamplingMode) -> Self {
        let opinions = config.to_opinions();
        let next_opinions = opinions.clone();
        Self {
            rule,
            opinions,
            next_opinions,
            config: config.clone(),
            undecided: 0,
            round: 0,
            rng: Pcg64::seed_from_u64(seed),
            fast_rng: SplitMix64::seed_from_u64(seed ^ 0x6A09_E667_F3BC_C909),
            mode,
            weights: Vec::new(),
            window: Vec::new(),
            native_ops: Vec::new(),
            native_weights: Vec::new(),
            native_order: Vec::new(),
        }
    }

    /// The per-node opinions of the current round.
    pub fn opinions(&self) -> &[Opinion] {
        &self.opinions
    }

    /// The rule driving this engine.
    pub fn rule(&self) -> &R {
        &self.rule
    }

    /// The sampling mode in use.
    pub fn sampling_mode(&self) -> SamplingMode {
        self.mode
    }

    /// Records node `u`'s transition `own → new`, maintaining the
    /// incremental count/undecided bookkeeping (the configuration's
    /// derived caches are refreshed once per round in [`Engine::step`]).
    #[inline]
    fn record(&mut self, u: usize, own: Opinion, new: Opinion) {
        self.next_opinions[u] = new;
        if new != own {
            match (own.is_undecided(), new.is_undecided()) {
                (false, false) => {
                    self.config.shift_unit(Some(own.index()), Some(new.index()));
                }
                (false, true) => {
                    self.config.shift_unit(Some(own.index()), None);
                    self.undecided += 1;
                }
                (true, false) => {
                    self.undecided -= 1;
                    self.config.shift_unit(None, Some(new.index()));
                }
                (true, true) => unreachable!("new == own was excluded"),
            }
        }
    }

    /// The literal sampling path: `n·h` uniform node draws with
    /// random-access opinion reads.
    fn step_per_node(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let mut samples = vec![Opinion::new(0); h];
        for u in 0..n {
            for s in samples.iter_mut() {
                // Uniform Pull: sample a uniformly random node (with
                // replacement, possibly u itself) and read its opinion.
                *s = self.opinions[self.rng.gen_range(0..n)];
            }
            let own = self.opinions[u];
            let new = self.rule.update(own, &samples, &mut self.rng);
            self.record(u, own, new);
        }
    }

    /// The alias-table path: one `O(k)` sampler build per round, then
    /// each of the `n·h` samples is an `O(1)` draw from the opinion
    /// distribution — no random-access reads of `opinions[]`.
    ///
    /// When one opinion holds at least half the population — true for
    /// the vast majority of any consensus trajectory — the sampler
    /// switches to run-length form: the i.i.d. stream is generated as
    /// geometric runs of the plurality opinion punctuated by draws from
    /// the conditional distribution, which is distributionally identical
    /// and makes concentrated rounds nearly free.
    fn step_alias(&mut self) {
        // Snapshot the round-start distribution (counts mutate as nodes
        // update, but synchronous semantics sample the old round).
        self.snapshot_weights();
        self.step_alias_with_weights();
    }

    /// The alias-path round body, assuming [`AgentEngine::snapshot_weights`]
    /// already ran this round — shared with the multiset path's diverse
    /// fallback so a fallback round snapshots only once.
    fn step_alias_with_weights(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let k = self.config.num_slots();
        let mut sampler = RoundSampler::build(&self.weights, n as u64, &mut self.fast_rng);
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        if let RoundSampler::Constant(top) = sampler {
            // Absorbed (or all-undecided) rounds: every pull returns the
            // same opinion, so the sample vector is hoisted out of the
            // node loop entirely — the round is pure rule evaluation.
            let samples = vec![decode(top); h];
            for u in 0..n {
                let own = self.opinions[u];
                let new = self.rule.update(own, &samples, &mut self.fast_rng);
                self.record(u, own, new);
            }
            return;
        }
        let mut samples = vec![Opinion::new(0); h];
        for u in 0..n {
            for s in samples.iter_mut() {
                *s = decode(sampler.draw(&mut self.fast_rng));
            }
            let own = self.opinions[u];
            // The rule's internal randomness rides the same fast stream:
            // a Pcg64 draw per tie-break would put the 128-bit multiply
            // latency right back on the critical path.
            let new = self.rule.update(own, &samples, &mut self.fast_rng);
            self.record(u, own, new);
        }
    }

    /// Snapshots the round-start opinion distribution into
    /// `self.weights`: `k + 1` categories, the last one the undecided
    /// pseudo-opinion.
    fn snapshot_weights(&mut self) {
        self.weights.clear();
        self.weights.extend(self.config.counts().iter().map(|&c| c as f64));
        self.weights.push(self.undecided as f64);
    }

    /// The single-peer path: one categorical draw per node, no window
    /// buffer. [`SampleAccess::SinglePeer`] guarantees
    /// `update(own, [s], _) == s`, but the (statically dispatched,
    /// trivially inlined) rule call is kept so the path needs no trust
    /// beyond the declared window size.
    fn step_single_peer(&mut self) {
        debug_assert_eq!(self.rule.sample_count(), 1, "single-peer rules pull one sample");
        let n = self.opinions.len();
        let k = self.config.num_slots();
        self.snapshot_weights();
        let mut sampler = RoundSampler::build(&self.weights, n as u64, &mut self.fast_rng);
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        for u in 0..n {
            let s = decode(sampler.draw(&mut self.fast_rng));
            let own = self.opinions[u];
            let new = self.rule.update(own, &[s], &mut self.fast_rng);
            self.record(u, own, new);
        }
    }

    /// The multiset path: rules declaring [`SampleAccess::Multiset`] get
    /// per-node window *histograms* instead of dealt sample sequences —
    /// lawful because i.i.d. windows are exchangeable, and per-node
    /// windows under Uniform Pull are independent `Mult(h, p)` draws.
    ///
    /// A [`WindowMultinomial`] walk with all conditional binomials
    /// cached delivers a window in [`expected_window_visits`] draws —
    /// ~one once a category dominates, versus `h` draws plus window
    /// writes on the ordered path — so the walk runs exactly when that
    /// statistic beats `h`; otherwise the round takes the ordered alias
    /// path unchanged (a multiset rule consumes an ordered window just
    /// fine, so the fallback costs nothing over the pre-taxonomy
    /// behaviour).
    fn step_multiset(&mut self) {
        let n = self.opinions.len();
        let h = self.rule.sample_count();
        let k = self.config.num_slots();
        if h <= 1 {
            // A one-draw window walk can never beat one draw: with d ≥ 2
            // live categories the expected visit count exceeds 1, so the
            // walk statistic would reject every round — skip straight to
            // the alias path (h = 1 multiset rules like the undecided
            // dynamics consume an ordered 1-window identically).
            return self.step_alias();
        }
        self.snapshot_weights();

        // Positive categories, by decreasing weight so the window walk's
        // early exit bites.
        let d = self.weights.iter().filter(|&&w| w > 0.0).count();
        if d > WALK_CANDIDATE_CAP {
            return self.step_alias_with_weights();
        }
        self.native_ops.clear();
        self.native_weights.clear();
        self.native_order.clear();
        self.native_order.extend(
            self.weights.iter().enumerate().filter(|&(_, &w)| w > 0.0).map(|(i, &w)| (w, i as u32)),
        );
        self.native_order.sort_by(|a, b| b.0.total_cmp(&a.0));
        let decode =
            |idx: usize| if idx == k { Opinion::UNDECIDED } else { Opinion::new(idx as u32) };
        for &(w, i) in &self.native_order {
            self.native_ops.push(decode(i as usize));
            self.native_weights.push(w);
        }

        if d == 1 {
            // Absorbed round: every window is h copies of the one
            // surviving opinion — pure rule evaluation.
            self.window.clear();
            self.window.push((self.native_ops[0], h as u32));
            for u in 0..n {
                let own = self.opinions[u];
                let new = self
                    .rule
                    .as_multiset()
                    .expect("Multiset access requires a MultisetRule impl")
                    .update_from_counts(own, &self.window, &mut self.fast_rng);
                self.record(u, own, new);
            }
            return;
        }

        if expected_window_visits(&self.native_weights, h) > h as f64 {
            // Too diverse for the walk to pay: the ordered path is the
            // better delivery of the same law.
            return self.step_alias_with_weights();
        }

        let walk = WindowMultinomial::new(&self.native_weights, h);
        for u in 0..n {
            self.window.clear();
            let ops = &self.native_ops;
            let window = &mut self.window;
            walk.sample_window(&mut self.fast_rng, |j, x| window.push((ops[j], x as u32)));
            let own = self.opinions[u];
            let new = self
                .rule
                .as_multiset()
                .expect("Multiset access requires a MultisetRule impl")
                .update_from_counts(own, &self.window, &mut self.fast_rng);
            self.record(u, own, new);
        }
    }
}

impl<R: UpdateRule> Engine for AgentEngine<R> {
    fn config_ref(&self) -> &Configuration {
        &self.config
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn undecided(&self) -> u64 {
        self.undecided
    }

    fn step(&mut self) {
        if !self.opinions.is_empty() {
            match self.mode {
                SamplingMode::Native => match self.rule.sample_access() {
                    SampleAccess::OrderedWindow => self.step_alias(),
                    SampleAccess::Multiset => self.step_multiset(),
                    SampleAccess::SinglePeer => self.step_single_peer(),
                },
                SamplingMode::AliasTable => self.step_alias(),
                SamplingMode::PerNode => self.step_per_node(),
            }
            std::mem::swap(&mut self.opinions, &mut self.next_opinions);
            // `record` defers every derived cache (an exact per-shift
            // occupancy list would make many-color rounds quadratic);
            // one O(k) rebuild per round keeps the observables exact
            // and is dominated by the O(n·h) round itself.
            self.config.rebuild_caches();
        }
        self.round += 1;
    }
}

/// Plurality mass above which [`RoundSampler`] uses run-length form.
const RUN_LENGTH_THRESHOLD: f64 = 0.5;

/// Truncation point of the run-length alias table: run lengths `0..L`
/// draw in `O(1)`; the `≥ L` tail (probability `p_top^L`) falls back to
/// the logarithm-based geometric sampler, shifted by `L`.
const RUN_TABLE_LEN: usize = 64;

/// Per-round sampler over the opinion distribution (categories `0..k`
/// are decided colors, category `k` is undecided).
///
/// All three forms realize the same i.i.d. law; the form is chosen from
/// the round-start counts:
///
/// * `Constant` — one opinion holds everything (absorbed state): no
///   randomness needed at all.
/// * `RunLength` — an opinion holds ≥ half the mass: emit geometric
///   runs of it, punctuated by conditional draws. A run of length `G ∼
///   Geom(1−p)` followed by one conditional draw is exactly the
///   run-length encoding of i.i.d. categorical draws with an atom `p`.
///   Run lengths come from an alias table over the truncated geometric
///   pmf (`O(1)` per run) — the logarithm-based [`Geometric`] inversion
///   costs tens of nanoseconds and would otherwise run once per
///   non-plurality sample; it serves only the `≥ RUN_TABLE_LEN` tail,
///   which is exact by memorylessness.
/// * `Alias` — the general case: Vose alias table, `O(1)` per draw.
enum RoundSampler {
    Constant(usize),
    RunLength {
        top: usize,
        run: u64,
        run_table: Categorical,
        tail: Geometric,
        conditional: Categorical,
    },
    Alias(Categorical),
}

impl RoundSampler {
    fn build(weights: &[f64], total: u64, rng: &mut SplitMix64) -> Self {
        let mut top = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if w > weights[top] {
                top = i;
            }
        }
        let p_top = weights[top] / total as f64;
        if p_top >= 1.0 {
            return RoundSampler::Constant(top);
        }
        if p_top >= RUN_LENGTH_THRESHOLD {
            let mut conditional_weights = weights.to_vec();
            conditional_weights[top] = 0.0;
            let q = 1.0 - p_top;
            // P(run = g) = q·p^g for g < L, P(run ≥ L) = p^L.
            let mut run_weights = Vec::with_capacity(RUN_TABLE_LEN + 1);
            let mut pg = 1.0f64;
            for _ in 0..RUN_TABLE_LEN {
                run_weights.push(q * pg);
                pg *= p_top;
            }
            run_weights.push(pg);
            let run_table = Categorical::new(&run_weights);
            let tail = Geometric::new(q);
            let run = Self::draw_run(&run_table, &tail, rng);
            return RoundSampler::RunLength {
                top,
                run,
                run_table,
                tail,
                conditional: Categorical::new(&conditional_weights),
            };
        }
        RoundSampler::Alias(Categorical::new(weights))
    }

    /// Draws one run length: `O(1)` from the truncated table, with the
    /// geometric tail handled exactly via memorylessness.
    #[inline]
    fn draw_run(run_table: &Categorical, tail: &Geometric, rng: &mut SplitMix64) -> u64 {
        let g = run_table.sample(rng);
        if g < RUN_TABLE_LEN {
            g as u64
        } else {
            RUN_TABLE_LEN as u64 + tail.sample(rng)
        }
    }

    #[inline]
    fn draw(&mut self, rng: &mut SplitMix64) -> usize {
        match self {
            RoundSampler::Constant(top) => *top,
            RoundSampler::RunLength { top, run, run_table, tail, conditional } => {
                if *run > 0 {
                    *run -= 1;
                    *top
                } else {
                    let s = conditional.sample(rng);
                    *run = Self::draw_run(run_table, tail, rng);
                    s
                }
            }
            RoundSampler::Alias(table) => table.sample(rng),
        }
    }
}

/// Vectorized engine: one exact draw from the one-step law per round,
/// taken in place via [`VectorStep::vector_step_into`] — allocation-free
/// and `O(#occupied)` for the rules in this crate.
#[derive(Debug, Clone)]
pub struct VectorEngine<R> {
    rule: R,
    config: Configuration,
    round: u64,
    rng: Pcg64,
    compact: bool,
}

impl<R: VectorStep> VectorEngine<R> {
    /// Creates an engine starting from `config`.
    pub fn new(rule: R, config: Configuration, seed: u64) -> Self {
        Self { rule, config, round: 0, rng: Pcg64::seed_from_u64(seed), compact: false }
    }

    /// Enables zero-slot compaction after every round.
    ///
    /// Historically this was what kept long runs at `O(remaining colors)`
    /// per round; the occupancy-aware configuration now does that by
    /// itself, so this is a thin wrapper around the `O(#occupied)`
    /// [`Configuration::compact_in_place`] — kept because it also trims
    /// the dense buffer (memory) and renumbers colors exactly as before.
    /// Renumbering means: use only with permutation-invariant observables
    /// (see [`Configuration::compacted`]).
    pub fn with_compaction(mut self) -> Self {
        self.compact = true;
        self.config.compact_in_place();
        self
    }

    /// The rule driving this engine.
    pub fn rule(&self) -> &R {
        &self.rule
    }
}

impl<R: VectorStep> Engine for VectorEngine<R> {
    fn config_ref(&self) -> &Configuration {
        &self.config
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn step(&mut self) {
        self.rule.vector_step_into(&mut self.config, &mut self.rng);
        if self.compact {
            self.config.compact_in_place();
        }
        self.round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{ThreeMajority, TwoChoices, UndecidedDynamics, Voter};

    #[test]
    fn agent_engine_preserves_population() {
        let c = Configuration::uniform(200, 8);
        let mut e = AgentEngine::new(ThreeMajority, &c, 1);
        for _ in 0..20 {
            e.step();
            let cfg = e.configuration();
            assert_eq!(cfg.n() + e.undecided(), 200);
        }
        assert_eq!(e.round(), 20);
    }

    #[test]
    fn vector_engine_preserves_population() {
        let c = Configuration::uniform(500, 10);
        let mut e = VectorEngine::new(Voter, c, 2);
        for _ in 0..20 {
            e.step();
            assert_eq!(e.configuration().n(), 500);
        }
    }

    #[test]
    fn consensus_detected_and_absorbing_agent() {
        let c = Configuration::consensus(50, 3);
        let mut e = AgentEngine::new(TwoChoices, &c, 3);
        assert!(e.is_consensus());
        e.step();
        assert!(e.is_consensus());
        assert_eq!(e.configuration().support(0), 50);
    }

    #[test]
    fn small_voter_run_reaches_consensus_both_engines() {
        let c = Configuration::uniform(40, 4);
        let mut agent = AgentEngine::new(Voter, &c, 4);
        let mut vector = VectorEngine::new(Voter, c, 5);
        for e in [&mut agent as &mut dyn Engine, &mut vector as &mut dyn Engine] {
            let mut rounds = 0;
            while !e.is_consensus() && rounds < 100_000 {
                e.step();
                rounds += 1;
            }
            assert!(e.is_consensus(), "no consensus after {rounds} rounds");
        }
    }

    #[test]
    fn incremental_counts_match_recount() {
        let c = Configuration::uniform(120, 6);
        let mut e = AgentEngine::new(ThreeMajority, &c, 6);
        for _ in 0..10 {
            e.step();
            let from_counts = e.configuration();
            let recounted = Configuration::from_opinions(e.opinions(), 6);
            assert_eq!(from_counts, recounted);
        }
    }

    #[test]
    fn undecided_tracked_by_agent_engine() {
        let c = Configuration::singletons(64);
        let mut e = AgentEngine::new(UndecidedDynamics, &c, 7);
        e.step();
        assert!(e.undecided() > 0, "singleton start must create undecided nodes");
        assert!(!e.is_consensus());
        assert_eq!(e.configuration().n() + e.undecided(), 64);
    }

    #[test]
    fn engines_deterministic_per_seed() {
        let c = Configuration::uniform(100, 5);
        let run = |seed: u64| {
            let mut e = AgentEngine::new(ThreeMajority, &c, seed);
            for _ in 0..5 {
                e.step();
            }
            e.configuration()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn compaction_keeps_slots_equal_to_colors() {
        let c = Configuration::singletons(200);
        let mut e = VectorEngine::new(Voter, c, 9).with_compaction();
        let mut rounds = 0;
        while !e.is_consensus() && rounds < 100_000 {
            e.step();
            rounds += 1;
            let cfg = e.configuration();
            assert_eq!(cfg.num_slots(), cfg.num_colors(), "no dead slots after compaction");
            assert_eq!(cfg.n(), 200, "population preserved");
        }
        assert!(e.is_consensus(), "compacting engine still reaches consensus");
        assert_eq!(e.configuration().num_slots(), 1);
    }

    #[test]
    fn compaction_mean_consensus_time_matches_plain() {
        // Compaction must not change the process law: compare mean
        // consensus times of plain vs compacting engines over trials.
        let c = Configuration::singletons(64);
        let trials = 400u64;
        let mut sum_plain = 0u64;
        let mut sum_compact = 0u64;
        for t in 0..trials {
            let mut plain = VectorEngine::new(ThreeMajority, c.clone(), 50_000 + t);
            let mut compact =
                VectorEngine::new(ThreeMajority, c.clone(), 90_000 + t).with_compaction();
            for e in [&mut plain as &mut dyn Engine, &mut compact as &mut dyn Engine] {
                while !e.is_consensus() {
                    e.step();
                }
            }
            sum_plain += plain.round();
            sum_compact += compact.round();
        }
        let mp = sum_plain as f64 / trials as f64;
        let mc = sum_compact as f64 / trials as f64;
        assert!(
            (mp - mc).abs() < 0.15 * mp,
            "compaction changed the consensus-time law: {mp} vs {mc}"
        );
    }

    #[test]
    fn agent_vs_vector_one_step_means_agree() {
        // E7 in miniature: the one-round mean support of color 0 must agree
        // between the two engines for an AC process.
        let c = Configuration::from_counts(vec![30, 20, 10]);
        let trials = 4_000;
        let mut sum_agent = 0u64;
        let mut sum_vector = 0u64;
        for t in 0..trials {
            let mut a = AgentEngine::new(ThreeMajority, &c, 1000 + t);
            a.step();
            sum_agent += a.configuration().support(0);
            let mut v = VectorEngine::new(ThreeMajority, c.clone(), 2000 + t);
            v.step();
            sum_vector += v.configuration().support(0);
        }
        let ma = sum_agent as f64 / trials as f64;
        let mv = sum_vector as f64 / trials as f64;
        assert!((ma - mv).abs() < 0.5, "agent {ma} vs vector {mv}");
    }
}
