//! The Voter process (a.k.a. Polling): sample one node, adopt its opinion.
//!
//! Voter is the baseline AC-process with `α_i(c) = c_i / n` (Equation (1)).
//! The paper's Phase-1 analysis bounds 3-Majority by Voter, whose own
//! behaviour is controlled through the coalescing-random-walk duality
//! (Lemma 4, implemented in `symbreak-graphs`).

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{
    ac_vector_step, ac_vector_step_into, AcProcess, SampleAccess, UpdateRule, VectorStep,
};

/// The Voter update rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Voter;

impl Voter {
    /// Creates the rule.
    pub fn new() -> Self {
        Voter
    }
}

impl UpdateRule for Voter {
    fn name(&self) -> &'static str {
        "Voter"
    }

    fn sample_count(&self) -> usize {
        1
    }

    fn update(&self, _own: Opinion, samples: &[Opinion], _rng: &mut dyn RngCore) -> Opinion {
        samples[0]
    }

    /// Voter is *the* single-peer rule: the next opinion **is** the one
    /// drawn sample, so engines and the shard wire path may skip sample
    /// materialization entirely.
    fn sample_access(&self) -> SampleAccess {
        SampleAccess::SinglePeer
    }
}

impl AcProcess for Voter {
    fn alpha(&self, c: &Configuration) -> Vec<f64> {
        c.fractions()
    }

    fn alpha_into(&self, c: &Configuration, out: &mut Vec<f64>) {
        let n = c.n() as f64;
        out.clear();
        out.extend(c.occupied_counts().map(|cnt| cnt as f64 / n));
    }
}

impl VectorStep for Voter {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        ac_vector_step(self, c, rng)
    }

    /// Allocation-free sparse step: `Mult(n, c/n)` over the occupied
    /// slots, `O(#occupied)` per round.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        ac_vector_step_into(self, c, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn alpha_is_fraction_vector() {
        let c = Configuration::from_counts(vec![3, 1, 0]);
        assert_eq!(Voter.alpha(&c), vec![0.75, 0.25, 0.0]);
    }

    #[test]
    fn update_copies_sample() {
        let mut rng = Pcg64::seed_from_u64(1);
        let out = Voter.update(Opinion::new(5), &[Opinion::new(2)], &mut rng);
        assert_eq!(out, Opinion::new(2));
    }

    #[test]
    fn vector_step_preserves_mass() {
        let mut rng = Pcg64::seed_from_u64(2);
        let c = Configuration::uniform(1000, 10);
        let next = Voter.vector_step(&c, &mut rng);
        assert_eq!(next.n(), 1000);
        assert_eq!(next.num_slots(), 10);
    }

    #[test]
    fn consensus_is_absorbing() {
        let mut rng = Pcg64::seed_from_u64(3);
        let c = Configuration::consensus(50, 4);
        let next = Voter.vector_step(&c, &mut rng);
        assert_eq!(next, c);
    }

    #[test]
    fn sample_count_is_one() {
        assert_eq!(Voter.sample_count(), 1);
        assert_eq!(Voter.name(), "Voter");
    }
}
