//! The lazy Voter process of \[BGKMT16\]: with probability `1 − p` a node
//! does nothing; with probability `p` it performs a Voter step.
//!
//! The paper's Lemma 3 pointedly does **not** need laziness ("their
//! analysis relies critically on the fact that their process is lazy …
//! while our proof does not require any laziness"); this rule lets the
//! harness measure the cost of laziness directly. Interestingly it is
//! *less* than the naive `1/p` rescaling: in the coalescing dual on the
//! complete graph, a pair of half-lazy walks meets with probability
//! `(p² + 2p(1−p))/n = 3/(4n)` per round versus `1/n` for fully active
//! walks (a stationary target is easier to hit than a moving one), so
//! half-lazy consensus is only ≈ 4/3 slower, not 2× slower.
//!
//! Lazy Voter is *not* an AC-process — an inactive node keeps its own
//! opinion — but like 2-Choices it has an exact `O(k)` one-step
//! decomposition.

use rand::{Rng, RngCore};

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{with_step_scratch, ExpectedUpdate, UpdateRule, VectorStep};
use symbreak_sim::dist::{sample_multinomial_into, sample_multinomial_sparse_into, Binomial};

/// Lazy Voter with per-round activation probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LazyVoter {
    p: f64,
}

impl LazyVoter {
    /// Creates a lazy Voter that acts with probability `p` each round.
    ///
    /// # Panics
    /// Panics unless `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "activation probability must lie in (0, 1]");
        Self { p }
    }

    /// The canonical half-lazy variant (`p = 1/2`), as in \[BGKMT16\].
    pub fn half() -> Self {
        Self::new(0.5)
    }

    /// Activation probability.
    pub fn activity(&self) -> f64 {
        self.p
    }
}

impl UpdateRule for LazyVoter {
    fn name(&self) -> &'static str {
        "Lazy Voter"
    }

    fn sample_count(&self) -> usize {
        1
    }

    fn update(&self, own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion {
        if rng.gen::<f64>() < self.p {
            samples[0]
        } else {
            own
        }
    }
}

impl ExpectedUpdate for LazyVoter {
    /// `E[x'] = (1 − p)·x + p·x = x`: like Voter, no drift at all.
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64> {
        c.fractions()
    }
}

impl VectorStep for LazyVoter {
    /// Per color `j`: `Bin(c_j, p)` nodes wake up and redistribute
    /// multinomially over `c/n`; sleepers stay.
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        let k = c.num_slots();
        let mut next = Vec::with_capacity(k);
        let mut awake = 0u64;
        for &cj in c.counts() {
            let w = Binomial::new(cj, self.p).sample(rng);
            awake += w;
            next.push(cj - w);
        }
        if awake > 0 {
            let theta = c.fractions();
            let mut gained = vec![0u64; k];
            sample_multinomial_into(awake, &theta, rng, &mut gained);
            for (n, g) in next.iter_mut().zip(&gained) {
                *n += g;
            }
        }
        Configuration::from_counts(next)
    }

    /// Allocation-free sparse step: wake-up binomials and the Voter
    /// redistribution walked over the occupied slots only.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        let n = c.n();
        if n == 0 {
            return;
        }
        let nf = n as f64;
        let p = self.p;
        with_step_scratch(|s| {
            s.counts.clear();
            s.counts.extend(c.occupied_counts());
            c.rewrite_occupied(|occ, counts| {
                let mut awake = 0u64;
                for (j, &i) in occ.iter().enumerate() {
                    let cj = s.counts[j];
                    let w = Binomial::new(cj, p).sample(rng);
                    awake += w;
                    counts[i as usize] = cj - w;
                }
                if awake > 0 {
                    s.weights.clear();
                    s.weights.extend(s.counts.iter().map(|&cj| cj as f64 / nf));
                    sample_multinomial_sparse_into(awake, &s.weights, occ, rng, counts);
                }
            });
        });
        debug_assert_eq!(c.n(), n, "lazy Voter step must preserve the population");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn full_activity_equals_voter_semantics() {
        let mut rng = Pcg64::seed_from_u64(1);
        let lazy = LazyVoter::new(1.0);
        for _ in 0..100 {
            assert_eq!(lazy.update(op(9), &[op(3)], &mut rng), op(3));
        }
    }

    #[test]
    fn activation_frequency_matches_p() {
        let mut rng = Pcg64::seed_from_u64(2);
        let lazy = LazyVoter::new(0.3);
        let trials = 50_000;
        let mut acted = 0;
        for _ in 0..trials {
            if lazy.update(op(0), &[op(1)], &mut rng) == op(1) {
                acted += 1;
            }
        }
        let freq = acted as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "activation freq {freq}");
    }

    #[test]
    fn vector_step_preserves_mass_and_consensus() {
        let mut rng = Pcg64::seed_from_u64(3);
        let c = Configuration::uniform(500, 5);
        assert_eq!(LazyVoter::half().vector_step(&c, &mut rng).n(), 500);
        let fixed = Configuration::consensus(64, 2);
        assert_eq!(LazyVoter::half().vector_step(&fixed, &mut rng), fixed);
    }

    #[test]
    fn vector_step_mean_is_driftless() {
        let c = Configuration::from_counts(vec![70, 30]);
        let mut rng = Pcg64::seed_from_u64(4);
        let trials = 20_000;
        let mut sum0 = 0u64;
        for _ in 0..trials {
            sum0 += LazyVoter::half().vector_step(&c, &mut rng).support(0);
        }
        let mean = sum0 as f64 / trials as f64;
        assert!((mean - 70.0).abs() < 0.3, "lazy voter must be driftless, mean {mean}");
    }

    #[test]
    fn laziness_slows_consensus_by_four_thirds() {
        // Coalescing-dual argument (module docs): half-lazy pairs meet at
        // rate 3/(4n) vs 1/n, so consensus is ≈ 4/3 slower — NOT 2x.
        use crate::engine::{Engine, VectorEngine};
        let start = Configuration::uniform(64, 8);
        let mean_time = |p: f64, base_seed: u64| {
            let trials = 200;
            let total: u64 = (0..trials)
                .map(|t| {
                    let mut e = VectorEngine::new(LazyVoter::new(p), start.clone(), base_seed + t);
                    let mut rounds = 0;
                    while !e.is_consensus() {
                        e.step();
                        rounds += 1;
                    }
                    rounds
                })
                .sum();
            total as f64 / trials as f64
        };
        let fast = mean_time(1.0, 10_000);
        let slow = mean_time(0.5, 20_000);
        let ratio = slow / fast;
        assert!(
            (1.15..=1.55).contains(&ratio),
            "expected ≈4/3 slowdown at half activity, got {ratio:.2} ({fast:.1} vs {slow:.1})"
        );
    }

    #[test]
    #[should_panic(expected = "activation probability")]
    fn zero_activity_panics() {
        LazyVoter::new(0.0);
    }
}
