//! The 3-Majority process ("comply"): sample three nodes; adopt the
//! majority color among the samples, or a random sample's color if all
//! three differ.
//!
//! 3-Majority is an AC-process with process function (Equation (2))
//!
//! ```text
//! α_i(c) = x_i · (1 + x_i − ‖x‖₂²),   x = c/n.
//! ```
//!
//! [`ThreeMajorityAlt`] implements the paper's reformulation — run
//! 2-Choices, and on a mismatch fall back to Voter with a fresh sample —
//! which is distributionally identical (the test-suite checks this, and
//! Experiment E7 validates both against the multinomial law).

use rand::{Rng, RngCore};

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{
    ac_vector_step, ac_vector_step_into, with_step_scratch, AcProcess, MultisetRule, SampleAccess,
    UpdateRule, VectorStep,
};
use symbreak_sim::dist::{sample_multinomial_into, FenwickPool, GroupSplitter, Hypergeometric};

/// The direct 3-Majority update rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeMajority;

impl ThreeMajority {
    /// Creates the rule.
    pub fn new() -> Self {
        ThreeMajority
    }
}

impl UpdateRule for ThreeMajority {
    fn name(&self) -> &'static str {
        "3-Majority"
    }

    fn sample_count(&self) -> usize {
        3
    }

    fn update(&self, _own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion {
        let [a, b, c] = samples else { panic!("3-Majority needs exactly three samples") };
        // If any two agree, adopt that color.
        if a == b || a == c {
            return *a;
        }
        if b == c {
            return *b;
        }
        // All distinct: adopt one uniformly at random (equivalently, a
        // fixed sample — see the paper's footnote 1; we use the random
        // variant).
        samples[rng.gen_range(0..3usize)]
    }

    fn sample_access(&self) -> SampleAccess {
        SampleAccess::Multiset
    }

    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        Some(self)
    }
}

impl MultisetRule for ThreeMajority {
    fn update_from_counts(
        &self,
        _own: Opinion,
        counts: &[(Opinion, u32)],
        rng: &mut dyn RngCore,
    ) -> Opinion {
        debug_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u32>(), 3);
        // A window of three holds a repeated opinion iff it has fewer
        // than three distinct entries; otherwise the tie-break adopts a
        // uniform sample, which over three distinct singletons is a
        // uniform entry.
        match counts {
            [(o, _)] => *o,
            [(a, ca), (b, _)] => {
                if *ca >= 2 {
                    *a
                } else {
                    *b
                }
            }
            _ => counts[rng.gen_range(0..3usize)].0,
        }
    }

    /// Closed-form aggregate: 3-Majority ignores `own`, and for a
    /// window of three i.i.d. draws from *any* categorical `θ` the
    /// majority-or-random-tiebreak outcome lands on entry `j` with
    /// probability `θ_j (1 + θ_j − ‖θ‖₂²)` — Equation (2) evaluated on
    /// the sample distribution rather than the configuration (the
    /// derivation never uses that `θ` is the global fraction vector).
    /// So the whole stepping population is one `Mult(m, α(θ))` draw,
    /// `O(#values)` regardless of group counts.
    fn condensed_push_step(
        &self,
        groups: &[(Opinion, u64)],
        values: &[Opinion],
        weights: &[f64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        let nodes: u64 = groups.iter().map(|&(_, c)| c).sum();
        if nodes == 0 {
            return;
        }
        with_step_scratch(|s| {
            let total: f64 = weights.iter().sum();
            let norm_sq: f64 = weights
                .iter()
                .map(|&w| {
                    let x = w / total;
                    x * x
                })
                .sum();
            s.weights.clear();
            s.weights.extend(weights.iter().map(|&w| {
                let x = w / total;
                x * (1.0 + x - norm_sq)
            }));
            s.aux_counts.clear();
            s.aux_counts.resize(values.len(), 0);
            sample_multinomial_into(nodes, &s.weights, rng, &mut s.aux_counts);
            for (j, &c) in s.aux_counts.iter().enumerate() {
                if c > 0 {
                    out.push((values[j], c));
                }
            }
        });
    }

    /// 3-Majority reads nothing of `own` — the whole condensed pull
    /// round is one pooled-block call.
    fn own_insensitive(&self) -> bool {
        true
    }

    /// Exact aggregate consumption of a pooled without-replacement
    /// block, `O(#values + #cross·log #values)` instead of per-window.
    ///
    /// Dealing the block into `count` windows and updating each is
    /// distributionally the [`ThreeMajorityAlt`] rule on uniformly
    /// *ordered* windows (a dealt window conditioned on its multiset is
    /// a uniform arrangement, and the alt rule agrees with
    /// majority-or-random-tiebreak on every multiset). Under the alt
    /// rule a window's outcome is its pair value when slots 1 and 2
    /// match, else its slot-3 "voter" ball. Slot positions of a uniform
    /// dealing are exchangeable, so:
    ///
    /// * the voter balls `V` are a uniform `count`-subset of the block,
    /// * the slot-1 balls `F` are a uniform `count`-subset of the rest,
    /// * the slot-2 balls `S` are the remainder, and the pairing `F↔S`
    ///   is a uniform bijection, independent of which voter ball sits
    ///   in which window.
    ///
    /// The bijection's per-category match counts are revealed
    /// sequentially: conditioned on the categories processed so far, the
    /// partners of category `j`'s `f_j` balls are a uniform
    /// `f_j`-subset of the remaining `S` pool, so the number of matches
    /// `M_j` is hypergeometric and the `f_j − M_j` cross partners are a
    /// uniform subset of `S` minus category `j` (dealt and discarded —
    /// those windows fall to their voter ball). Matched windows emit
    /// their pair value; the `count − ΣM_j` unmatched windows emit a
    /// uniform subset of `V`.
    fn condensed_window_step(
        &self,
        _own: Opinion,
        count: u64,
        values: &[Opinion],
        block: &mut [u64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        debug_assert_eq!(block.iter().sum::<u64>(), count * 3, "block mass must be count·3");
        if count == 0 {
            return;
        }
        with_step_scratch(|s| {
            // Voter balls: a uniform count-subset of the block; the
            // remainder (2·count balls) feeds the pair slots.
            let voters = &mut s.aux_counts;
            voters.clear();
            voters.resize(values.len(), 0);
            GroupSplitter::new(block).draw_block(count, rng, |j, x| voters[j] += x);
            // Slot-1 balls: a uniform count-subset of the remainder.
            let first = &mut s.aux_counts2;
            first.clear();
            first.resize(values.len(), 0);
            GroupSplitter::new(block).draw_block(count, rng, |j, x| first[j] += x);
            // `block` now holds S, the slot-2 partner pool.
            let mut partners = FenwickPool::new(block);
            let mut matched = 0u64;
            for (j, &fj) in first.iter().enumerate() {
                if fj == 0 {
                    continue;
                }
                let sj = partners.count(j);
                let pool = partners.remaining();
                let mj =
                    if sj == pool { fj } else { Hypergeometric::new(pool, sj, fj).sample(rng) };
                if mj > 0 {
                    out.push((values[j], mj));
                    partners.remove(j, mj);
                    matched += mj;
                }
                let cross = fj - mj;
                if cross > 0 {
                    // Cross partners: uniform over S minus category j
                    // (mask it out for the deal), then discarded — their
                    // windows adopt voter balls below.
                    let mask = partners.count(j);
                    partners.remove(j, mask);
                    partners.deal(cross, rng, |_cat, _c| {});
                    partners.add(j, mask);
                }
            }
            // Unmatched windows adopt a uniform subset of the voter
            // balls (the window↔voter assignment is uniform and
            // independent of the pairing).
            let unmatched = count - matched;
            if unmatched > 0 {
                GroupSplitter::new(voters).draw_block(unmatched, rng, |j, x| {
                    out.push((values[j], x));
                });
            }
        });
    }
}

impl AcProcess for ThreeMajority {
    fn alpha(&self, c: &Configuration) -> Vec<f64> {
        alpha_three_majority(c)
    }

    fn alpha_into(&self, c: &Configuration, out: &mut Vec<f64>) {
        let n = c.n() as f64;
        let norm_sq = c.l2_norm_sq();
        out.clear();
        out.extend(c.occupied_counts().map(|cnt| {
            let x = cnt as f64 / n;
            x * (1.0 + x - norm_sq)
        }));
    }
}

impl VectorStep for ThreeMajority {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        ac_vector_step(self, c, rng)
    }

    /// Allocation-free sparse step: Equation (2)'s `α` evaluated per
    /// occupied slot (`‖x‖₂²` is `O(1)` from the configuration cache),
    /// then `Mult(n, α)` over the occupied slots.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        ac_vector_step_into(self, c, rng);
    }
}

/// Equation (2): `α_i = x_i (1 + x_i − ‖x‖₂²)`.
pub fn alpha_three_majority(c: &Configuration) -> Vec<f64> {
    let norm_sq = c.l2_norm_sq();
    c.fractions().iter().map(|&x| x * (1.0 + x - norm_sq)).collect()
}

/// The paper's reformulated 3-Majority: 2-Choices with a Voter fallback.
///
/// Sample two nodes; if they agree adopt their color, otherwise sample a
/// *third* node and adopt its color. Distributionally identical to
/// [`ThreeMajority`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeMajorityAlt;

impl ThreeMajorityAlt {
    /// Creates the rule.
    pub fn new() -> Self {
        ThreeMajorityAlt
    }
}

impl UpdateRule for ThreeMajorityAlt {
    fn name(&self) -> &'static str {
        "3-Majority (2-Choices+Voter)"
    }

    fn sample_count(&self) -> usize {
        3
    }

    fn update(&self, _own: Opinion, samples: &[Opinion], _rng: &mut dyn RngCore) -> Opinion {
        let [a, b, c] = samples else { panic!("3-Majority (alt) needs exactly three samples") };
        if a == b {
            *a
        } else {
            // Mismatch: comply with a fresh Voter sample.
            *c
        }
    }
}

impl AcProcess for ThreeMajorityAlt {
    fn alpha(&self, c: &Configuration) -> Vec<f64> {
        alpha_three_majority(c)
    }

    fn alpha_into(&self, c: &Configuration, out: &mut Vec<f64>) {
        ThreeMajority.alpha_into(c, out);
    }
}

impl VectorStep for ThreeMajorityAlt {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        ThreeMajority.vector_step(c, rng)
    }

    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        ThreeMajority.vector_step_into(c, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::assert_probability_vector;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn alpha_is_probability_vector() {
        for counts in [vec![5, 3, 2], vec![10, 0, 0], vec![1, 1, 1, 1, 1, 1]] {
            let c = Configuration::from_counts(counts);
            assert_probability_vector(&ThreeMajority.alpha(&c));
        }
    }

    #[test]
    fn alpha_matches_hand_computation() {
        // x = (1/2, 1/2): norm² = 1/2, α_i = 1/2·(1 + 1/2 − 1/2) = 1/2.
        let c = Configuration::from_counts(vec![5, 5]);
        let a = ThreeMajority.alpha(&c);
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.5).abs() < 1e-12);
        // x = (3/4, 1/4): norm² = 10/16, α_0 = 3/4·(1 + 3/4 − 5/8) = 27/32.
        let c = Configuration::from_counts(vec![3, 1]);
        let a = ThreeMajority.alpha(&c);
        assert!((a[0] - 27.0 / 32.0).abs() < 1e-12);
        assert!((a[1] - 5.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn majority_of_samples_wins() {
        let mut rng = Pcg64::seed_from_u64(1);
        let r = ThreeMajority;
        assert_eq!(r.update(op(9), &[op(1), op(1), op(2)], &mut rng), op(1));
        assert_eq!(r.update(op(9), &[op(2), op(1), op(2)], &mut rng), op(2));
        assert_eq!(r.update(op(9), &[op(1), op(2), op(2)], &mut rng), op(2));
        assert_eq!(r.update(op(9), &[op(3), op(3), op(3)], &mut rng), op(3));
    }

    #[test]
    fn distinct_samples_random_choice_is_uniform() {
        let mut rng = Pcg64::seed_from_u64(2);
        let r = ThreeMajority;
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let o = r.update(op(9), &[op(0), op(1), op(2)], &mut rng);
            counts[o.index()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 30_000.0 - 1.0 / 3.0).abs() < 0.02, "counts {counts:?}");
        }
    }

    #[test]
    fn alt_rule_agrees_on_matching_pair() {
        let mut rng = Pcg64::seed_from_u64(3);
        let r = ThreeMajorityAlt;
        assert_eq!(r.update(op(9), &[op(4), op(4), op(7)], &mut rng), op(4));
        // Mismatch: take the third sample.
        assert_eq!(r.update(op(9), &[op(4), op(5), op(7)], &mut rng), op(7));
    }

    #[test]
    fn own_color_is_ignored() {
        // AC property: the result never depends on `own`.
        let mut rng1 = Pcg64::seed_from_u64(4);
        let mut rng2 = Pcg64::seed_from_u64(4);
        let samples = [op(1), op(2), op(3)];
        let a = ThreeMajority.update(op(0), &samples, &mut rng1);
        let b = ThreeMajority.update(op(7), &samples, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn vector_step_preserves_mass_and_consensus() {
        let mut rng = Pcg64::seed_from_u64(5);
        let c = Configuration::uniform(500, 5);
        let next = ThreeMajority.vector_step(&c, &mut rng);
        assert_eq!(next.n(), 500);
        let fixed = Configuration::consensus(100, 3);
        assert_eq!(ThreeMajority.vector_step(&fixed, &mut rng), fixed);
    }

    #[test]
    fn alpha_favours_large_colors_relative_to_voter() {
        // Drift: for the plurality color, α_i > x_i; for the minority, <.
        let c = Configuration::from_counts(vec![70, 30]);
        let a = ThreeMajority.alpha(&c);
        let x = c.fractions();
        assert!(a[0] > x[0], "plurality should gain in expectation");
        assert!(a[1] < x[1], "minority should shrink in expectation");
    }

    #[test]
    fn names_and_sample_counts() {
        assert_eq!(ThreeMajority.sample_count(), 3);
        assert_eq!(ThreeMajorityAlt.sample_count(), 3);
        assert!(ThreeMajority.name().contains("3-Majority"));
    }
}
