//! The Undecided-State dynamics \[BCN+15\]: a decided node that samples a
//! different color becomes *undecided*; an undecided node adopts the color
//! of the first decided node it samples.
//!
//! Included as the paper's related-work comparator. With a large enough
//! bias it reaches consensus in `O(k log n)` rounds, but — as the paper
//! notes — from the `k = n` singleton configuration a constant fraction of
//! nodes goes undecided immediately, and the process may need to recover.
//! Not an AC-process (the update depends on the node's own state), and its
//! state space is richer than a [`Configuration`]: it additionally tracks
//! the undecided count, so it has a bespoke [`UndecidedState`] with a
//! vectorized, allocation-free `O(#occupied)` step.

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{with_step_scratch, MultisetRule, SampleAccess, UpdateRule};
use symbreak_sim::dist::{sample_multinomial_into, Binomial};

/// The undecided-dynamics update rule (agent-level form).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UndecidedDynamics;

impl UndecidedDynamics {
    /// Creates the rule.
    pub fn new() -> Self {
        UndecidedDynamics
    }
}

impl UpdateRule for UndecidedDynamics {
    fn name(&self) -> &'static str {
        "Undecided-State"
    }

    fn sample_count(&self) -> usize {
        1
    }

    fn update(&self, own: Opinion, samples: &[Opinion], _rng: &mut dyn RngCore) -> Opinion {
        let s = samples[0];
        if own.is_undecided() {
            // Try to find a real color.
            s
        } else if s.is_undecided() || s == own {
            own
        } else {
            Opinion::UNDECIDED
        }
    }

    fn sample_access(&self) -> SampleAccess {
        SampleAccess::Multiset
    }

    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        Some(self)
    }
}

impl MultisetRule for UndecidedDynamics {
    /// A one-sample window *is* its multiset; the rule is listed as a
    /// multiset consumer (not [`SampleAccess::SinglePeer`]) because a
    /// decided node reads its own state against the sample rather than
    /// adopting it outright.
    fn update_from_counts(
        &self,
        own: Opinion,
        counts: &[(Opinion, u32)],
        rng: &mut dyn RngCore,
    ) -> Opinion {
        debug_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u32>(), 1);
        self.update(own, &[counts[0].0], rng)
    }

    /// Closed-form aggregate over a one-sample window from `θ`:
    ///
    /// * a group decided on `j` keeps w.p. `θ_j + θ_undecided` (same
    ///   color, or an undecided sample) — one binomial per group, the
    ///   rest go undecided;
    /// * the undecided group adopts a `Mult(u, θ)` draw (an undecided
    ///   sample means staying undecided, which the draw covers because
    ///   [`Opinion::UNDECIDED`] is itself a `values` entry when its
    ///   weight is positive).
    fn condensed_push_step(
        &self,
        groups: &[(Opinion, u64)],
        values: &[Opinion],
        weights: &[f64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            out.extend(groups.iter().copied().filter(|&(_, c)| c > 0));
            return;
        }
        let w_undecided = match values.last() {
            Some(o) if o.is_undecided() => *weights.last().unwrap(),
            _ => 0.0,
        };
        let mut next_undecided = 0u64;
        // `groups` and `values` are both ascending, so the own-weight
        // lookup is a single merged scan.
        let mut vi = 0usize;
        for &(own, count) in groups {
            if count == 0 {
                continue;
            }
            if own.is_undecided() {
                with_step_scratch(|s| {
                    s.aux_counts.clear();
                    s.aux_counts.resize(values.len(), 0);
                    sample_multinomial_into(count, weights, rng, &mut s.aux_counts);
                    for (j, &c) in s.aux_counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if values[j].is_undecided() {
                            next_undecided += c;
                        } else {
                            out.push((values[j], c));
                        }
                    }
                });
            } else {
                while vi < values.len() && values[vi] < own {
                    vi += 1;
                }
                let w_own = if vi < values.len() && values[vi] == own { weights[vi] } else { 0.0 };
                let p_keep = ((w_own + w_undecided) / total).clamp(0.0, 1.0);
                let keep = Binomial::new(count, p_keep).sample(rng);
                if keep > 0 {
                    out.push((own, keep));
                }
                next_undecided += count - keep;
            }
        }
        if next_undecided > 0 {
            out.push((Opinion::UNDECIDED, next_undecided));
        }
    }

    /// With a one-sample window the dealt block *is* the outcome law —
    /// no randomness at all:
    ///
    /// * the undecided group adopts its block verbatim (an undecided
    ///   ball means staying undecided, which the block entry covers);
    /// * a group decided on `own` keeps one node per `own` or undecided
    ///   ball in its block and sends the rest undecided — *which* node
    ///   got which ball never matters, only how many.
    fn condensed_window_step(
        &self,
        own: Opinion,
        count: u64,
        values: &[Opinion],
        block: &mut [u64],
        _rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        debug_assert_eq!(block.iter().sum::<u64>(), count, "block mass must be count·1");
        if count == 0 {
            return;
        }
        if own.is_undecided() {
            for (j, &c) in block.iter().enumerate() {
                if c > 0 {
                    out.push((values[j], c));
                }
            }
            return;
        }
        let mut keep = 0u64;
        for (j, &v) in values.iter().enumerate() {
            if v == own || v.is_undecided() {
                keep += block[j];
            }
        }
        if keep > 0 {
            out.push((own, keep));
        }
        if count - keep > 0 {
            out.push((Opinion::UNDECIDED, count - keep));
        }
    }
}

/// Population state of the undecided dynamics: decided color counts plus
/// the undecided count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndecidedState {
    colors: Configuration,
    undecided: u64,
}

impl UndecidedState {
    /// Starts with all nodes decided according to `config`.
    pub fn new(config: Configuration) -> Self {
        Self { colors: config, undecided: 0 }
    }

    /// The decided-color counts.
    pub fn colors(&self) -> &Configuration {
        &self.colors
    }

    /// Number of undecided nodes.
    pub fn undecided(&self) -> u64 {
        self.undecided
    }

    /// Total population (decided + undecided).
    pub fn population(&self) -> u64 {
        self.colors.n() + self.undecided
    }

    /// Whether all nodes are decided on a single color.
    pub fn is_consensus(&self) -> bool {
        self.undecided == 0 && self.colors.is_consensus()
    }

    /// One synchronous round, vectorized and allocation-free in
    /// `O(#occupied colors)`:
    ///
    /// * decided on `j` → undecided with probability `(n − c_j − u)/n`
    ///   (sampled node decided on a different color);
    /// * undecided → color `i` with probability `c_i/n`, stays undecided
    ///   with probability `u/n`.
    ///
    /// Only occupied colors draw (an empty color has no nodes to lose and
    /// zero adoption probability), so the singleton-start recovery runs
    /// the paper remarks on scale with the surviving support, not `k`.
    pub fn step(&mut self, rng: &mut dyn RngCore) {
        let n = self.population();
        if n == 0 {
            return;
        }
        let nf = n as f64;
        let u = self.undecided;
        let mut next_undecided = 0u64;
        with_step_scratch(|s| {
            s.counts.clear();
            s.counts.extend(self.colors.occupied_counts());
            self.colors.rewrite_occupied(|occ, counts| {
                // Decided nodes: keep or go undecided.
                for (j, &i) in occ.iter().enumerate() {
                    let cj = s.counts[j];
                    let p_leave = ((n - cj - u) as f64 / nf).clamp(0.0, 1.0);
                    let leavers = Binomial::new(cj, p_leave).sample(rng);
                    counts[i as usize] = cj - leavers;
                    next_undecided += leavers;
                }

                // Undecided nodes: adopt a decided sample's color or stay
                // (weights: occupied colors + the stay-undecided slot).
                if u > 0 {
                    s.weights.clear();
                    s.weights.extend(s.counts.iter().map(|&c| c as f64 / nf));
                    s.weights.push(u as f64 / nf);
                    s.aux_counts.clear();
                    s.aux_counts.resize(s.weights.len(), 0);
                    sample_multinomial_into(u, &s.weights, rng, &mut s.aux_counts);
                    for (j, &i) in occ.iter().enumerate() {
                        counts[i as usize] += s.aux_counts[j];
                    }
                    next_undecided += s.aux_counts[occ.len()];
                }
            });
        });
        self.undecided = next_undecided;
        debug_assert_eq!(self.population(), n, "population must be conserved");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn decided_node_keeps_on_same_or_undecided_sample() {
        let mut rng = Pcg64::seed_from_u64(1);
        let r = UndecidedDynamics;
        assert_eq!(r.update(op(3), &[op(3)], &mut rng), op(3));
        assert_eq!(r.update(op(3), &[Opinion::UNDECIDED], &mut rng), op(3));
    }

    #[test]
    fn decided_node_goes_undecided_on_conflict() {
        let mut rng = Pcg64::seed_from_u64(2);
        let out = UndecidedDynamics.update(op(3), &[op(4)], &mut rng);
        assert!(out.is_undecided());
    }

    #[test]
    fn undecided_node_adopts_sample() {
        let mut rng = Pcg64::seed_from_u64(3);
        let r = UndecidedDynamics;
        assert_eq!(r.update(Opinion::UNDECIDED, &[op(7)], &mut rng), op(7));
        assert!(r.update(Opinion::UNDECIDED, &[Opinion::UNDECIDED], &mut rng).is_undecided());
    }

    #[test]
    fn state_step_conserves_population() {
        let mut rng = Pcg64::seed_from_u64(4);
        let mut s = UndecidedState::new(Configuration::uniform(1000, 10));
        for _ in 0..50 {
            s.step(&mut rng);
            assert_eq!(s.population(), 1000);
        }
    }

    #[test]
    fn consensus_is_absorbing() {
        let mut rng = Pcg64::seed_from_u64(5);
        let mut s = UndecidedState::new(Configuration::consensus(100, 3));
        s.step(&mut rng);
        assert!(s.is_consensus());
        assert_eq!(s.undecided(), 0);
    }

    #[test]
    fn singleton_start_goes_mostly_undecided() {
        // The paper's remark: for k = n, a constant fraction becomes
        // undecided in one round (each node sees a different color w.p.
        // 1 − 1/n).
        let mut rng = Pcg64::seed_from_u64(6);
        let mut s = UndecidedState::new(Configuration::singletons(512));
        s.step(&mut rng);
        assert!(s.undecided() > 400, "expected most nodes undecided, got {}", s.undecided());
    }

    #[test]
    fn biased_two_color_run_reaches_consensus() {
        let mut rng = Pcg64::seed_from_u64(7);
        let mut s = UndecidedState::new(Configuration::from_counts(vec![700, 300]));
        let mut rounds = 0;
        while !s.is_consensus() && rounds < 10_000 {
            s.step(&mut rng);
            rounds += 1;
        }
        assert!(s.is_consensus(), "no consensus after {rounds} rounds");
        assert_eq!(s.colors().plurality(), op(0), "majority color should win");
    }

    #[test]
    fn vectorized_step_matches_agent_semantics_in_expectation() {
        // One vector round from a known state vs many agent-level updates.
        let config = Configuration::from_counts(vec![60, 40]);
        let trials = 20_000;
        let mut rng = Pcg64::seed_from_u64(8);
        let mut sum_c0 = 0u64;
        let mut sum_undecided = 0u64;
        for _ in 0..trials {
            let mut s = UndecidedState::new(config.clone());
            s.step(&mut rng);
            sum_c0 += s.colors().support(0);
            sum_undecided += s.undecided();
        }
        // Agent semantics: decided-0 keeps w.p. (60+0)/100 -> stays 0
        // unless sample is color 1 (p=0.4): E[c0'] = 60*0.6 = 36.
        // E[undecided'] = 60*0.4 + 40*0.6 = 48.
        let mean_c0 = sum_c0 as f64 / trials as f64;
        let mean_u = sum_undecided as f64 / trials as f64;
        assert!((mean_c0 - 36.0).abs() < 0.5, "mean c0 {mean_c0}");
        assert!((mean_u - 48.0).abs() < 0.5, "mean undecided {mean_u}");
    }

    #[test]
    fn name_and_samples() {
        assert_eq!(UndecidedDynamics.name(), "Undecided-State");
        assert_eq!(UndecidedDynamics.sample_count(), 1);
    }
}
