//! The consensus processes studied (or cited) by the paper.
//!
//! The `Access` column is the sample-consumption taxonomy
//! ([`crate::process::SampleAccess`]): what each rule actually reads of
//! its window, which is what the engines and the cluster wire path
//! dispatch on.
//!
//! | Process | AC? | Samples | Access | Reference |
//! |---------|-----|---------|--------|-----------|
//! | [`Voter`] | yes | 1 | single peer | Section 1, Eq. (1) |
//! | [`TwoChoices`] | **no** | 2 | ordered window | Section 1 ("ignore") |
//! | [`ThreeMajority`] | yes | 3 | multiset | Section 1, Eq. (2) ("comply") |
//! | [`ThreeMajorityAlt`] | yes | 3 | ordered window | Section 1's reformulation |
//! | [`HMajority`] | yes | h | multiset | Section 5 / Conjecture 1 |
//! | [`LazyVoter`] | **no** | 1 | ordered window | \[BGKMT16\], Lemma 3 discussion |
//! | [`TwoMedian`] | no | 2 | multiset | \[DGM+11\], related work |
//! | [`UndecidedDynamics`] | no | 1 | multiset | \[BCN+15\], related work |
//!
//! 2-Choices is the genuine ordered-window consumer (its "first two
//! agree" test is positional against the node's own state);
//! [`ThreeMajorityAlt`] is *defined* positionally (2-Choices with a
//! Voter fallback), so it keeps the ordered contract even though its
//! law equals 3-Majority's; [`LazyVoter`] reads its own state on the
//! lazy branch, so it cannot adopt the single-peer shortcut.

mod h_majority;
mod lazy_voter;
mod three_majority;
mod two_choices;
mod two_median;
mod undecided;
mod voter;

pub use h_majority::{plurality_with_random_ties, HMajority};
pub use lazy_voter::LazyVoter;
pub use three_majority::{alpha_three_majority, ThreeMajority, ThreeMajorityAlt};
pub use two_choices::TwoChoices;
pub use two_median::TwoMedian;
pub use undecided::{UndecidedDynamics, UndecidedState};
pub use voter::Voter;
