//! The consensus processes studied (or cited) by the paper.
//!
//! | Process | AC? | Samples | Reference |
//! |---------|-----|---------|-----------|
//! | [`Voter`] | yes | 1 | Section 1, Eq. (1) |
//! | [`TwoChoices`] | **no** | 2 | Section 1 ("ignore") |
//! | [`ThreeMajority`] | yes | 3 | Section 1, Eq. (2) ("comply") |
//! | [`ThreeMajorityAlt`] | yes | 3 | Section 1's reformulation |
//! | [`HMajority`] | yes | h | Section 5 / Conjecture 1 |
//! | [`LazyVoter`] | **no** | 1 | \[BGKMT16\], Lemma 3 discussion |
//! | [`TwoMedian`] | no | 2 | \[DGM+11\], related work |
//! | [`UndecidedDynamics`] | no | 1 | \[BCN+15\], related work |

mod h_majority;
mod lazy_voter;
mod three_majority;
mod two_choices;
mod two_median;
mod undecided;
mod voter;

pub use h_majority::{plurality_with_random_ties, HMajority};
pub use lazy_voter::LazyVoter;
pub use three_majority::{alpha_three_majority, ThreeMajority, ThreeMajorityAlt};
pub use two_choices::TwoChoices;
pub use two_median::TwoMedian;
pub use undecided::{UndecidedDynamics, UndecidedState};
pub use voter::Voter;
