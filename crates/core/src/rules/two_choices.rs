//! The 2-Choices process ("ignore"): sample two nodes; adopt their color if
//! they agree, otherwise keep your own.
//!
//! 2-Choices is **not** an AC-process: a node that sees a mismatch keeps
//! its *own* color, so the update depends on the node's state. It shares
//! the 3-Majority expectation `x_i² + (1 − Σ x_j²) x_i` (footnote 2) yet
//! needs `Ω(n / log n)` rounds from low-support configurations (Theorem 5)
//! — the paper's headline separation.

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{with_step_scratch, ExpectedUpdate, UpdateRule, VectorStep};
use symbreak_sim::dist::{sample_multinomial_into, sample_multinomial_sparse_into, Binomial};

/// The 2-Choices update rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoChoices;

impl TwoChoices {
    /// Creates the rule.
    pub fn new() -> Self {
        TwoChoices
    }
}

impl UpdateRule for TwoChoices {
    fn name(&self) -> &'static str {
        "2-Choices"
    }

    fn sample_count(&self) -> usize {
        2
    }

    fn update(&self, own: Opinion, samples: &[Opinion], _rng: &mut dyn RngCore) -> Opinion {
        let [a, b] = samples else { panic!("2-Choices needs exactly two samples") };
        if a == b {
            *a
        } else {
            own // ignore the samples
        }
    }
}

impl ExpectedUpdate for TwoChoices {
    /// Footnote 2: identical to 3-Majority's expectation.
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64> {
        let norm_sq = c.l2_norm_sq();
        c.fractions().iter().map(|&x| x * x + (1.0 - norm_sq) * x).collect()
    }
}

impl VectorStep for TwoChoices {
    /// `O(k)` exact one-step sampler.
    ///
    /// Each node independently "matches" (its two samples agree on some
    /// color) with probability `S₂ = Σ x_i²`; conditioned on matching, the
    /// matched color is `i` with probability `x_i² / S₂` *independent of
    /// the node's own color*. So: per color `j`, `m_j ∼ Bin(c_j, S₂)`
    /// nodes abandon `j`; the pooled `Σ m_j` matchers redistribute
    /// multinomially over the match distribution.
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        let x = c.fractions();
        let s2 = c.l2_norm_sq();
        let k = x.len();
        let mut next: Vec<u64> = Vec::with_capacity(k);
        let mut movers_total = 0u64;
        for &cj in c.counts() {
            let m = Binomial::new(cj, s2.clamp(0.0, 1.0)).sample(rng);
            movers_total += m;
            next.push(cj - m);
        }
        if movers_total > 0 {
            // Match distribution q_i = x_i² / S₂.
            let q: Vec<f64> = x.iter().map(|v| v * v / s2).collect();
            let mut gained = vec![0u64; k];
            sample_multinomial_into(movers_total, &q, rng, &mut gained);
            for (n, g) in next.iter_mut().zip(&gained) {
                *n += g;
            }
        }
        Configuration::from_counts(next)
    }

    /// Allocation-free sparse step: the same decomposition walked over
    /// the occupied slots only (`S₂` is `O(1)` from the configuration
    /// cache), `O(#occupied)` per round.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        let n = c.n();
        if n == 0 {
            return;
        }
        let nf = n as f64;
        let s2 = c.l2_norm_sq();
        let p_match = s2.clamp(0.0, 1.0);
        with_step_scratch(|s| {
            s.counts.clear();
            s.counts.extend(c.occupied_counts());
            c.rewrite_occupied(|occ, counts| {
                let mut movers_total = 0u64;
                for (j, &i) in occ.iter().enumerate() {
                    let cj = s.counts[j];
                    let m = Binomial::new(cj, p_match).sample(rng);
                    movers_total += m;
                    counts[i as usize] = cj - m;
                }
                if movers_total > 0 {
                    s.weights.clear();
                    s.weights.extend(s.counts.iter().map(|&cj| {
                        let x = cj as f64 / nf;
                        x * x / s2
                    }));
                    sample_multinomial_sparse_into(movers_total, &s.weights, occ, rng, counts);
                }
            });
        });
        debug_assert_eq!(c.n(), n, "2-Choices step must preserve the population");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ThreeMajority;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn matching_samples_are_adopted() {
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(TwoChoices.update(op(9), &[op(2), op(2)], &mut rng), op(2));
    }

    #[test]
    fn mismatched_samples_are_ignored() {
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(TwoChoices.update(op(9), &[op(2), op(3)], &mut rng), op(9));
    }

    #[test]
    fn expectation_matches_three_majority() {
        // Footnote 2: E[2-Choices] == E[3-Majority] on every configuration.
        use crate::process::ExpectedUpdate as _;
        for counts in [vec![5, 3, 2], vec![1, 1, 1, 1], vec![97, 2, 1], vec![10]] {
            let c = Configuration::from_counts(counts);
            let e2 = TwoChoices.expected_fractions(&c);
            let e3 = ThreeMajority.expected_fractions(&c);
            for (a, b) in e2.iter().zip(&e3) {
                assert!((a - b).abs() < 1e-12, "{e2:?} vs {e3:?}");
            }
        }
    }

    #[test]
    fn expected_fractions_sum_to_one() {
        use crate::process::ExpectedUpdate as _;
        let c = Configuration::from_counts(vec![4, 3, 2, 1]);
        let s: f64 = TwoChoices.expected_fractions(&c).iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vector_step_preserves_mass() {
        let mut rng = Pcg64::seed_from_u64(3);
        let c = Configuration::uniform(1000, 10);
        let next = TwoChoices.vector_step(&c, &mut rng);
        assert_eq!(next.n(), 1000);
    }

    #[test]
    fn consensus_is_absorbing() {
        let mut rng = Pcg64::seed_from_u64(4);
        let c = Configuration::consensus(64, 2);
        assert_eq!(TwoChoices.vector_step(&c, &mut rng), c);
    }

    #[test]
    fn vector_step_mean_matches_expectation() {
        use crate::process::ExpectedUpdate as _;
        let c = Configuration::from_counts(vec![60, 30, 10]);
        let expect = TwoChoices.expected_fractions(&c);
        let mut rng = Pcg64::seed_from_u64(5);
        let trials = 20_000;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let next = TwoChoices.vector_step(&c, &mut rng);
            for (s, &v) in sums.iter_mut().zip(next.counts()) {
                *s += v;
            }
        }
        for i in 0..3 {
            let mean = sums[i] as f64 / trials as f64 / 100.0;
            assert!(
                (mean - expect[i]).abs() < 0.01,
                "color {i}: mean fraction {mean} vs expected {}",
                expect[i]
            );
        }
    }

    #[test]
    fn singletons_barely_move() {
        // From the n-color configuration, a node matches only when it
        // samples the same node twice (prob 1/n): most rounds change little.
        let mut rng = Pcg64::seed_from_u64(6);
        let c = Configuration::singletons(256);
        let next = TwoChoices.vector_step(&c, &mut rng);
        // The number of colors can drop only via the rare matches.
        assert!(next.num_colors() >= 250, "got {}", next.num_colors());
    }

    #[test]
    fn name_and_samples() {
        assert_eq!(TwoChoices.name(), "2-Choices");
        assert_eq!(TwoChoices.sample_count(), 2);
    }
}
