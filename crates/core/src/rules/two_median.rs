//! The 2-Median process \[DGM+11\]: colors are *ordered* values; each node
//! updates to the median of its own value and two sampled values.
//!
//! Included as the paper's related-work comparator: 2-Median reaches
//! consensus in `O(log k · log log n + log n)` rounds without bias, but it
//! requires a total order on colors and is not self-stabilizing for
//! Byzantine agreement (it can violate validity). It is not an AC-process
//! (the update depends on the node's own value) — but like 2-Choices it
//! has an exact vectorized decomposition: nodes sharing a value are
//! exchangeable, so the nodes at value `v` scatter with a law read off
//! the median CDF. The per-value target distributions genuinely differ,
//! but conditioned on the move *direction* they are truncations of one
//! shared law — so the sparse step realizes all of them through two
//! pooled binomial cascades ([`scatter_two_median`]) in `O(#occupied)`
//! draws per round, down from the `O(#occupied²)` per-group multinomial
//! scatter this module used to pay.

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{
    with_step_scratch, ExpectedUpdate, MultisetRule, SampleAccess, StepScratch, UpdateRule,
    VectorStep,
};
use symbreak_sim::dist::{Binomial, FenwickPool, GroupSplitter};

/// The 2-Median update rule. Opinion indices are interpreted as points on
/// the integer line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoMedian;

impl TwoMedian {
    /// Creates the rule.
    pub fn new() -> Self {
        TwoMedian
    }
}

impl UpdateRule for TwoMedian {
    fn name(&self) -> &'static str {
        "2-Median"
    }

    fn sample_count(&self) -> usize {
        2
    }

    fn update(&self, own: Opinion, samples: &[Opinion], _rng: &mut dyn RngCore) -> Opinion {
        let [a, b] = samples else { panic!("2-Median needs exactly two samples") };
        median3(own, *a, *b)
    }

    fn sample_access(&self) -> SampleAccess {
        SampleAccess::Multiset
    }

    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        Some(self)
    }
}

impl MultisetRule for TwoMedian {
    /// The median of `{own, a, b}` is symmetric in the two samples, so
    /// the window multiset determines it: a doubled sample is the
    /// median outright (it brackets `own` from both sides).
    fn update_from_counts(
        &self,
        own: Opinion,
        counts: &[(Opinion, u32)],
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        match counts {
            [(a, _)] => *a,
            [(a, _), (b, _)] => median3(own, *a, *b),
            _ => panic!("2-Median windows hold exactly two samples"),
        }
    }

    /// The `scatter_two_median` cascade over the union CDF: group
    /// positions on the value axis come from one merged scan (both
    /// sides are ascending), and a group whose own value is absent from
    /// `values` still stays put on it when neither sample side wins.
    fn condensed_push_step(
        &self,
        groups: &[(Opinion, u64)],
        values: &[Opinion],
        weights: &[f64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || values.is_empty() {
            out.extend(groups.iter().copied().filter(|&(_, c)| c > 0));
            return;
        }
        let mut positioned: Vec<(usize, bool, u64)> = Vec::with_capacity(groups.len());
        let mut p = 0usize;
        for &(own, count) in groups {
            while p < values.len() && values[p] < own {
                p += 1;
            }
            let at = p < values.len() && values[p] == own;
            positioned.push((p, at, count));
        }
        with_step_scratch(|s| {
            s.aux.clear();
            let mut acc = 0.0;
            for &w in weights {
                acc += w / total;
                s.aux.push(acc);
            }
            let StepScratch { aux: cdf, aux_counts: down, aux_counts2: up, .. } = s;
            scatter_two_median(
                cdf,
                &|g| positioned[g],
                positioned.len(),
                down,
                up,
                rng,
                &mut |landing, c| match landing {
                    Landing::Value(t) => out.push((values[t], c)),
                    Landing::Stay(g) => out.push((groups[g].0, c)),
                },
            );
        });
    }

    /// Exact aggregate consumption of one group's pooled
    /// without-replacement block.
    ///
    /// A dealt window of two is an unordered pair; exchangeability of
    /// slot positions makes the slot-1 balls `F` a uniform
    /// `count`-subset of the block, the slot-2 balls `S` the remainder,
    /// and the pairing `F↔S` a uniform bijection. Revealing the
    /// bijection category-by-category keeps the rest uniform, so the
    /// partners of category `j`'s `f_j` balls are a uniform
    /// `f_j`-subset of the remaining `S` pool — and unlike 3-Majority
    /// the partner split *is* the outcome: a window `(values[j],
    /// values[k])` emits `median3(own, values[j], values[k])`, i.e. the
    /// lower endpoint when `own` sits at or below both, the upper when
    /// at or above both, and `own` itself when strictly between.
    fn condensed_window_step(
        &self,
        own: Opinion,
        count: u64,
        values: &[Opinion],
        block: &mut [u64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        debug_assert_eq!(block.iter().sum::<u64>(), count * 2, "block mass must be count·2");
        if count == 0 {
            return;
        }
        with_step_scratch(|s| {
            let first = &mut s.aux_counts;
            first.clear();
            first.resize(values.len(), 0);
            GroupSplitter::new(block).draw_block(count, rng, |j, x| first[j] += x);
            // `block` now holds S, the partner pool.
            let mut partners = FenwickPool::new(block);
            let tally = &mut s.aux_counts2;
            tally.clear();
            tally.resize(values.len(), 0);
            let mut stay = 0u64;
            for (j, &fj) in first.iter().enumerate() {
                if fj == 0 {
                    continue;
                }
                partners.deal(fj, rng, |k, c| {
                    let (lo, hi) = if j <= k { (j, k) } else { (k, j) };
                    if own <= values[lo] {
                        tally[lo] += c;
                    } else if own >= values[hi] {
                        tally[hi] += c;
                    } else {
                        stay += c;
                    }
                });
            }
            for (j, &c) in tally.iter().enumerate() {
                if c > 0 {
                    out.push((values[j], c));
                }
            }
            if stay > 0 {
                out.push((own, stay));
            }
        });
    }
}

/// Where one trinomial/cascade emission lands: an index on the sample
/// value axis, or a group's own (possibly off-axis) value.
enum Landing {
    Value(usize),
    Stay(usize),
}

/// One synchronous 2-Median round, scattered group-by-group through two
/// pooled binomial cascades — `O(#values + #groups)` binomial draws
/// where the naive per-group scatter pays a `#values`-category
/// multinomial *per group*.
///
/// Every node draws two iid samples from the categorical over the
/// ascending value axis with prefix CDF `cdf` (`cdf[t]` = probability a
/// sample is ≤ `values[t]`). The median of `{own, X, Y}` lands strictly
/// below own iff `max(X, Y)` does (then it *is* that max), strictly
/// above iff `min(X, Y)` does, and on own otherwise. So a group of `c`
/// nodes sharing a value splits by one trinomial into (down, stay, up)
/// — and conditioned on moving down, every ball's landing law is the
/// SAME truncated max-distribution `P(land = t) ∝ cdf[t]² − cdf[t−1]²`,
/// restricted below the group's entry level. That makes all the
/// per-group truncated multinomials realizable as ONE descending
/// binomial cascade: at level `t`, each pooled ball (from any group
/// entering at or above `t`) lands with probability
/// `1 − (cdf[t−1]/cdf[t])²`, independent of its group. The up cascade
/// is the mirror image on the suffix survival `G(t) = 1 − cdf[t−1]`.
///
/// `group(g)` returns `(p, at, count)`: the insertion position of the
/// group's own value on the axis, whether it sits exactly at
/// `values[p]`, and its size — and must be nondecreasing in `(p, at)`
/// (ascending own values guarantee this). `down`/`up` are caller
/// scratch. Emits every landing through `emit`; targets may repeat.
fn scatter_two_median(
    cdf: &[f64],
    group: &dyn Fn(usize) -> (usize, bool, u64),
    n_groups: usize,
    down: &mut Vec<u64>,
    up: &mut Vec<u64>,
    rng: &mut dyn RngCore,
    emit: &mut dyn FnMut(Landing, u64),
) {
    let u = cdf.len();
    down.clear();
    down.resize(n_groups, 0);
    up.clear();
    up.resize(n_groups, 0);

    // Pass 1: per-group (down, stay, up) trinomial. A group at the
    // bottom of the axis cannot move down (`p_low = 0` exactly), one at
    // or beyond the top cannot move up.
    for g in 0..n_groups {
        let (p, at, count) = group(g);
        if count == 0 {
            continue;
        }
        let f_below = if p > 0 { cdf[p - 1] } else { 0.0 };
        let f_at = if at { cdf[p] } else { f_below };
        let p_low = (f_below * f_below).clamp(0.0, 1.0);
        let p_high = if p + usize::from(at) >= u {
            0.0
        } else {
            ((1.0 - f_at) * (1.0 - f_at)).clamp(0.0, 1.0)
        };
        let d = if p_low > 0.0 { Binomial::new(count, p_low).sample(rng) } else { 0 };
        let rest = count - d;
        let h = if p_high > 0.0 && rest > 0 {
            Binomial::new(rest, (p_high / (1.0 - p_low)).clamp(0.0, 1.0)).sample(rng)
        } else {
            0
        };
        down[g] = d;
        up[g] = h;
        if rest - h > 0 {
            emit(Landing::Stay(g), rest - h);
        }
    }

    // Pass 2: down cascade, descending the axis. Group `g`'s
    // down-movers join the pool at their entry level `p − 1`; at level
    // `t` the pooled balls land with the shared conditional probability
    // `1 − (cdf[t−1]/cdf[t])²`. The pool provably drains no later than
    // the first level with `cdf[t] = 0` (the conditional hits 1 just
    // above it), and unconditionally at `t = 0`.
    let mut pool = 0u64;
    let mut g = n_groups;
    for t in (0..u).rev() {
        while g > 0 && group(g - 1).0 > t {
            g -= 1;
            pool += down[g];
        }
        if pool == 0 {
            continue;
        }
        let land = if t == 0 || cdf[t] <= 0.0 {
            pool
        } else {
            let ratio = (cdf[t - 1] / cdf[t]).clamp(0.0, 1.0);
            Binomial::new(pool, (1.0 - ratio * ratio).clamp(0.0, 1.0)).sample(rng)
        };
        if land > 0 {
            emit(Landing::Value(t), land);
            pool -= land;
        }
    }
    debug_assert_eq!(pool, 0, "down cascade must drain at the bottom of the axis");

    // Pass 3: up cascade, ascending — the mirror image on the suffix
    // survival `G(t) = 1 − cdf[t−1]`; entry level is the first axis
    // position strictly above own, `p + at`.
    let mut pool = 0u64;
    let mut g = 0usize;
    for t in 0..u {
        while g < n_groups && {
            let (p, at, _) = group(g);
            p + usize::from(at) <= t
        } {
            pool += up[g];
            g += 1;
        }
        if pool == 0 {
            continue;
        }
        let g_here = 1.0 - if t > 0 { cdf[t - 1] } else { 0.0 };
        let land = if t + 1 == u || g_here <= 0.0 {
            pool
        } else {
            let ratio = ((1.0 - cdf[t]) / g_here).clamp(0.0, 1.0);
            Binomial::new(pool, (1.0 - ratio * ratio).clamp(0.0, 1.0)).sample(rng)
        };
        if land > 0 {
            emit(Landing::Value(t), land);
            pool -= land;
        }
    }
    debug_assert_eq!(pool, 0, "up cascade must drain at the top of the axis");
}

/// Median of three opinions by color index.
fn median3(a: Opinion, b: Opinion, c: Opinion) -> Opinion {
    let mut v = [a, b, c];
    v.sort_unstable();
    v[1]
}

impl ExpectedUpdate for TwoMedian {
    /// Exact expectation via the CDF decomposition: a node with value `v`
    /// moves to a value `≤ t` iff at least two of `{v, X, Y}` are `≤ t`,
    /// with `X, Y` iid from the configuration distribution.
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64> {
        let x = c.fractions();
        let k = x.len();
        // F[t] = Pr[sample <= t].
        let mut cdf = vec![0.0; k];
        let mut acc = 0.0;
        for t in 0..k {
            acc += x[t];
            cdf[t] = acc;
        }
        // For a node with value v: Pr[new <= t] =
        //   v <= t: 1 - (1-F)^2   (need at least one sample <= t)
        //   v >  t: F^2           (need both samples <= t)
        let mut expected = vec![0.0; k];
        #[allow(clippy::needless_range_loop)] // v is a *value* on the line, not just an index
        for v in 0..k {
            if x[v] == 0.0 {
                continue;
            }
            let weight = x[v];
            let mut prev = 0.0;
            for (t, &f) in cdf.iter().enumerate() {
                let p_le = if v <= t { 1.0 - (1.0 - f) * (1.0 - f) } else { f * f };
                expected[t] += weight * (p_le - prev);
                prev = p_le;
            }
        }
        expected
    }
}

impl VectorStep for TwoMedian {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        let mut next = c.clone();
        self.vector_step_into(&mut next, rng);
        next
    }

    /// Exact sparse one-step sampler via the `scatter_two_median`
    /// cascades: every occupied value is its own group sitting exactly
    /// on the axis, so the whole round costs `O(#occupied)` binomial
    /// draws — the previous formulation scattered each group by its own
    /// `Mult(c_v, q_v)` over all occupied slots, `O(#occupied²)` per
    /// round.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        let n = c.n();
        if n == 0 {
            return;
        }
        let nf = n as f64;
        with_step_scratch(|s| {
            s.counts.clear();
            s.counts.extend(c.occupied_counts());
            // F over occupied values (ascending slot order = value order).
            s.aux.clear();
            let mut acc = 0.0;
            for &cv in &s.counts {
                acc += cv as f64 / nf;
                s.aux.push(acc);
            }
            let StepScratch { counts: old, aux: cdf, aux_counts: down, aux_counts2: up, .. } = s;
            c.rewrite_occupied(|occ, counts| {
                for &i in occ {
                    counts[i as usize] = 0;
                }
                scatter_two_median(
                    cdf,
                    &|g| (g, true, old[g]),
                    old.len(),
                    down,
                    up,
                    rng,
                    &mut |landing, cnt| {
                        let t = match landing {
                            Landing::Value(t) | Landing::Stay(t) => t,
                        };
                        counts[occ[t] as usize] += cnt;
                    },
                );
            });
        });
        debug_assert_eq!(c.n(), n, "2-Median step must preserve the population");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::assert_probability_vector;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn median_of_three() {
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(TwoMedian.update(op(5), &[op(1), op(9)], &mut rng), op(5));
        assert_eq!(TwoMedian.update(op(1), &[op(5), op(9)], &mut rng), op(5));
        assert_eq!(TwoMedian.update(op(9), &[op(1), op(5)], &mut rng), op(5));
        assert_eq!(TwoMedian.update(op(3), &[op(3), op(7)], &mut rng), op(3));
    }

    #[test]
    fn expected_fractions_is_probability_vector() {
        for counts in [vec![5, 3, 2], vec![1, 1, 1, 1, 1], vec![10, 0, 5]] {
            let c = Configuration::from_counts(counts);
            assert_probability_vector(&TwoMedian.expected_fractions(&c));
        }
    }

    #[test]
    fn consensus_is_fixed_point_of_expectation() {
        let c = Configuration::consensus(20, 4);
        let e = TwoMedian.expected_fractions(&c);
        assert!((e[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_monte_carlo() {
        let c = Configuration::from_counts(vec![4, 2, 4]);
        let expect = TwoMedian.expected_fractions(&c);
        let x = c.fractions();
        let cat = symbreak_sim::dist::Categorical::new(&x);
        let mut rng = Pcg64::seed_from_u64(2);
        let trials = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..trials {
            // Node value drawn from the configuration, plus two samples.
            let own = op(cat.sample(&mut rng) as u32);
            let a = op(cat.sample(&mut rng) as u32);
            let b = op(cat.sample(&mut rng) as u32);
            counts[TwoMedian.update(own, &[a, b], &mut rng).index()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / trials as f64;
            assert!(
                (freq - expect[i]).abs() < 0.01,
                "color {i}: freq {freq} vs expected {}",
                expect[i]
            );
        }
    }

    #[test]
    fn median_pulls_towards_the_middle() {
        // Mass at the extremes: the middle should gain in expectation.
        let c = Configuration::from_counts(vec![45, 10, 45]);
        let e = TwoMedian.expected_fractions(&c);
        assert!(e[1] > 0.1, "middle should grow, got {e:?}");
    }

    #[test]
    fn name_and_samples() {
        assert_eq!(TwoMedian.name(), "2-Median");
        assert_eq!(TwoMedian.sample_count(), 2);
    }
}
