//! The 2-Median process \[DGM+11\]: colors are *ordered* values; each node
//! updates to the median of its own value and two sampled values.
//!
//! Included as the paper's related-work comparator: 2-Median reaches
//! consensus in `O(log k · log log n + log n)` rounds without bias, but it
//! requires a total order on colors and is not self-stabilizing for
//! Byzantine agreement (it can violate validity). It is not an AC-process
//! (the update depends on the node's own value) — but like 2-Choices it
//! has an exact vectorized decomposition: nodes sharing a value are
//! exchangeable, so the nodes at value `v` scatter as an independent
//! `Mult(c_v, q_v)` with `q_v` read off the median CDF. The sparse step
//! walks occupied values only (`O(#occupied²)` per round — the per-value
//! target distributions genuinely differ), which finally lets 2-Median
//! run on the `VectorEngine` instead of the `O(n·h)` agent engine.

use rand::RngCore;

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{
    with_step_scratch, ExpectedUpdate, MultisetRule, SampleAccess, UpdateRule, VectorStep,
};
use symbreak_sim::dist::sample_multinomial_sparse_into;

/// The 2-Median update rule. Opinion indices are interpreted as points on
/// the integer line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoMedian;

impl TwoMedian {
    /// Creates the rule.
    pub fn new() -> Self {
        TwoMedian
    }
}

impl UpdateRule for TwoMedian {
    fn name(&self) -> &'static str {
        "2-Median"
    }

    fn sample_count(&self) -> usize {
        2
    }

    fn update(&self, own: Opinion, samples: &[Opinion], _rng: &mut dyn RngCore) -> Opinion {
        let [a, b] = samples else { panic!("2-Median needs exactly two samples") };
        median3(own, *a, *b)
    }

    fn sample_access(&self) -> SampleAccess {
        SampleAccess::Multiset
    }

    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        Some(self)
    }
}

impl MultisetRule for TwoMedian {
    /// The median of `{own, a, b}` is symmetric in the two samples, so
    /// the window multiset determines it: a doubled sample is the
    /// median outright (it brackets `own` from both sides).
    fn update_from_counts(
        &self,
        own: Opinion,
        counts: &[(Opinion, u32)],
        _rng: &mut dyn RngCore,
    ) -> Opinion {
        match counts {
            [(a, _)] => *a,
            [(a, _), (b, _)] => median3(own, *a, *b),
            _ => panic!("2-Median windows hold exactly two samples"),
        }
    }
}

/// Median of three opinions by color index.
fn median3(a: Opinion, b: Opinion, c: Opinion) -> Opinion {
    let mut v = [a, b, c];
    v.sort_unstable();
    v[1]
}

impl ExpectedUpdate for TwoMedian {
    /// Exact expectation via the CDF decomposition: a node with value `v`
    /// moves to a value `≤ t` iff at least two of `{v, X, Y}` are `≤ t`,
    /// with `X, Y` iid from the configuration distribution.
    fn expected_fractions(&self, c: &Configuration) -> Vec<f64> {
        let x = c.fractions();
        let k = x.len();
        // F[t] = Pr[sample <= t].
        let mut cdf = vec![0.0; k];
        let mut acc = 0.0;
        for t in 0..k {
            acc += x[t];
            cdf[t] = acc;
        }
        // For a node with value v: Pr[new <= t] =
        //   v <= t: 1 - (1-F)^2   (need at least one sample <= t)
        //   v >  t: F^2           (need both samples <= t)
        let mut expected = vec![0.0; k];
        #[allow(clippy::needless_range_loop)] // v is a *value* on the line, not just an index
        for v in 0..k {
            if x[v] == 0.0 {
                continue;
            }
            let weight = x[v];
            let mut prev = 0.0;
            for (t, &f) in cdf.iter().enumerate() {
                let p_le = if v <= t { 1.0 - (1.0 - f) * (1.0 - f) } else { f * f };
                expected[t] += weight * (p_le - prev);
                prev = p_le;
            }
        }
        expected
    }
}

impl VectorStep for TwoMedian {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        let mut next = c.clone();
        self.vector_step_into(&mut next, rng);
        next
    }

    /// Exact sparse one-step sampler.
    ///
    /// For a node with value `v` and two iid samples `X, Y` from the
    /// configuration distribution, `P(median ≤ t)` is `1 − (1 − F(t))²`
    /// for `v ≤ t` and `F(t)²` otherwise (at least one, resp. both,
    /// samples must be `≤ t`) — the same CDF decomposition as
    /// [`TwoMedian`]'s expectation. The median always lands on an
    /// occupied value, so each occupied `v` scatters as
    /// `Mult(c_v, q_v)` over occupied slots, independently across `v`.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        let n = c.n();
        if n == 0 {
            return;
        }
        let nf = n as f64;
        with_step_scratch(|s| {
            s.counts.clear();
            s.counts.extend(c.occupied_counts());
            // F over occupied values (ascending slot order = value order).
            s.aux.clear();
            let mut acc = 0.0;
            for &cv in &s.counts {
                acc += cv as f64 / nf;
                s.aux.push(acc);
            }
            c.rewrite_occupied(|occ, counts| {
                for &i in occ {
                    counts[i as usize] = 0;
                }
                for (a, &cv) in s.counts.iter().enumerate() {
                    s.weights.clear();
                    let mut prev = 0.0;
                    for (b, &f) in s.aux.iter().enumerate() {
                        let p_le = if a <= b { 1.0 - (1.0 - f) * (1.0 - f) } else { f * f };
                        s.weights.push((p_le - prev).max(0.0));
                        prev = p_le;
                    }
                    sample_multinomial_sparse_into(cv, &s.weights, occ, rng, counts);
                }
            });
        });
        debug_assert_eq!(c.n(), n, "2-Median step must preserve the population");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::assert_probability_vector;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn median_of_three() {
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(TwoMedian.update(op(5), &[op(1), op(9)], &mut rng), op(5));
        assert_eq!(TwoMedian.update(op(1), &[op(5), op(9)], &mut rng), op(5));
        assert_eq!(TwoMedian.update(op(9), &[op(1), op(5)], &mut rng), op(5));
        assert_eq!(TwoMedian.update(op(3), &[op(3), op(7)], &mut rng), op(3));
    }

    #[test]
    fn expected_fractions_is_probability_vector() {
        for counts in [vec![5, 3, 2], vec![1, 1, 1, 1, 1], vec![10, 0, 5]] {
            let c = Configuration::from_counts(counts);
            assert_probability_vector(&TwoMedian.expected_fractions(&c));
        }
    }

    #[test]
    fn consensus_is_fixed_point_of_expectation() {
        let c = Configuration::consensus(20, 4);
        let e = TwoMedian.expected_fractions(&c);
        assert!((e[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_monte_carlo() {
        let c = Configuration::from_counts(vec![4, 2, 4]);
        let expect = TwoMedian.expected_fractions(&c);
        let x = c.fractions();
        let cat = symbreak_sim::dist::Categorical::new(&x);
        let mut rng = Pcg64::seed_from_u64(2);
        let trials = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..trials {
            // Node value drawn from the configuration, plus two samples.
            let own = op(cat.sample(&mut rng) as u32);
            let a = op(cat.sample(&mut rng) as u32);
            let b = op(cat.sample(&mut rng) as u32);
            counts[TwoMedian.update(own, &[a, b], &mut rng).index()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / trials as f64;
            assert!(
                (freq - expect[i]).abs() < 0.01,
                "color {i}: freq {freq} vs expected {}",
                expect[i]
            );
        }
    }

    #[test]
    fn median_pulls_towards_the_middle() {
        // Mass at the extremes: the middle should gain in expectation.
        let c = Configuration::from_counts(vec![45, 10, 45]);
        let e = TwoMedian.expected_fractions(&c);
        assert!(e[1] > 0.1, "middle should grow, got {e:?}");
    }

    #[test]
    fn name_and_samples() {
        assert_eq!(TwoMedian.name(), "2-Median");
        assert_eq!(TwoMedian.sample_count(), 2);
    }
}
