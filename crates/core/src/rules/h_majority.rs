//! The generalized h-Majority process (Section 5, Conjecture 1).
//!
//! Sample `h` nodes; adopt the *plurality* color among the samples,
//! breaking ties uniformly at random among the tied colors. For `h = 3`
//! this coincides with 3-Majority, and for `h ∈ {1, 2}` with Voter
//! (with two samples, either they agree — both are the same color — or
//! the tie-break picks a uniform one of the two, which is again a uniform
//! node sample).
//!
//! The exact process function is computed by enumerating all ordered
//! sample outcomes (`k^h` terms) — intended for the small-`k` analyses of
//! Appendix B and the hierarchy experiment, not for large configurations
//! (use the agent-level engine there).

use rand::{Rng, RngCore};

use crate::config::Configuration;
use crate::opinion::Opinion;
use crate::process::{
    ac_vector_step, ac_vector_step_into, condensed_window_step_by_dealing, AcProcess, MultisetRule,
    SampleAccess, UpdateRule, VectorStep,
};
use crate::rules::three_majority::ThreeMajority;
use symbreak_sim::dist::GroupSplitter;

/// Practical cap on `k^h` enumeration work for the exact process function.
const MAX_ENUMERATION: u128 = 4_000_000;

/// The h-Majority update rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HMajority {
    h: usize,
}

impl HMajority {
    /// Creates an h-Majority rule.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "h must be at least 1");
        Self { h }
    }

    /// The number of samples `h`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Whether the exact `α` enumeration is feasible for `k` support
    /// colors.
    pub fn supports_exact_alpha(&self, k: usize) -> bool {
        (k as u128).checked_pow(self.h as u32).is_some_and(|c| c <= MAX_ENUMERATION)
    }
}

impl UpdateRule for HMajority {
    fn name(&self) -> &'static str {
        "h-Majority"
    }

    fn sample_count(&self) -> usize {
        self.h
    }

    fn update(&self, _own: Opinion, samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion {
        plurality_with_random_ties(samples, rng)
    }

    fn sample_access(&self) -> SampleAccess {
        SampleAccess::Multiset
    }

    fn as_multiset(&self) -> Option<&dyn MultisetRule> {
        Some(self)
    }
}

impl MultisetRule for HMajority {
    /// The plurality rule reads nothing but the histogram, so this is
    /// [`plurality_with_random_ties`] minus the tally pass: find the
    /// best multiplicity, tie-break uniformly among the opinions
    /// holding it.
    fn update_from_counts(
        &self,
        _own: Opinion,
        counts: &[(Opinion, u32)],
        rng: &mut dyn RngCore,
    ) -> Opinion {
        debug_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u32>() as usize, self.h);
        let best = counts.iter().map(|&(_, c)| c).max().expect("non-empty window");
        let tied = counts.iter().filter(|&&(_, c)| c == best).count();
        if tied == 1 {
            counts.iter().find(|&&(_, c)| c == best).expect("tied opinion").0
        } else {
            let pick = rng.gen_range(0..tied);
            counts.iter().filter(|&&(_, c)| c == best).nth(pick).expect("tied opinion").0
        }
    }

    /// Plurality reads nothing of `own`.
    fn own_insensitive(&self) -> bool {
        true
    }

    /// Aggregate pooled-block consumption per `h`:
    ///
    /// * `h ∈ {1, 2}` — the outcome multiset is a uniform
    ///   `count`-subset of the block. At `h = 1` that is the block
    ///   itself; at `h = 2` a window is either doubled (outcome is that
    ///   value) or split (the tie-break adopts a uniform entry), so
    ///   every window contributes one uniformly-chosen ball — and one
    ///   ball per window of a uniform dealing is a uniform subset.
    /// * `h = 3` — coincides with 3-Majority: on windows with a
    ///   repeat the plurality agrees, and on all-distinct windows the
    ///   three tied opinions each hold one entry, so
    ///   uniform-among-tied ≡ uniform-among-entries.
    /// * `h ≥ 4` — no closed form here; the exact per-window dealing
    ///   fallback.
    fn condensed_window_step(
        &self,
        own: Opinion,
        count: u64,
        values: &[Opinion],
        block: &mut [u64],
        rng: &mut dyn RngCore,
        out: &mut Vec<(Opinion, u64)>,
    ) {
        if count == 0 {
            return;
        }
        match self.h {
            1 => {
                for (j, &c) in block.iter().enumerate() {
                    if c > 0 {
                        out.push((values[j], c));
                    }
                }
            }
            2 => {
                GroupSplitter::new(block).draw_block(count, rng, |j, x| {
                    out.push((values[j], x));
                });
            }
            3 => ThreeMajority.condensed_window_step(own, count, values, block, rng, out),
            _ => condensed_window_step_by_dealing(self, own, count, values, block, rng, out),
        }
    }
}

/// Returns the plurality opinion among `samples`, breaking ties uniformly.
pub fn plurality_with_random_ties(samples: &[Opinion], rng: &mut dyn RngCore) -> Opinion {
    debug_assert!(!samples.is_empty());
    // Tiny h: count in a local scratch list (samples.len() distinct max).
    let mut distinct: Vec<(Opinion, u32)> = Vec::with_capacity(samples.len());
    for &s in samples {
        match distinct.iter_mut().find(|(o, _)| *o == s) {
            Some((_, cnt)) => *cnt += 1,
            None => distinct.push((s, 1)),
        }
    }
    let best = distinct.iter().map(|&(_, c)| c).max().expect("non-empty samples");
    let tied: Vec<Opinion> =
        distinct.iter().filter(|&&(_, c)| c == best).map(|&(o, _)| o).collect();
    if tied.len() == 1 {
        tied[0]
    } else {
        tied[rng.gen_range(0..tied.len())]
    }
}

impl AcProcess for HMajority {
    /// Exact `α^{(hM)}` by enumeration over ordered sample tuples.
    ///
    /// # Panics
    /// Panics when `k^h` exceeds the enumeration cap — check
    /// [`HMajority::supports_exact_alpha`] first.
    fn alpha(&self, c: &Configuration) -> Vec<f64> {
        let x = c.fractions();
        let k = x.len();
        assert!(
            self.supports_exact_alpha(k),
            "k^h = {k}^{} exceeds the exact-enumeration cap",
            self.h
        );
        let mut alpha = vec![0.0; k];
        // Enumerate ordered tuples via mixed-radix counting; skip branches
        // with zero probability by only iterating support colors.
        let support: Vec<usize> = (0..k).filter(|&i| x[i] > 0.0).collect();
        let mut tuple = vec![0usize; self.h]; // indices into `support`
        loop {
            // Probability and per-color counts of this ordered tuple.
            let mut prob = 1.0;
            let mut counts = vec![0u32; k];
            for &t in &tuple {
                let color = support[t];
                prob *= x[color];
                counts[color] += 1;
            }
            let best = counts.iter().copied().max().expect("k >= 1");
            let tied: Vec<usize> = (0..k).filter(|&i| counts[i] == best && best > 0).collect();
            let share = prob / tied.len() as f64;
            for &i in &tied {
                alpha[i] += share;
            }
            // Next tuple in mixed radix base |support|.
            let mut pos = 0;
            loop {
                if pos == self.h {
                    return alpha;
                }
                tuple[pos] += 1;
                if tuple[pos] < support.len() {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
        }
    }
}

impl VectorStep for HMajority {
    fn vector_step(&self, c: &Configuration, rng: &mut dyn RngCore) -> Configuration {
        ac_vector_step(self, c, rng)
    }

    /// Sparse step via the shared AC sampler. The `α` enumeration itself
    /// still allocates one dense vector (its cost is `k^h`, so it is only
    /// run at small `k` anyway); the multinomial draw walks the occupied
    /// slots only.
    fn vector_step_into(&self, c: &mut Configuration, rng: &mut dyn RngCore) {
        ac_vector_step_into(self, c, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::assert_probability_vector;
    use crate::rules::three_majority::alpha_three_majority;
    use crate::rules::Voter;
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    fn op(i: u32) -> Opinion {
        Opinion::new(i)
    }

    #[test]
    fn h1_and_h2_alpha_equal_voter() {
        for counts in [vec![4, 3, 2, 1], vec![9, 1], vec![2, 2, 2]] {
            let c = Configuration::from_counts(counts);
            let v = Voter.alpha(&c);
            for h in [1, 2] {
                let a = HMajority::new(h).alpha(&c);
                for (ai, vi) in a.iter().zip(&v) {
                    assert!((ai - vi).abs() < 1e-12, "h={h}: {a:?} vs {v:?}");
                }
            }
        }
    }

    #[test]
    fn h3_alpha_equals_equation_2() {
        for counts in [vec![4, 3, 2, 1], vec![9, 1], vec![5, 5, 5], vec![7, 2, 1]] {
            let c = Configuration::from_counts(counts);
            let enumerated = HMajority::new(3).alpha(&c);
            let formula = alpha_three_majority(&c);
            for (a, b) in enumerated.iter().zip(&formula) {
                assert!((a - b).abs() < 1e-12, "{enumerated:?} vs {formula:?}");
            }
        }
    }

    #[test]
    fn alpha_is_probability_vector_for_various_h() {
        let c = Configuration::from_counts(vec![6, 3, 1]);
        for h in 1..=6 {
            let a = HMajority::new(h).alpha(&c);
            assert_probability_vector(&a);
        }
    }

    #[test]
    fn alpha_handles_empty_slots() {
        let c = Configuration::from_counts(vec![5, 0, 5]);
        let a = HMajority::new(4).alpha(&c);
        assert_eq!(a[1], 0.0);
        assert_probability_vector(&a);
    }

    #[test]
    fn appendix_b_seven_twelfths() {
        // x = (1/2, 1/6, 1/6, 1/6): α₁^{(3M)} = 7/12 (Equation (24)).
        let c = Configuration::from_counts(vec![3, 1, 1, 1]);
        let a = HMajority::new(3).alpha(&c);
        assert!((a[0] - 7.0 / 12.0).abs() < 1e-12, "alpha_1 = {}", a[0]);
    }

    #[test]
    fn appendix_b_four_majority_fixed_point() {
        // x̃ = (1/2, 1/2, 0, 0) is a fixed point of α^{(4M)} by symmetry.
        let c = Configuration::from_counts(vec![2, 2, 0, 0]);
        let a = HMajority::new(4).alpha(&c);
        assert!((a[0] - 0.5).abs() < 1e-12);
        assert!((a[1] - 0.5).abs() < 1e-12);
        assert_eq!(a[2], 0.0);
        assert_eq!(a[3], 0.0);
    }

    #[test]
    fn plurality_update_majority_wins() {
        let mut rng = Pcg64::seed_from_u64(1);
        let r = HMajority::new(5);
        let samples = [op(1), op(2), op(1), op(3), op(1)];
        assert_eq!(r.update(op(9), &samples, &mut rng), op(1));
    }

    #[test]
    fn plurality_tie_break_is_uniform() {
        let mut rng = Pcg64::seed_from_u64(2);
        let r = HMajority::new(4);
        let samples = [op(0), op(0), op(1), op(1)];
        let mut counts = [0u32; 2];
        for _ in 0..20_000 {
            counts[r.update(op(9), &samples, &mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 20_000.0 - 0.5).abs() < 0.02);
        }
    }

    #[test]
    fn agent_rule_matches_alpha_marginals() {
        // Monte-Carlo check: update() frequencies equal the enumerated α.
        let c = Configuration::from_counts(vec![5, 3, 2]);
        let x = c.fractions();
        let r = HMajority::new(4);
        let a = r.alpha(&c);
        let mut rng = Pcg64::seed_from_u64(3);
        let cat = symbreak_sim::dist::Categorical::new(&x);
        let trials = 60_000;
        let mut counts = [0u64; 3];
        for _ in 0..trials {
            let samples: Vec<Opinion> = (0..4).map(|_| op(cat.sample(&mut rng) as u32)).collect();
            counts[r.update(op(9), &samples, &mut rng).index()] += 1;
        }
        for i in 0..3 {
            let freq = counts[i] as f64 / trials as f64;
            assert!((freq - a[i]).abs() < 0.01, "color {i}: freq {freq} vs alpha {}", a[i]);
        }
    }

    #[test]
    fn vector_step_mass() {
        let mut rng = Pcg64::seed_from_u64(4);
        let c = Configuration::uniform(300, 3);
        assert_eq!(HMajority::new(5).vector_step(&c, &mut rng).n(), 300);
    }

    #[test]
    fn exact_alpha_feasibility_bounds() {
        let r = HMajority::new(3);
        assert!(r.supports_exact_alpha(100));
        assert!(!r.supports_exact_alpha(200)); // 200^3 = 8e6 > cap
        assert!(HMajority::new(7).supports_exact_alpha(8));
    }

    #[test]
    #[should_panic(expected = "h must be at least 1")]
    fn zero_h_panics() {
        HMajority::new(0);
    }
}
