//! Opinion (color) identifiers.

/// An opinion ("color" in the paper's terminology) held by a node.
///
/// Opinions are dense indices `0..k`. The distinguished value
/// [`Opinion::UNDECIDED`] is reserved for the undecided-state dynamics of
/// Section 1.1 and never counts as a real color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Opinion(u32);

impl Opinion {
    /// The undecided pseudo-opinion used by `UndecidedDynamics`.
    pub const UNDECIDED: Opinion = Opinion(u32::MAX);

    /// Creates an opinion with the given color index.
    ///
    /// # Panics
    /// Panics if `index` collides with the undecided sentinel.
    pub fn new(index: u32) -> Self {
        assert!(index != u32::MAX, "index u32::MAX is reserved for UNDECIDED");
        Opinion(index)
    }

    /// The color index.
    ///
    /// # Panics
    /// Panics when called on [`Opinion::UNDECIDED`].
    pub fn index(self) -> usize {
        assert!(!self.is_undecided(), "UNDECIDED has no color index");
        self.0 as usize
    }

    /// Whether this is the undecided pseudo-opinion.
    pub fn is_undecided(self) -> bool {
        self.0 == u32::MAX
    }
}

impl From<u32> for Opinion {
    fn from(index: u32) -> Self {
        Opinion::new(index)
    }
}

impl std::fmt::Display for Opinion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_undecided() {
            write!(f, "⊥")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let o = Opinion::new(17);
        assert_eq!(o.index(), 17);
        assert!(!o.is_undecided());
        assert_eq!(Opinion::from(17u32), o);
    }

    #[test]
    fn undecided_is_special() {
        assert!(Opinion::UNDECIDED.is_undecided());
        assert_eq!(format!("{}", Opinion::UNDECIDED), "⊥");
        assert_eq!(format!("{}", Opinion::new(3)), "3");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_index_panics() {
        Opinion::new(u32::MAX);
    }

    #[test]
    #[should_panic(expected = "no color index")]
    fn undecided_index_panics() {
        Opinion::UNDECIDED.index();
    }

    #[test]
    fn ordering_by_index() {
        assert!(Opinion::new(1) < Opinion::new(2));
    }
}
