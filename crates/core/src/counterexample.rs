//! Appendix B, in exact arithmetic: Lemma 1 is too weak for Conjecture 1.
//!
//! The paper exhibits fraction vectors `x = (1/2, 1/6, 1/6, 1/6)` and
//! `x̃ = (1/2, 1/2, 0, 0)` with `x̃ ⪰ x`, and shows that
//! `α^{(4M)}(x̃) = x̃` while the first component of `α^{(3M)}(x)` is
//! exactly `7/12 > 1/2` (Equation (24)) — so `α^{(4M)}(x̃)` does **not**
//! majorize `α^{(3M)}(x)` and the coupling hypothesis of Lemma 1 fails for
//! the h-Majority hierarchy.
//!
//! This module reimplements that computation with exact [`Rational`]
//! arithmetic (built in-house; no external bignum needed since the
//! denominators stay tiny).

/// An exact rational number with `i128` numerator/denominator, always kept
/// reduced with a positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den`, reduced.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Self { num: sign * num / g, den: sign * den / g }
    }

    /// The reduced numerator.
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// The reduced (positive) denominator.
    pub fn denominator(self) -> i128 {
        self.den
    }

    /// Conversion to `f64` (exact for the small fractions used here).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }
}

impl From<i128> for Rational {
    fn from(v: i128) -> Self {
        Rational::new(v, 1)
    }
}

impl std::ops::Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl std::ops::Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl std::ops::Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl std::ops::Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, |a, b| a + b)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl std::fmt::Display for Rational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Exact h-Majority process function over a rational fraction vector, by
/// enumeration of all ordered sample tuples (plurality with uniform
/// tie-break).
///
/// # Panics
/// Panics if `x` does not sum to 1, or if `k^h` exceeds a sanity cap.
pub fn alpha_h_majority_exact(x: &[Rational], h: usize) -> Vec<Rational> {
    let total: Rational = x.iter().copied().sum();
    assert!(total == Rational::ONE, "fractions must sum to 1, got {total}");
    let k = x.len();
    assert!((k as u128).pow(h as u32) <= 1_000_000, "enumeration too large: {k}^{h}");
    let support: Vec<usize> = (0..k).filter(|&i| !x[i].is_zero()).collect();
    let mut alpha = vec![Rational::ZERO; k];
    let mut tuple = vec![0usize; h];
    loop {
        let mut prob = Rational::ONE;
        let mut counts = vec![0u32; k];
        for &t in &tuple {
            let color = support[t];
            prob = prob * x[color];
            counts[color] += 1;
        }
        let best = *counts.iter().max().expect("k >= 1");
        let tied: Vec<usize> = (0..k).filter(|&i| counts[i] == best && best > 0).collect();
        let share = prob / Rational::from(tied.len() as i128);
        for &i in &tied {
            alpha[i] = alpha[i] + share;
        }
        let mut pos = 0;
        loop {
            if pos == h {
                return alpha;
            }
            tuple[pos] += 1;
            if tuple[pos] < support.len() {
                break;
            }
            tuple[pos] = 0;
            pos += 1;
        }
    }
}

/// Exact majorization test on rational vectors with equal totals.
pub fn rational_majorizes(a: &[Rational], b: &[Rational]) -> bool {
    let ta: Rational = a.iter().copied().sum();
    let tb: Rational = b.iter().copied().sum();
    if ta != tb {
        return false;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|p, q| q.cmp(p));
    sb.sort_by(|p, q| q.cmp(p));
    let mut pa = Rational::ZERO;
    let mut pb = Rational::ZERO;
    for l in 0..sa.len().max(sb.len()) {
        pa = pa + sa.get(l).copied().unwrap_or(Rational::ZERO);
        pb = pb + sb.get(l).copied().unwrap_or(Rational::ZERO);
        if pa < pb {
            return false;
        }
    }
    true
}

/// The full Appendix-B verdict computed exactly.
#[derive(Debug, Clone)]
pub struct AppendixBReport {
    /// `x = (1/2, 1/6, 1/6, 1/6)`.
    pub x: Vec<Rational>,
    /// `x̃ = (1/2, 1/2, 0, 0)`.
    pub x_tilde: Vec<Rational>,
    /// `α^{(3M)}(x)`, exactly.
    pub alpha_3m: Vec<Rational>,
    /// `α^{(4M)}(x̃)`, exactly.
    pub alpha_4m: Vec<Rational>,
    /// Whether `x̃ ⪰ x` (must be `true`).
    pub premise_holds: bool,
    /// Whether `α^{(4M)}(x̃) ⪰ α^{(3M)}(x)` (must be `false` — this is the
    /// counterexample).
    pub conclusion_holds: bool,
}

/// Reproduces Appendix B exactly.
pub fn appendix_b_report() -> AppendixBReport {
    let half = Rational::new(1, 2);
    let sixth = Rational::new(1, 6);
    let x = vec![half, sixth, sixth, sixth];
    let x_tilde = vec![half, half, Rational::ZERO, Rational::ZERO];
    let alpha_3m = alpha_h_majority_exact(&x, 3);
    let alpha_4m = alpha_h_majority_exact(&x_tilde, 4);
    AppendixBReport {
        premise_holds: rational_majorizes(&x_tilde, &x),
        conclusion_holds: rational_majorizes(&alpha_4m, &alpha_3m),
        x,
        x_tilde,
        alpha_3m,
        alpha_4m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_arithmetic_basics() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert!(a > b);
        assert_eq!(format!("{}", Rational::new(2, 4)), "1/2");
        assert_eq!(format!("{}", Rational::new(6, 3)), "2");
    }

    #[test]
    fn rational_reduction_and_sign() {
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), Rational::ZERO);
        assert!((Rational::new(3, 4).to_f64() - 0.75).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        Rational::new(1, 0);
    }

    #[test]
    fn equation_24_seven_twelfths_exact() {
        let x = vec![
            Rational::new(1, 2),
            Rational::new(1, 6),
            Rational::new(1, 6),
            Rational::new(1, 6),
        ];
        let alpha = alpha_h_majority_exact(&x, 3);
        assert_eq!(alpha[0], Rational::new(7, 12), "Equation (24): α₁ = 7/12");
        // The rest split the remainder symmetrically: (1 − 7/12)/3 = 5/36.
        for a in alpha.iter().take(4).skip(1) {
            assert_eq!(*a, Rational::new(5, 36));
        }
        let total: Rational = alpha.into_iter().sum();
        assert_eq!(total, Rational::ONE);
    }

    #[test]
    fn four_majority_on_two_color_split_is_fixed() {
        let x = vec![Rational::new(1, 2), Rational::new(1, 2), Rational::ZERO, Rational::ZERO];
        let alpha = alpha_h_majority_exact(&x, 4);
        assert_eq!(alpha[0], Rational::new(1, 2));
        assert_eq!(alpha[1], Rational::new(1, 2));
        assert!(alpha[2].is_zero() && alpha[3].is_zero());
    }

    #[test]
    fn appendix_b_counterexample_verdict() {
        let report = appendix_b_report();
        assert!(report.premise_holds, "x̃ must majorize x");
        assert!(
            !report.conclusion_holds,
            "α^{{(4M)}}(x̃) must NOT majorize α^{{(3M)}}(x): this is the counterexample"
        );
        // The witness: top component 7/12 > 1/2.
        assert_eq!(report.alpha_3m[0], Rational::new(7, 12));
        assert_eq!(report.alpha_4m[0], Rational::new(1, 2));
    }

    #[test]
    fn exact_alpha_matches_float_enumeration() {
        use crate::config::Configuration;
        use crate::process::AcProcess;
        use crate::rules::HMajority;
        // Same computation, two code paths: rational vs f64.
        let c = Configuration::from_counts(vec![3, 1, 1, 1]);
        let float = HMajority::new(3).alpha(&c);
        let x: Vec<Rational> = c.counts().iter().map(|&v| Rational::new(v as i128, 6)).collect();
        let exact = alpha_h_majority_exact(&x, 3);
        for (f, e) in float.iter().zip(&exact) {
            assert!((f - e.to_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn rational_majorization_examples() {
        let half = Rational::new(1, 2);
        let quarter = Rational::new(1, 4);
        assert!(rational_majorizes(&[Rational::ONE, Rational::ZERO], &[half, half]));
        assert!(!rational_majorizes(&[half, half], &[Rational::ONE, Rational::ZERO]));
        assert!(rational_majorizes(&[half, quarter, quarter], &[half, quarter, quarter]));
        // Unequal totals are incomparable.
        assert!(!rational_majorizes(&[half], &[quarter]));
    }

    #[test]
    fn voter_is_h1_exact() {
        let x = vec![Rational::new(2, 5), Rational::new(2, 5), Rational::new(1, 5)];
        let alpha = alpha_h_majority_exact(&x, 1);
        assert_eq!(alpha, x);
    }
}
