//! Protocol dominance (Definition 2) and the Lemma 2 inequality.
//!
//! A process `P` *dominates* `P'` when majorization of configurations is
//! preserved by the expected one-step behaviour: `c ⪰ c̃ ⇒ E[P(c)] ⪰
//! E[P'(c̃)]`. For AC-processes this reduces to `α(c) ⪰ α̃(c̃)`, and
//! Theorem 2 upgrades it to stochastic dominance of the hitting times
//! `T^κ`. Lemma 2 instantiates it for `P = 3-Majority`, `P' = Voter`.
//!
//! The module provides exact per-pair checks plus a random generator of
//! majorizing configuration pairs (via *reverse* Robin-Hood transfers) used
//! to probe dominance over the configuration space.

use rand::Rng;

use symbreak_majorization::vector::majorizes_eps;

use crate::config::Configuration;
use crate::process::ExpectedUpdate;
use crate::rules::{alpha_three_majority, Voter};

/// Tolerance for comparing expected-fraction vectors. Process functions are
/// rational with denominator `n^O(1)`; `1e-9` is far below any meaningful
/// prefix-sum gap at the population sizes used here.
const EXPECTATION_EPS: f64 = 1e-9;

/// Checks the Definition-2 inequality for one pair: `E[P(c)] ⪰ E[Q(c̃)]`.
///
/// Call with `c.majorizes(&c_tilde)` pairs to probe whether `P` dominates
/// `Q`. (The definition quantifies over *all* such pairs; a single `false`
/// refutes dominance, `true`s only support it.)
pub fn expected_majorizes(
    p: &dyn ExpectedUpdate,
    q: &dyn ExpectedUpdate,
    c: &Configuration,
    c_tilde: &Configuration,
) -> bool {
    let ep = p.expected_fractions(c);
    let eq = q.expected_fractions(c_tilde);
    majorizes_eps(&ep, &eq, EXPECTATION_EPS)
}

/// The Lemma 2 inequality: `α^{(3M)}(c) ⪰ α^{(V)}(c̃)` whenever `c ⪰ c̃`.
///
/// The paper proves this analytically (Section 3.1); this function checks
/// it for a concrete pair, which the test-suite and Experiment E4 exercise
/// over random pairs.
pub fn lemma2_inequality(c: &Configuration, c_tilde: &Configuration) -> bool {
    let a3m = alpha_three_majority(c);
    let av = Voter.expected_fractions(c_tilde);
    majorizes_eps(&a3m, &av, EXPECTATION_EPS)
}

/// Generates a uniform-ish random configuration of `n` nodes over `k`
/// slots (a random composition).
pub fn random_configuration<R: Rng>(n: u64, k: usize, rng: &mut R) -> Configuration {
    assert!(k >= 1);
    // Draw k-1 cut points in [0, n] and take differences.
    let mut cuts: Vec<u64> = (0..k - 1).map(|_| rng.gen_range(0..=n)).collect();
    cuts.sort_unstable();
    let mut counts = Vec::with_capacity(k);
    let mut prev = 0;
    for &c in &cuts {
        counts.push(c - prev);
        prev = c;
    }
    counts.push(n - prev);
    Configuration::from_counts(counts)
}

/// Generates a pair `(c, c̃)` with `c ⪰ c̃`: `c̃` is random and `c` is
/// obtained from it by `steps` *reverse* Robin-Hood transfers (moving mass
/// from a poorer to a richer color), each of which strictly increases the
/// configuration in the majorization preorder.
pub fn random_majorizing_pair<R: Rng>(
    n: u64,
    k: usize,
    steps: usize,
    rng: &mut R,
) -> (Configuration, Configuration) {
    let c_tilde = random_configuration(n, k, rng);
    let mut counts = c_tilde.counts().to_vec();
    for _ in 0..steps {
        let i = rng.gen_range(0..k);
        let j = rng.gen_range(0..k);
        if i == j {
            continue;
        }
        // Move mass from the (weakly) poorer slot to the richer one.
        let (rich, poor) = if counts[i] >= counts[j] { (i, j) } else { (j, i) };
        if counts[poor] == 0 {
            continue;
        }
        let amount = rng.gen_range(1..=counts[poor]);
        counts[poor] -= amount;
        counts[rich] += amount;
    }
    (Configuration::from_counts(counts), c_tilde)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{ThreeMajority, TwoChoices};
    use rand::SeedableRng;
    use symbreak_sim::rng::Pcg64;

    #[test]
    fn random_majorizing_pairs_do_majorize() {
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..200 {
            let (c, ct) = random_majorizing_pair(100, 6, 4, &mut rng);
            assert!(c.majorizes(&ct), "{c} should majorize {ct}");
            assert_eq!(c.n(), ct.n());
        }
    }

    #[test]
    fn lemma2_holds_on_random_pairs() {
        // The paper proves this analytically; probe it numerically over
        // many random majorizing pairs.
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..500 {
            let (c, ct) = random_majorizing_pair(60, 5, 3, &mut rng);
            assert!(lemma2_inequality(&c, &ct), "Lemma 2 violated for {c} vs {ct}");
        }
    }

    #[test]
    fn lemma2_holds_on_equal_configs() {
        // c == c̃: α^{(3M)}(c) ⪰ α^{(V)}(c) is the drift property.
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..200 {
            let c = random_configuration(80, 7, &mut rng);
            assert!(lemma2_inequality(&c, &c), "drift violated on {c}");
        }
    }

    #[test]
    fn three_majority_dominates_voter_via_trait_api() {
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..200 {
            let (c, ct) = random_majorizing_pair(50, 4, 3, &mut rng);
            assert!(expected_majorizes(&ThreeMajority, &Voter, &c, &ct));
        }
    }

    #[test]
    fn two_choices_also_dominates_voter_in_expectation() {
        // The paper's remark before Theorem 2: 2-Choices *does* dominate
        // Voter (its expectation equals 3-Majority's) — yet Theorem 2 does
        // not apply because 2-Choices is not an AC-process. This is the
        // heart of Experiment E14.
        let mut rng = Pcg64::seed_from_u64(5);
        for _ in 0..200 {
            let (c, ct) = random_majorizing_pair(50, 4, 3, &mut rng);
            assert!(expected_majorizes(&TwoChoices, &Voter, &c, &ct));
        }
    }

    #[test]
    fn voter_does_not_dominate_three_majority() {
        // A biased configuration where Voter's expectation strictly fails
        // to majorize 3-Majority's (the drift goes the other way).
        let c = Configuration::from_counts(vec![70, 30]);
        assert!(!expected_majorizes(&Voter, &ThreeMajority, &c, &c));
    }

    #[test]
    fn random_configuration_mass_and_slots() {
        let mut rng = Pcg64::seed_from_u64(6);
        for _ in 0..50 {
            let c = random_configuration(123, 9, &mut rng);
            assert_eq!(c.n(), 123);
            assert_eq!(c.num_slots(), 9);
        }
    }

    #[test]
    fn zero_step_pair_is_equivalent() {
        let mut rng = Pcg64::seed_from_u64(7);
        let (c, ct) = random_majorizing_pair(40, 4, 0, &mut rng);
        assert_eq!(c, ct);
    }
}
